//! Property tests for the observability layer under chaos.
//!
//! The instrumentation shares process-global state (the metrics registry
//! and the tracer), so every test here serializes on [`OBS_LOCK`]; with
//! the `obs` feature compiled out the hooks are no-ops and the
//! properties hold trivially (the coverage assertions are `cfg`-gated).
//! Across the CI chaos seeds the layer must satisfy:
//!
//! * **counters are monotonic** — reads taken before and after work never
//!   decrease, and instrumented work strictly increases them;
//! * **histogram bucket counts sum to the observation count** — no
//!   observation is lost or double-counted across buckets, and the
//!   cumulative rendering ends at the total;
//! * **span trees are well-nested** — every track drained from the tracer
//!   passes [`validate_well_nested`], across BSP chaos, ASP chaos, and an
//!   SLO-guarded rescue.

use cynthia::obs::registry::TIME_BUCKETS;
use cynthia::obs::span::validate_well_nested;
use cynthia::obs::{metrics, tracer};
use cynthia::prelude::*;
use std::sync::Mutex;

/// The CI chaos seeds. Fixed so failures reproduce byte-for-byte.
const MASTER_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Serializes the tests in this binary: they read and toggle
/// process-global observability state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn cluster(n: u32, n_ps: u32) -> ClusterSpec {
    let catalog = default_catalog();
    ClusterSpec::homogeneous(catalog.expect("m4.xlarge"), n, n_ps)
}

fn chaos_run(w: &Workload, n: u32, n_ps: u32, seed: u64) -> TrainingReport {
    let plan = FaultInjector::new(InjectorConfig::chaos(12.0, 3600.0)).draw_plan(
        seed,
        n as usize,
        n_ps as usize,
    );
    simulate_faulted(
        &TrainJob {
            workload: w,
            cluster: cluster(n, n_ps),
            config: SimConfig::deterministic(seed),
        },
        &plan,
        &RecoveryPolicy::default(),
    )
}

#[test]
fn counters_are_monotonic_across_chaos_runs() {
    let _g = OBS_LOCK.lock().unwrap();
    let runs = metrics().counter("cynthia_train_runs_total", "Training simulations completed");
    let updates = metrics().counter(
        "cynthia_train_updates_total",
        "Model updates simulated (BSP iterations / ASP commits)",
    );
    let events = metrics().counter("cynthia_sim_events_total", "Events popped by the queue");

    let w = Workload::mnist_bsp().with_iterations(120);
    let mut last = (runs.get(), updates.get(), events.get());
    for seed in MASTER_SEEDS {
        let report = chaos_run(&w, 4, 2, seed);
        let now = (runs.get(), updates.get(), events.get());
        assert!(
            now.0 >= last.0 && now.1 >= last.1 && now.2 >= last.2,
            "seed {seed}: a counter decreased: {last:?} -> {now:?}"
        );
        if cfg!(feature = "obs") {
            assert_eq!(now.0, last.0 + 1, "seed {seed}: run not counted");
            assert_eq!(
                now.1,
                last.1 + report.simulated_iterations,
                "seed {seed}: updates counter disagrees with the report"
            );
            assert!(now.2 > last.2, "seed {seed}: no queue events counted");
        }
        last = now;
    }
}

#[test]
fn histogram_buckets_sum_to_observation_count() {
    let _g = OBS_LOCK.lock().unwrap();
    let w = Workload::mnist_bsp().with_iterations(120);
    for seed in MASTER_SEEDS {
        let _ = chaos_run(&w, 4, 2, seed);
    }
    for name in [
        "cynthia_train_iter_seconds",
        "cynthia_train_comp_seconds",
        "cynthia_train_comm_seconds",
        "cynthia_train_restore_seconds",
    ] {
        let h = metrics().histogram(name, TIME_BUCKETS, "");
        let total: u64 = h.bucket_counts().iter().sum();
        assert_eq!(total, h.count(), "{name}: buckets lost an observation");
        let cumulative = h.cumulative_buckets();
        assert_eq!(
            cumulative.last().expect("+Inf bucket").1,
            h.count(),
            "{name}: cumulative rendering must end at the total"
        );
        for pair in cumulative.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{name}: cumulative bucket counts must be non-decreasing"
            );
        }
        if cfg!(feature = "obs") {
            assert!(
                h.count() > 0 || name == "cynthia_train_restore_seconds",
                "{name}: chaos runs recorded no samples"
            );
        }
    }
}

#[test]
fn span_trees_are_well_nested_across_chaos_seeds() {
    let _g = OBS_LOCK.lock().unwrap();
    tracer().set_enabled(true);
    let _ = tracer().drain(); // discard anything a prior test left open

    let bsp = Workload::mnist_bsp().with_iterations(120);
    let asp = Workload::resnet32_asp().with_iterations(100);
    for seed in MASTER_SEEDS {
        let _ = chaos_run(&bsp, 4, 2, seed);
        let _ = chaos_run(&asp, 3, 2, seed);
    }
    // An SLO-guarded rescue adds the `provision` wall track and an
    // `slo#…` virtual track on top of the engine's.
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    };
    let faults = FaultPlan::new(vec![FaultEvent::permanent(
        FaultKind::Straggler {
            worker: 0,
            factor: 0.05,
        },
        60.0,
    )]);
    let _ = run_guarded(
        &Workload::cifar10_bsp().with_iterations(800),
        &default_catalog(),
        &faults,
        &RecoveryPolicy::default(),
        &SloGuardConfig::new(goal, 17),
    )
    .expect("goal is feasible on a healthy fleet");

    tracer().set_enabled(false);
    let spans = tracer().drain();
    validate_well_nested(&spans).unwrap_or_else(|e| panic!("spans not well-nested: {e}"));
    assert_eq!(tracer().dropped(), 0, "tracer overflowed its buffer");
    if cfg!(feature = "obs") {
        for layer in ["provision", "train#", "recovery#", "slo#"] {
            assert!(
                spans.iter().any(|s| s.track.starts_with(layer)),
                "no spans on any {layer}* track"
            );
        }
    } else {
        assert!(spans.is_empty(), "stub hooks must record nothing");
    }
}
