//! Property-based tests of the provisioner: for randomized feasible
//! goals, Algorithm 1's plans respect every constraint of the
//! optimization problem (Eqs. 8–11) and Theorem 4.1's structure.

use cynthia::prelude::*;
use cynthia_core::profiler::profile_workload;
use cynthia_core::provisioner::{max_provision_ratio, plan, worker_bounds};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    catalog: Catalog,
    profile: ProfileData,
    loss: FittedLossModel,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let profile = profile_workload(&w, catalog.expect("m4.xlarge"), 17);
        let loss = FittedLossModel {
            sync: w.sync,
            beta0: w.convergence.beta0,
            beta1: w.convergence.beta1,
            r_squared: 1.0,
        };
        Fixture {
            catalog,
            profile,
            loss,
        }
    })
}

fn asp_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let catalog = default_catalog();
        let w = Workload::vgg19_asp();
        let profile = profile_workload(&w, catalog.expect("m4.xlarge"), 18);
        let loss = FittedLossModel {
            sync: w.sync,
            beta0: w.convergence.beta0,
            beta1: w.convergence.beta1,
            r_squared: 1.0,
        };
        Fixture {
            catalog,
            profile,
            loss,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any plan the BSP planner emits satisfies the deadline (with
    /// headroom), prices correctly, and keeps the worker:PS ratio within
    /// the Theorem 4.1 escalation band.
    #[test]
    fn bsp_plans_respect_all_constraints(
        deadline_mins in 20u32..400,
        loss_centi in 50u32..90,
    ) {
        let f = fixture();
        let goal = Goal {
            deadline_secs: deadline_mins as f64 * 60.0,
            target_loss: loss_centi as f64 / 100.0,
        };
        let opts = PlannerOptions::default();
        if let Some(p) = plan(&f.profile, &f.loss, &f.catalog, &goal, &opts) {
            prop_assert!(p.predicted_time < goal.deadline_secs * opts.headroom);
            prop_assert!(p.n_workers >= 1 && p.n_ps >= 1);
            let ty = f.catalog.expect(&p.type_name);
            let expect_cost = cynthia::cloud::billing::static_cluster_cost(
                ty.price_per_hour, p.n_workers, ty.price_per_hour, p.n_ps, p.predicted_time,
            );
            prop_assert!((p.predicted_cost - expect_cost).abs() < 1e-9);
            // Eq. (10): the iteration budget reaches the loss target.
            let achieved = f.loss.predict(p.total_updates, p.n_workers);
            prop_assert!(achieved <= goal.target_loss + 1e-9,
                "loss {achieved} misses target {}", goal.target_loss);
            // Worker:PS ratio stays within the escalated band.
            let bounds = worker_bounds(&f.profile, &f.loss, ty, &Goal {
                deadline_secs: goal.deadline_secs * opts.headroom,
                target_loss: goal.target_loss,
            }).expect("feasible target has bounds");
            prop_assert!(p.n_ps <= bounds.n_ps + opts.max_ps_escalation);
        }
    }

    /// ASP plans: iteration accounting is exact and the ratio bound of
    /// Eq. (11) holds within the escalation allowance.
    #[test]
    fn asp_plans_account_for_staleness(
        deadline_mins in 25u32..240,
        loss_centi in 30u32..90,
    ) {
        let f = asp_fixture();
        let goal = Goal {
            deadline_secs: deadline_mins as f64 * 60.0,
            target_loss: loss_centi as f64 / 100.0,
        };
        let opts = PlannerOptions::default();
        if let Some(p) = plan(&f.profile, &f.loss, &f.catalog, &goal, &opts) {
            prop_assert_eq!(p.total_updates, p.iterations * p.n_workers as u64);
            let achieved = f.loss.predict(p.total_updates, p.n_workers);
            prop_assert!(achieved <= goal.target_loss + 1e-9);
            let ty = f.catalog.expect(&p.type_name);
            let r = max_provision_ratio(&f.profile, ty);
            prop_assert!(
                p.n_workers as f64 <= r * p.n_ps as f64 + 1.0,
                "ratio violated: {} workers, {} ps, r={r}", p.n_workers, p.n_ps
            );
        }
    }

    /// Theorem 4.1 bounds are well-ordered for every type and goal.
    #[test]
    fn bounds_are_always_ordered(
        deadline_mins in 10u32..600,
        loss_centi in 46u32..120,
        ty_idx in 0usize..6,
    ) {
        let f = fixture();
        let ty = &f.catalog.types()[ty_idx % f.catalog.len()];
        let goal = Goal {
            deadline_secs: deadline_mins as f64 * 60.0,
            target_loss: loss_centi as f64 / 100.0,
        };
        if let Some(b) = worker_bounds(&f.profile, &f.loss, ty, &goal) {
            prop_assert!(b.n_lower >= 1);
            prop_assert!(b.n_upper >= b.n_lower);
            prop_assert!(b.n_ps >= 1);
            prop_assert!(b.r >= 1.0);
            prop_assert!(b.upper_for(b.n_ps + 2) >= b.n_upper);
        } else {
            // Only unreachable losses may fail to produce bounds.
            prop_assert!(goal.target_loss <= f.loss.beta1);
        }
    }

    /// Monotonicity: relaxing the deadline never makes a feasible goal
    /// infeasible.
    #[test]
    fn feasibility_is_monotone_in_the_deadline(deadline_mins in 20u32..300) {
        let f = fixture();
        let opts = PlannerOptions::default();
        let tight = Goal { deadline_secs: deadline_mins as f64 * 60.0, target_loss: 0.7 };
        let relaxed = Goal { deadline_secs: tight.deadline_secs * 2.0, target_loss: 0.7 };
        let tight_plan = plan(&f.profile, &f.loss, &f.catalog, &tight, &opts);
        let relaxed_plan = plan(&f.profile, &f.loss, &f.catalog, &relaxed, &opts);
        if tight_plan.is_some() {
            prop_assert!(relaxed_plan.is_some(), "relaxing broke feasibility");
        }
    }
}
