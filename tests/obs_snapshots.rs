//! Golden-snapshot tests for the observability export formats.
//!
//! The Prometheus text exposition, the JSONL span log, and the Chrome
//! trace are consumed by external tooling (scrapers, `chrome://tracing`,
//! Perfetto), so their byte layout is a contract: a fixed set of
//! hand-built metric and span values must render **byte-identically** to
//! the files under `tests/snapshots/`. Everything here uses local
//! [`MetricsRegistry`] / [`Tracer`] instances — no global state, no
//! cross-test interference, and the fixtures run the same with the `obs`
//! feature compiled out (the export formats are always available).
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! OBS_SNAPSHOT_UPDATE=1 cargo test --test obs_snapshots
//! ```
//!
//! then review the diff like any other code change.

use cynthia::obs::span::{to_chrome_trace, to_jsonl};
use cynthia::obs::{MetricsRegistry, Tracer};

/// Compares `got` against the checked-in snapshot, or rewrites the
/// snapshot when `OBS_SNAPSHOT_UPDATE=1` (the standard bless workflow).
fn assert_snapshot(rel_path: &str, got: &str, want: &str) {
    if std::env::var_os("OBS_SNAPSHOT_UPDATE").is_some() {
        let path = format!("{}/{rel_path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, got).expect("rewrite snapshot");
        return;
    }
    assert_eq!(
        got, want,
        "{rel_path} drifted; if intentional, bless with OBS_SNAPSHOT_UPDATE=1"
    );
}

/// A small registry exercising every metric kind, label rendering, and
/// the histogram's cumulative-bucket / +Inf conventions.
fn fixture_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    let plans = reg.counter("demo_provision_plans_total", "Alg. 1 invocations");
    plans.add(3);
    for (kind, n) in [("worker-crash", 5u64), ("straggler", 2)] {
        reg.counter_with("demo_faults_total", &[("kind", kind)], "Faults by kind")
            .add(n);
    }
    reg.float_counter("demo_comp_seconds_total", "Compute seconds (paper t_comp)")
        .add(12.25);
    reg.gauge("demo_fleet_workers", "Current fleet width")
        .set(6.0);
    let hist = reg.histogram(
        "demo_iter_seconds",
        &[0.5, 1.0, 5.0],
        "Per-iteration seconds",
    );
    for v in [0.25, 0.75, 0.75, 4.0, 60.0] {
        hist.observe(v);
    }
    reg
}

/// A two-track span forest: a provisioning tree with a child, plus a
/// training root whose iteration child carries args.
fn fixture_spans() -> Vec<cynthia::obs::SpanRecord> {
    let tracer = Tracer::new(64);
    tracer.set_enabled(true);
    tracer.begin_at("provision", "provision.plan", 0.0);
    tracer.complete("provision", "provision.band.m4.xlarge", 0.5, 2.0, &[]);
    tracer.end_at("provision", 3.0, &[("candidates", 24.0)]);
    tracer.begin_at("train#1", "train.run", 0.0);
    tracer.complete(
        "train#1",
        "train.iteration",
        10.0,
        16.5,
        &[("comp_secs", 6.0), ("comm_secs", 0.25)],
    );
    tracer.end_at("train#1", 100.0, &[("updates", 800.0)]);
    tracer.drain()
}

#[test]
fn prometheus_exposition_matches_snapshot() {
    assert_snapshot(
        "tests/snapshots/metrics.prom",
        &fixture_registry().render_prometheus(),
        include_str!("snapshots/metrics.prom"),
    );
}

#[test]
fn metrics_json_matches_snapshot() {
    let got = fixture_registry().to_json().to_json_pretty() + "\n";
    assert_snapshot(
        "tests/snapshots/metrics.json",
        &got,
        include_str!("snapshots/metrics.json"),
    );
}

#[test]
fn jsonl_trace_matches_snapshot() {
    assert_snapshot(
        "tests/snapshots/trace.jsonl",
        &to_jsonl(&fixture_spans()),
        include_str!("snapshots/trace.jsonl"),
    );
}

#[test]
fn chrome_trace_matches_snapshot() {
    let got = to_chrome_trace(&fixture_spans()).to_json_pretty() + "\n";
    assert_snapshot(
        "tests/snapshots/chrome_trace.json",
        &got,
        include_str!("snapshots/chrome_trace.json"),
    );
}

#[test]
fn snapshot_chrome_trace_parses_back() {
    let raw = include_str!("snapshots/chrome_trace.json");
    let v: serde_json::Value = serde_json::from_str(raw).expect("snapshot parses");
    let events = v["traceEvents"].as_array().expect("traceEvents");
    assert_eq!(
        events.iter().filter(|e| e["ph"] == "X").count(),
        fixture_spans().len()
    );
    assert_eq!(v["displayTimeUnit"], "ms");
}
