//! Bit-determinism regression: observability must be a pure observer.
//!
//! `simulate_faulted` (and the SLO guard on top of it) must produce a
//! bit-identical report whether the hooks are recording, killed at
//! runtime ([`set_enabled`]), or compiled out entirely
//! (`--no-default-features`). The in-process test covers the first two;
//! the compiled-out half is pinned by the checked-in fingerprints under
//! `tests/snapshots/faulted_fingerprints.txt`, which both feature builds
//! must reproduce — CI runs this file in each. Regenerate after an
//! *intentional* engine change with:
//!
//! ```text
//! OBS_SNAPSHOT_UPDATE=1 cargo test --test obs_determinism
//! ```

use cynthia::obs::{set_enabled, tracer};
use cynthia::prelude::*;
use std::sync::Mutex;

/// The CI chaos seeds. Fixed so failures reproduce byte-for-byte.
const MASTER_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Serializes the tests in this binary: they toggle process-global
/// observability state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Serialized form: the strongest practical bit-for-bit comparison.
fn fingerprint(r: &TrainingReport) -> String {
    serde_json::to_string(r).expect("reports serialize")
}

/// FNV-1a 64-bit: a tiny, dependency-free stable digest for the goldens.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn chaos_report(seed: u64) -> TrainingReport {
    let catalog = default_catalog();
    let w = Workload::mnist_bsp().with_iterations(150);
    let plan = FaultInjector::new(InjectorConfig::chaos(12.0, 3600.0)).draw_plan(seed, 4, 2);
    simulate_faulted(
        &TrainJob {
            workload: &w,
            cluster: ClusterSpec::homogeneous(catalog.expect("m4.xlarge"), 4, 2),
            config: SimConfig::deterministic(seed),
        },
        &plan,
        &RecoveryPolicy::default(),
    )
}

#[test]
fn hooks_and_kill_switch_do_not_perturb_the_simulation() {
    let _g = OBS_LOCK.lock().unwrap();
    let mut digests = String::new();
    for seed in MASTER_SEEDS {
        // Full recording: metrics on, tracer on.
        set_enabled(true);
        tracer().set_enabled(true);
        let recorded = fingerprint(&chaos_report(seed));
        tracer().set_enabled(false);
        let _ = tracer().drain();

        // Metrics only (the default operating mode).
        let metered = fingerprint(&chaos_report(seed));

        // Kill switch: every hook reduced to one atomic load.
        set_enabled(false);
        let killed = fingerprint(&chaos_report(seed));
        set_enabled(true);

        assert_eq!(recorded, metered, "seed {seed}: tracer perturbed the run");
        assert_eq!(metered, killed, "seed {seed}: kill switch changed the run");
        digests.push_str(&format!("{seed} {:016x}\n", fnv1a(&recorded)));
    }

    // Cross-build pin: the `--no-default-features` build (hooks compiled
    // out) must reproduce the same bytes as the instrumented build.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/snapshots/faulted_fingerprints.txt"
    );
    if std::env::var_os("OBS_SNAPSHOT_UPDATE").is_some() {
        std::fs::write(golden_path, &digests).expect("rewrite fingerprints");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("read golden fingerprints");
    assert_eq!(
        digests, golden,
        "faulted-run fingerprints drifted from {golden_path}; if the engine \
         change is intentional, bless with OBS_SNAPSHOT_UPDATE=1"
    );
}

#[test]
fn kill_switch_does_not_perturb_the_slo_guard() {
    let _g = OBS_LOCK.lock().unwrap();
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    };
    let faults = FaultPlan::new(vec![
        FaultEvent::permanent(
            FaultKind::Straggler {
                worker: 0,
                factor: 0.05,
            },
            60.0,
        ),
        FaultEvent::transient(FaultKind::PsCrash { ps: 0 }, 120.0, 45.0),
    ]);
    let guard = || {
        run_guarded(
            &Workload::cifar10_bsp().with_iterations(800),
            &default_catalog(),
            &faults,
            &RecoveryPolicy::default(),
            &SloGuardConfig::new(goal, 17),
        )
        .expect("goal is feasible on a healthy fleet")
    };

    set_enabled(true);
    tracer().set_enabled(true);
    let recorded = guard();
    tracer().set_enabled(false);
    let _ = tracer().drain();
    set_enabled(false);
    let killed = guard();
    set_enabled(true);

    assert_eq!(
        serde_json::to_string(&recorded).expect("reports serialize"),
        serde_json::to_string(&killed).expect("reports serialize"),
        "observability changed the guard's decisions"
    );
}
