//! SLO-guard acceptance demo: a run degraded by an injected PS crash and
//! a hard straggler *misses* its deadline when left alone, and *meets* it
//! when the guard replans onto a rescue fleet (docs/FAULTS.md §SLO guard).

use cynthia::prelude::*;

/// cifar-10/BSP to loss 2.2 within an hour — comfortably feasible on a
/// healthy fleet (~12 min), hopeless under a 20x straggler.
fn goal() -> Goal {
    Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    }
}

fn crash_and_straggle() -> FaultPlan {
    FaultPlan::new(vec![
        // A worker degrades to 5% of its gFLOPS early and never recovers:
        // the BSP barrier paces the whole fleet at the straggler's speed.
        FaultEvent::permanent(
            FaultKind::Straggler {
                worker: 0,
                factor: 0.05,
            },
            60.0,
        ),
        // And the parameter server reboots mid-run, rolling progress back
        // to the last checkpoint.
        FaultEvent::transient(FaultKind::PsCrash { ps: 0 }, 120.0, 45.0),
    ])
}

#[test]
fn guard_rescues_a_deadline_the_baseline_misses() {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let cfg = SloGuardConfig::new(goal(), 17);
    let report = run_guarded(
        &w,
        &catalog,
        &crash_and_straggle(),
        &RecoveryPolicy::default(),
        &cfg,
    )
    .expect("goal is feasible on a healthy fleet");

    assert!(
        !report.unguarded_met_deadline,
        "baseline must miss: unguarded took {:.0}s of {:.0}s",
        report.unguarded_time, report.goal.deadline_secs
    );
    assert!(
        report.met_deadline,
        "guarded run must meet the deadline: took {:.0}s of {:.0}s with {} replans",
        report.guarded_time,
        report.goal.deadline_secs,
        report.replans.len()
    );
    assert!(!report.replans.is_empty(), "the guard must have fired");
    let first = &report.replans[0];
    assert!(
        first.projected_finish > report.goal.deadline_secs,
        "the firing must cite a projected miss"
    );
    assert!(first.restart_from <= first.progress);
    assert!(
        report.guarded_time < report.unguarded_time,
        "rescue must actually be faster"
    );
    // The rescue fleet costs money: guarded is not cheaper than the
    // healthy static plan would have been, and the report accounts for it.
    assert!(report.realized_cost > 0.0);
    assert_eq!(report.segments.len(), report.replans.len() + 1);
}

#[test]
fn guard_report_is_deterministic() {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let cfg = SloGuardConfig::new(goal(), 17);
    let a = run_guarded(
        &w,
        &catalog,
        &crash_and_straggle(),
        &RecoveryPolicy::default(),
        &cfg,
    )
    .unwrap();
    let b = run_guarded(
        &w,
        &catalog,
        &crash_and_straggle(),
        &RecoveryPolicy::default(),
        &cfg,
    )
    .unwrap();
    assert_eq!(a.replans, b.replans);
    assert_eq!(a.guarded_time, b.guarded_time);
    assert_eq!(a.realized_cost, b.realized_cost);
}
