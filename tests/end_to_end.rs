//! End-to-end integration: the whole pipeline (profile → fit → plan →
//! provision → train → bill) across workloads and goals.

use cynthia::prelude::*;

fn scheduler() -> Cynthia {
    Cynthia::new(default_catalog())
}

#[test]
fn cifar10_bsp_goal_is_met_at_reported_cost() {
    let s = scheduler();
    let goal = Goal {
        deadline_secs: 7200.0,
        target_loss: 0.8,
    };
    let report = s
        .run_end_to_end(&Workload::cifar10_bsp(), &goal)
        .expect("feasible");
    assert!(
        report.met_deadline,
        "took {:.0}s",
        report.training.total_time
    );
    assert!(report.met_loss, "final loss {}", report.training.final_loss);
    assert!(report.actual_cost > 0.0 && report.actual_cost < 10.0);
    // The bill matches Eq. (8) recomputed from the plan and actual time.
    let ty = s.catalog.expect(&report.plan.type_name);
    let expect = cynthia::cloud::billing::static_cluster_cost(
        ty.price_per_hour,
        report.plan.n_workers,
        ty.price_per_hour,
        report.plan.n_ps,
        report.training.total_time,
    );
    assert!((report.actual_cost - expect).abs() < 1e-9);
}

#[test]
fn vgg19_asp_goal_is_met() {
    let s = scheduler();
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 0.8,
    };
    let report = s
        .run_end_to_end(&Workload::vgg19_asp(), &goal)
        .expect("feasible");
    assert!(
        report.met_deadline,
        "took {:.0}s",
        report.training.total_time
    );
    assert!(report.met_loss, "final loss {}", report.training.final_loss);
    // ASP budgets iterations per worker.
    assert_eq!(
        report.plan.total_updates,
        report.plan.iterations * report.plan.n_workers as u64
    );
}

#[test]
fn impossible_goals_are_rejected_not_mispromised() {
    let s = scheduler();
    // Loss below the floor.
    assert!(s
        .run_end_to_end(
            &Workload::cifar10_bsp(),
            &Goal {
                deadline_secs: 7200.0,
                target_loss: 0.05
            }
        )
        .is_none());
    // Deadline no cluster in the catalog can hit.
    assert!(s
        .run_end_to_end(
            &Workload::vgg19_asp(),
            &Goal {
                deadline_secs: 30.0,
                target_loss: 0.8
            }
        )
        .is_none());
}

#[test]
fn pipeline_is_deterministic() {
    let goal = Goal {
        deadline_secs: 7200.0,
        target_loss: 0.8,
    };
    let a = scheduler()
        .run_end_to_end(&Workload::cifar10_bsp(), &goal)
        .unwrap();
    let b = scheduler()
        .run_end_to_end(&Workload::cifar10_bsp(), &goal)
        .unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.training.total_time, b.training.total_time);
    assert_eq!(a.actual_cost, b.actual_cost);
}

#[test]
fn relaxed_goals_never_cost_more_than_the_planner_promised() {
    let s = scheduler();
    let w = Workload::cifar10_bsp();
    let profile = s.profile(&w);
    let loss = s.fit_loss(&w, 4);
    for deadline in [5400.0, 9000.0, 14400.0] {
        let goal = Goal {
            deadline_secs: deadline,
            target_loss: 0.8,
        };
        if let Some(plan) = s.plan(&profile, &loss, &goal) {
            let report = s.execute(&w, &plan, &goal, 0.0);
            // The actual bill stays within 15% of the prediction (the
            // simulator and model agree that closely on these shapes).
            let drift = (report.actual_cost - plan.predicted_cost).abs() / plan.predicted_cost;
            assert!(
                drift < 0.15,
                "cost drift {:.1}% at deadline {deadline}",
                drift * 100.0
            );
        }
    }
}

#[test]
fn execution_report_carries_the_prototype_artifacts() {
    let s = scheduler();
    let goal = Goal {
        deadline_secs: 10800.0,
        target_loss: 0.8,
    };
    let report = s.run_end_to_end(&Workload::cifar10_bsp(), &goal).unwrap();
    // kubeadm-style join token from the simulated control plane.
    assert!(report.join_token.contains('.'));
    // Loss curve present and decreasing in trend.
    let curve = &report.training.loss_curve;
    assert!(curve.len() > 10);
    assert!(curve.last().unwrap().1 < curve.first().unwrap().1);
    // Planning overhead recorded (Sec. 5.3).
    assert!(report.planning_seconds < 1.0);
}
