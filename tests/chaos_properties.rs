//! Chaos suite for the fault-injection & recovery layer: random fault
//! plans drawn from seeded Poisson processes are thrown at the
//! ground-truth engine, which must
//!
//! * **terminate** — no fault plan the injector can draw may deadlock the
//!   event loop;
//! * **be bit-deterministic per seed** — identical `(seed, plan, policy)`
//!   inputs reproduce the report bit for bit;
//! * **conserve updates** — a completed run executed exactly its target:
//!   `simulated_iterations == target` and every update lost to a
//!   checkpoint rollback was replayed exactly once
//!   (`lost_updates == replayed_updates`), so
//!   `completed + lost − replayed ≡ total` with zero remaining;
//! * **degenerate cleanly** — the empty plan under the null policy is
//!   bit-identical to plain [`simulate`].
//!
//! CI's `chaos` job runs this file in release mode across the eight
//! master seeds below.

use cynthia::prelude::*;

/// The CI chaos seeds. Fixed so failures reproduce byte-for-byte.
const MASTER_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn cluster(n: u32, n_ps: u32) -> ClusterSpec {
    let catalog = default_catalog();
    ClusterSpec::homogeneous(catalog.expect("m4.xlarge"), n, n_ps)
}

fn faulted(
    w: &Workload,
    n: u32,
    n_ps: u32,
    seed: u64,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> TrainingReport {
    simulate_faulted(
        &TrainJob {
            workload: w,
            cluster: cluster(n, n_ps),
            config: SimConfig::deterministic(seed),
        },
        plan,
        policy,
    )
}

/// Serialized form: the strongest practical bit-for-bit comparison.
fn fingerprint(r: &TrainingReport) -> String {
    serde_json::to_string(r).expect("reports serialize")
}

/// Engine horizon comfortably past any recovered run of these workloads.
const HORIZON: f64 = 100_000.0;

fn chaos_plan(seed: u64, n: u32, n_ps: u32) -> FaultPlan {
    // ~12 events/hour of everything: crashes, departures, stragglers,
    // degraded links, PS crashes and stalls.
    FaultInjector::new(InjectorConfig::chaos(12.0, 3600.0)).draw_plan(
        seed,
        n as usize,
        n_ps as usize,
    )
}

fn assert_conservation(r: &TrainingReport, target: u64) {
    assert_eq!(
        r.simulated_iterations, target,
        "run completed short of its target"
    );
    assert_eq!(
        r.lost_updates, r.replayed_updates,
        "every lost update must be replayed exactly once"
    );
    assert!(r.total_time.is_finite() && r.total_time > 0.0);
    assert!(r.downtime_secs >= 0.0 && r.degraded_secs >= 0.0);
    assert!(
        r.downtime_secs + r.degraded_secs <= r.total_time + 1e-6,
        "impaired time {} + {} exceeds the run's {}",
        r.downtime_secs,
        r.degraded_secs,
        r.total_time
    );
}

#[test]
fn empty_plan_reproduces_simulate_bit_for_bit() {
    let w = Workload::mnist_bsp().with_iterations(120);
    for seed in MASTER_SEEDS {
        let plain = simulate(&TrainJob {
            workload: &w,
            cluster: cluster(4, 2),
            config: SimConfig::deterministic(seed),
        });
        let nulled = faulted(&w, 4, 2, seed, &FaultPlan::empty(), &RecoveryPolicy::none());
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&nulled),
            "seed {seed}: empty plan diverged from plain simulate"
        );
    }
}

#[test]
fn chaos_bsp_terminates_conserves_and_is_deterministic() {
    let w = Workload::mnist_bsp().with_iterations(150);
    for seed in MASTER_SEEDS {
        let plan = chaos_plan(seed, 4, 2);
        let a = faulted(&w, 4, 2, seed, &plan, &RecoveryPolicy::default());
        assert_conservation(&a, 150);
        assert!(
            a.total_time <= HORIZON,
            "recovery ran away: {}",
            a.total_time
        );
        let b = faulted(&w, 4, 2, seed, &plan, &RecoveryPolicy::default());
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed}: chaos run not bit-deterministic"
        );
    }
}

#[test]
fn chaos_asp_terminates_conserves_and_is_deterministic() {
    let w = Workload::resnet32_asp().with_iterations(120);
    for seed in MASTER_SEEDS {
        let plan = chaos_plan(seed, 3, 2);
        let a = faulted(&w, 3, 2, seed, &plan, &RecoveryPolicy::default());
        assert_conservation(&a, 120);
        let b = faulted(&w, 3, 2, seed, &plan, &RecoveryPolicy::default());
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed}: ASP chaos run not bit-deterministic"
        );
    }
}

#[test]
fn every_recovery_policy_survives_chaos() {
    let w = Workload::mnist_bsp().with_iterations(100);
    let policies = [
        RecoveryPolicy::none(),
        RecoveryPolicy::default(),
        RecoveryPolicy::aggressive(),
    ];
    for seed in [3u64, 21] {
        let plan = chaos_plan(seed, 4, 2);
        for policy in &policies {
            let r = faulted(&w, 4, 2, seed, &plan, policy);
            assert_conservation(&r, 100);
        }
    }
}

#[test]
fn ps_crash_rolls_back_and_replays() {
    let w = Workload::mnist_bsp().with_iterations(150);
    let baseline = faulted(&w, 4, 1, 7, &FaultPlan::empty(), &RecoveryPolicy::default());
    // Crash the only PS mid-run: a transient reboot, recovered from the
    // last 50-update checkpoint.
    let mid = baseline.total_time * 0.5;
    let plan = FaultPlan::new(vec![FaultEvent::transient(
        FaultKind::PsCrash { ps: 0 },
        mid,
        30.0,
    )]);
    let policy = RecoveryPolicy {
        checkpoint_interval_updates: 50,
        ..RecoveryPolicy::default()
    };
    let r = faulted(&w, 4, 1, 7, &plan, &policy);
    assert_conservation(&r, 150);
    assert_eq!(r.failovers, 1);
    assert!(r.lost_updates > 0, "mid-run crash must lose progress");
    assert!(
        r.lost_updates < 50,
        "rollback may not cross a checkpoint: lost {}",
        r.lost_updates
    );
    assert!(r.downtime_secs >= 30.0, "outage shorter than injected");
    assert!(r.total_time > baseline.total_time);
}

#[test]
fn permanent_ps_crash_fails_over_to_survivors() {
    let w = Workload::mnist_bsp().with_iterations(150);
    let baseline = faulted(&w, 4, 2, 9, &FaultPlan::empty(), &RecoveryPolicy::default());
    let plan = FaultPlan::new(vec![FaultEvent::permanent(
        FaultKind::PsCrash { ps: 1 },
        baseline.total_time * 0.4,
    )]);
    let r = faulted(&w, 4, 2, 9, &plan, &RecoveryPolicy::default());
    assert_conservation(&r, 150);
    assert_eq!(r.failovers, 1);
    assert!(
        r.total_time > baseline.total_time,
        "losing half the PS bandwidth cannot be free"
    );
}

#[test]
fn straggler_slows_bsp_down_then_releases() {
    let w = Workload::mnist_bsp().with_iterations(120);
    let baseline = faulted(&w, 4, 1, 5, &FaultPlan::empty(), &RecoveryPolicy::default());
    let plan = FaultPlan::new(vec![FaultEvent::transient(
        FaultKind::Straggler {
            worker: 2,
            factor: 0.02,
        },
        baseline.total_time * 0.1,
        baseline.total_time * 0.8,
    )]);
    let r = faulted(&w, 4, 1, 5, &plan, &RecoveryPolicy::default());
    assert_conservation(&r, 120);
    assert!(
        r.total_time > baseline.total_time * 1.05,
        "a 50x straggler must pace the barrier: {} vs {}",
        r.total_time,
        baseline.total_time
    );
    assert!(r.degraded_secs > 0.0);
}

// ---------------------------------------------------------------------
// `Disruption` edge-case regressions (the `simulate_disrupted` wrapper).

#[test]
fn disruption_at_time_zero_is_survivable() {
    let w = Workload::mnist_bsp().with_iterations(100);
    let r = simulate_disrupted(
        &TrainJob {
            workload: &w,
            cluster: cluster(4, 1),
            config: SimConfig::deterministic(2),
        },
        &[Disruption {
            worker: 0,
            at: 0.0,
            rejoin_at: Some(30.0),
        }],
    );
    assert_eq!(r.simulated_iterations, 100);
    assert_eq!(r.revocations, 1);
    assert_eq!(r.repairs, 1);
}

#[test]
fn disruption_past_completion_is_inert() {
    let w = Workload::mnist_bsp().with_iterations(100);
    let job = TrainJob {
        workload: &w,
        cluster: cluster(4, 1),
        config: SimConfig::deterministic(2),
    };
    let plain = simulate(&job);
    let late = plain.total_time * 2.0;
    let r = simulate_disrupted(
        &job,
        &[Disruption {
            worker: 1,
            at: late,
            rejoin_at: Some(late + 60.0),
        }],
    );
    assert_eq!(r.revocations, 0, "a post-completion reclaim never lands");
    assert_eq!(r.total_time, plain.total_time);
    assert_eq!(r.loss_curve, plain.loss_curve);
}

#[test]
fn overlapping_disruptions_of_same_worker_coalesce() {
    let w = Workload::mnist_bsp().with_iterations(120);
    let job = TrainJob {
        workload: &w,
        cluster: cluster(4, 1),
        config: SimConfig::deterministic(2),
    };
    let plain = simulate(&job);
    let t0 = plain.total_time * 0.2;
    // The second reclaim lands while the slot is already absent from the
    // first: it must be absorbed, not crash the engine or double-count.
    let r = simulate_disrupted(
        &job,
        &[
            Disruption {
                worker: 0,
                at: t0,
                rejoin_at: Some(t0 + 40.0),
            },
            Disruption {
                worker: 0,
                at: t0 + 10.0,
                rejoin_at: Some(t0 + 60.0),
            },
        ],
    );
    assert_eq!(r.simulated_iterations, 120);
    assert_eq!(r.revocations, 1, "absent slot cannot be revoked again");
    assert_eq!(r.repairs, 1);
}
