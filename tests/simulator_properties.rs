//! Property-based tests of the ground-truth training simulator:
//! conservation laws, determinism, and physical sanity across randomized
//! cluster shapes.

use cynthia::prelude::*;
use proptest::prelude::*;

fn run(w: &Workload, n: u32, n_ps: u32, seed: u64) -> TrainingReport {
    let catalog = default_catalog();
    simulate(&TrainJob {
        workload: w,
        cluster: ClusterSpec::homogeneous(catalog.expect("m4.xlarge"), n, n_ps),
        config: SimConfig::deterministic(seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical inputs produce bit-identical reports.
    #[test]
    fn simulation_is_deterministic(n in 1u32..10, n_ps in 1u32..4, seed in 0u64..50) {
        let w = Workload::mnist_bsp().with_iterations(120);
        let a = run(&w, n, n_ps, seed);
        let b = run(&w, n, n_ps, seed);
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.loss_curve, b.loss_curve);
        prop_assert_eq!(a.ps_cpu_util, b.ps_cpu_util);
        prop_assert_eq!(a.worker_cpu_util, b.worker_cpu_util);
    }

    /// Utilizations are proper fractions and the simulated time is
    /// positive and finite.
    #[test]
    fn physical_sanity(n in 1u32..12, n_ps in 1u32..4) {
        let w = Workload::mnist_bsp().with_iterations(150);
        let r = run(&w, n, n_ps, 1);
        prop_assert!(r.total_time.is_finite() && r.total_time > 0.0);
        for u in r.worker_cpu_util.iter().chain(&r.ps_cpu_util) {
            prop_assert!((0.0..=1.0).contains(u), "utilization {u}");
        }
        prop_assert_eq!(r.worker_cpu_util.len(), n as usize);
        prop_assert_eq!(r.ps_cpu_util.len(), n_ps as usize);
        prop_assert_eq!(r.n_workers, n);
        prop_assert_eq!(r.simulated_iterations, 150);
    }

    /// Conservation: total PS NIC volume equals pushes + pulls of the
    /// parameter payload (pulls of the final iteration may be cut off at
    /// completion).
    #[test]
    fn nic_volume_is_conserved(n in 1u32..8) {
        let w = Workload::mnist_bsp().with_iterations(100);
        let r = run(&w, n, 1, 2);
        let volume: f64 = r.ps_nic_mean_mbps.iter().sum::<f64>() * r.simulated_time;
        let expect = 2.0 * w.param_mb() * n as f64 * 100.0;
        // Within one iteration's worth of slack.
        let slack = 2.0 * w.param_mb() * n as f64;
        prop_assert!(
            (volume - expect).abs() <= slack + 1e-6,
            "volume {volume} vs expected {expect}"
        );
    }

    /// More iterations never take less time.
    #[test]
    fn time_is_monotone_in_iterations(n in 1u32..6) {
        let short = Workload::cifar10_bsp().with_iterations(40);
        let long = Workload::cifar10_bsp().with_iterations(80);
        let ts = run(&short, n, 1, 3).total_time;
        let tl = run(&long, n, 1, 3).total_time;
        prop_assert!(tl > ts, "{tl} vs {ts}");
    }

    /// The loss curve is sorted by iteration and ends at the target count
    /// with a loss no worse than it started.
    #[test]
    fn loss_curve_is_well_formed(n in 1u32..6, seed in 0u64..20) {
        let w = Workload::cifar10_bsp().with_iterations(600);
        let r = run(&w, n, 1, seed);
        let curve = &r.loss_curve;
        prop_assert!(curve.windows(2).all(|p| p[0].0 < p[1].0), "unsorted curve");
        prop_assert_eq!(curve.last().unwrap().0, 600);
        prop_assert!(curve.last().unwrap().1 <= curve.first().unwrap().1);
        prop_assert!(curve.iter().all(|(_, l)| l.is_finite() && *l > 0.0));
    }

    /// BSP iteration times are paced by the slowest worker: replacing one
    /// m4 with a straggler can only slow the run down.
    #[test]
    fn stragglers_never_speed_bsp_up(n in 2u32..8) {
        let catalog = default_catalog();
        let m4 = catalog.expect("m4.xlarge");
        let m1 = catalog.expect("m1.xlarge");
        let w = Workload::mnist_bsp().with_iterations(120);
        let homo = simulate(&TrainJob {
            workload: &w,
            cluster: ClusterSpec::homogeneous(m4, n, 1),
            config: SimConfig::deterministic(4),
        });
        let hetero = simulate(&TrainJob {
            workload: &w,
            cluster: ClusterSpec::heterogeneous(m4, m1, n, 1),
            config: SimConfig::deterministic(4),
        });
        prop_assert!(hetero.total_time >= homo.total_time * 0.99);
    }
}
