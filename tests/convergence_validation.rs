//! Validates the paper's statistical premises (Summary 2 / Eq. 1) against
//! *real* SGD: the `cynthia-dnn` threaded parameter server trains actual
//! MLPs, and the measured loss curves are fitted with the same
//! `FittedLossModel` the provisioner uses.

use cynthia::dnn::{train_parameter_server, Blobs, PsMode, PsTrainConfig};
use cynthia::prelude::*;

fn dataset() -> Blobs {
    Blobs::generate(1024, 16, 4, 0.6, 33)
}

/// Smooths a noisy minibatch loss curve into (iteration, loss) samples.
fn smooth(curve: &[(u64, f64)], window: usize) -> Vec<(u64, f64)> {
    curve
        .windows(window)
        .step_by(window)
        .map(|w| {
            let s = w[w.len() / 2].0;
            let l = w.iter().map(|(_, l)| l).sum::<f64>() / w.len() as f64;
            (s, l)
        })
        .collect()
}

#[test]
fn real_bsp_sgd_fits_eq1_well() {
    let data = dataset();
    let out = train_parameter_server(
        &[16, 32, 4],
        &data,
        &PsTrainConfig {
            mode: PsMode::Bsp,
            n_workers: 4,
            iterations: 600,
            batch: 32,
            lr: 0.15,
            seed: 5,
        },
    );
    let samples = smooth(&out.loss_curve, 12);
    let fit = FittedLossModel::fit(SyncMode::Bsp, &samples, 4);
    assert!(fit.beta0 > 0.0, "decay constant positive: {fit:?}");
    assert!(
        fit.r_squared > 0.6,
        "Eq. (1) should explain a real SGD curve: R²={}",
        fit.r_squared
    );
    // The fitted model's iteration estimate is in the right ballpark:
    // predicted loss at the end of training matches the observed tail.
    let predicted_end = fit.predict(600, 4);
    let observed_end = out.tail_loss(50);
    assert!(
        (predicted_end - observed_end).abs() < 0.3,
        "fit extrapolates: predicted {predicted_end}, observed {observed_end}"
    );
}

#[test]
fn real_asp_staleness_slows_convergence_per_update() {
    // The √n factor of Eq. (1): at the same global update count, more
    // ASP workers (hence more staleness) reach a given update with a
    // higher loss. The comparison must happen *mid-descent*: by the time
    // both configurations have fully converged, their tail losses differ
    // only by minibatch noise and the staleness penalty is invisible. Run
    // several seeds and require the ordering to hold on average —
    // individual thread interleavings are nondeterministic.
    let data = dataset();
    let run = |n: usize, seed: u64| {
        train_parameter_server(
            &[16, 32, 4],
            &data,
            &PsTrainConfig {
                mode: PsMode::Asp,
                n_workers: n,
                iterations: 400,
                batch: 16,
                lr: 0.35,
                seed,
            },
        )
    };
    // Mean loss over the global-update window [lo, hi): the descent phase.
    let window_loss = |curve: &[(u64, f64)], lo: u64, hi: u64| {
        let w: Vec<f64> = curve
            .iter()
            .filter(|(u, _)| (lo..hi).contains(u))
            .map(|(_, l)| *l)
            .collect();
        assert!(!w.is_empty(), "no updates in window {lo}..{hi}");
        w.iter().sum::<f64>() / w.len() as f64
    };
    let mut few_total = 0.0;
    let mut many_total = 0.0;
    let mut stale_few = 0.0;
    let mut stale_many = 0.0;
    for seed in 0..5 {
        let few = run(2, seed);
        let many = run(10, seed);
        few_total += window_loss(&few.loss_curve, 20, 120);
        many_total += window_loss(&many.loss_curve, 20, 120);
        stale_few += few.mean_staleness();
        stale_many += many.mean_staleness();
    }
    assert!(
        stale_many > stale_few,
        "staleness grows with workers: {stale_few} vs {stale_many}"
    );
    assert!(
        many_total > few_total * 0.98,
        "more stale workers should not converge faster per update: {few_total} vs {many_total}"
    );
}

#[test]
fn adam_curves_also_fit_eq1() {
    // Sec. 2: "we can use our method above to fit the training loss
    // achieved by the other optimization methods (e.g., Adam)".
    use cynthia::dnn::{train_single_node, Adam, Mlp};
    let data = dataset();
    let mut net = Mlp::new(&[16, 32, 4], 7);
    let mut opt = Adam::new(0.01);
    let out = train_single_node(&mut net, &data, &mut opt, 600, 32);
    assert!(
        out.final_accuracy > 0.8,
        "Adam should learn: {}",
        out.final_accuracy
    );
    let samples = smooth(&out.loss_curve, 12);
    let fit = FittedLossModel::fit(SyncMode::Bsp, &samples, 1);
    assert!(fit.beta0 > 0.0);
    assert!(
        fit.r_squared > 0.5,
        "Eq. (1) should fit an Adam curve: R²={}",
        fit.r_squared
    );
}

#[test]
fn analytic_convergence_profile_matches_real_sgd_shape() {
    // The simulator's loss generator uses ConvergenceProfile; check the
    // same functional family fits a real curve, tying the two worlds
    // together.
    let data = dataset();
    let out = train_parameter_server(
        &[16, 32, 4],
        &data,
        &PsTrainConfig {
            mode: PsMode::Bsp,
            n_workers: 2,
            iterations: 500,
            batch: 32,
            lr: 0.15,
            seed: 9,
        },
    );
    let samples = smooth(&out.loss_curve, 10);
    let fit = FittedLossModel::fit(SyncMode::Bsp, &samples, 2);
    // Build the equivalent analytic profile and compare mid-curve.
    let profile = ConvergenceProfile {
        beta0: fit.beta0,
        beta1: fit.beta1.max(0.0),
        initial_loss: samples.first().unwrap().1,
        noise_sd: 0.0,
    };
    for s in [100u64, 250, 450] {
        let analytic = profile.expected_loss(SyncMode::Bsp, s, 2);
        let nearest = samples.iter().min_by_key(|(x, _)| x.abs_diff(s)).unwrap().1;
        assert!(
            (analytic - nearest).abs() < 0.45,
            "s={s}: analytic {analytic} vs measured {nearest}"
        );
    }
}
