//! End-to-end acceptance of the elastic subsystem: a BSP job on a spot
//! fleet, with injected revocations, completes under `SpotWithFallback`
//! replanning — cheaper than on-demand when the market is quiet, still
//! (mostly) on deadline when it is not.

use cynthia::prelude::*;
use cynthia_cloud::RevocationModel;

const SEEDS: [u64; 5] = [3, 5, 9, 17, 23];

/// Fraction of seeds that must finish within the deadline under an
/// aggressive reclaim rate.
const REQUIRED_DEADLINE_FRACTION: f64 = 0.6;

fn cifar_goal() -> Goal {
    Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    }
}

fn config(policy: RepairPolicy, rate_per_hour: f64, seed: u64) -> ElasticConfig {
    let mut cfg = ElasticConfig::new(cifar_goal(), policy, seed);
    cfg.market.revocations = RevocationModel::Exponential { rate_per_hour };
    cfg
}

#[test]
fn quiet_spot_market_beats_on_demand_on_every_seed() {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    for seed in SEEDS {
        let cfg = config(RepairPolicy::spot_with_fallback(), 0.0, seed);
        let report = run_elastic(&workload, &catalog, &cfg).expect("goal is feasible");
        assert_eq!(report.training.revocations, 0, "rate 0 must never reclaim");
        assert!(
            report.realized_cost < report.on_demand_baseline_cost,
            "seed {seed}: spot fleet (${:.4}) must be strictly cheaper than \
             on-demand (${:.4})",
            report.realized_cost,
            report.on_demand_baseline_cost
        );
        assert!(report.met_deadline, "seed {seed} missed the deadline");
        assert!(report.met_loss, "seed {seed} missed the loss target");
    }
}

#[test]
fn disrupted_spot_fleet_stays_predictable() {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let mut met = 0usize;
    let mut total_revocations = 0u32;
    for seed in SEEDS {
        let cfg = config(RepairPolicy::spot_with_fallback(), 6.0, seed);
        let report = run_elastic(&workload, &catalog, &cfg).expect("goal is feasible");
        // The job always completes and converges, whatever the market did.
        assert!(report.met_loss, "seed {seed}: training did not converge");
        assert!(
            report.training.total_time.is_finite() && report.training.total_time > 0.0,
            "seed {seed}: run did not complete"
        );
        total_revocations += report.training.revocations;
        if report.met_deadline {
            met += 1;
        }
    }
    assert!(
        total_revocations > 0,
        "a 6/hour reclaim rate should disrupt at least one of {} runs",
        SEEDS.len()
    );
    let fraction = met as f64 / SEEDS.len() as f64;
    assert!(
        fraction >= REQUIRED_DEADLINE_FRACTION,
        "replanner kept only {met}/{} runs within deadline (need ≥ {:.0}%)",
        SEEDS.len(),
        REQUIRED_DEADLINE_FRACTION * 100.0
    );
}

#[test]
fn on_demand_fallback_engages_under_pressure() {
    // Sweep seeds at a hostile reclaim rate: across them the replanner
    // must exercise repair (not just shrink), and on-demand anchors of a
    // mixed fleet must never be reclaimed.
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let mut repairs = 0usize;
    for seed in SEEDS {
        let cfg = config(RepairPolicy::spot_with_fallback(), 20.0, seed);
        let report = run_elastic(&workload, &catalog, &cfg).expect("goal is feasible");
        repairs += report.repairs();
        assert_eq!(
            report.revocations(),
            report.repairs() + report.shrinks(),
            "seed {seed}: every reclaim needs exactly one decision"
        );
    }
    assert!(
        repairs > 0,
        "20/hour across {} seeds should force at least one repair",
        SEEDS.len()
    );
}

#[test]
fn summary_reports_miss_rate_over_seeds() {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let quiet = summarize(
        &workload,
        &catalog,
        &config(RepairPolicy::spot_with_fallback(), 0.0, 0),
        &SEEDS,
    )
    .expect("goal is feasible");
    assert_eq!(quiet.deadline_miss_rate, 0.0);
    assert!(quiet.mean_realized_cost < quiet.mean_on_demand_cost);

    let od = summarize(
        &workload,
        &catalog,
        &config(RepairPolicy::OnDemandOnly, 6.0, 0),
        &SEEDS,
    )
    .expect("goal is feasible");
    assert_eq!(od.mean_revocations, 0.0, "on-demand is never reclaimed");
    assert!(
        (od.mean_realized_cost - od.mean_on_demand_cost).abs() < 1e-9,
        "on-demand-only realizes exactly the static Eq. (8) cost"
    );
}
