//! Cross-crate prediction accuracy: the paper's central quantitative
//! claim (Sec. 5.1) — Cynthia's model tracks the ground truth within a
//! few percent across workloads, cluster shapes, instance types, and
//! synchronization modes, while the baselines degrade under bottlenecks.

use cynthia::prelude::*;
use cynthia_core::profiler::profile_workload;

fn observed(w: &Workload, spec: ClusterSpec, seed: u64) -> f64 {
    simulate(&TrainJob {
        workload: w,
        cluster: spec,
        config: SimConfig::fast(seed),
    })
    .total_time
}

#[test]
fn cynthia_tracks_all_four_workloads() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let cases: Vec<(Workload, Vec<u32>)> = vec![
        (Workload::mnist_bsp().with_iterations(2000), vec![1, 4, 8]),
        (
            Workload::cifar10_bsp().with_iterations(1000),
            vec![4, 9, 13],
        ),
        (Workload::resnet32_asp().with_iterations(300), vec![4, 9]),
        (Workload::vgg19_asp().with_iterations(300), vec![7, 12]),
    ];
    for (w, counts) in cases {
        let model = CynthiaModel::new(profile_workload(&w, m4, 3));
        for n in counts {
            let obs = observed(&w, ClusterSpec::homogeneous(m4, n, 1), 5);
            let pred = model.predict_time(&ClusterShape::homogeneous(m4, n, 1), w.iterations);
            let err = (pred - obs).abs() / obs;
            assert!(
                err < 0.12,
                "{} n={n}: {:.1}% ({pred:.0} vs {obs:.0})",
                w.id(),
                err * 100.0
            );
        }
    }
}

#[test]
fn profile_transfers_across_instance_types() {
    // Fig. 8's property: profile once on m4, predict on anything.
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let w = Workload::cifar10_bsp().with_iterations(1000);
    let model = CynthiaModel::new(profile_workload(&w, m4, 3));
    for ty_name in ["c3.xlarge", "r3.xlarge", "c4.xlarge"] {
        let ty = catalog.expect(ty_name);
        let obs = observed(&w, ClusterSpec::homogeneous(ty, 8, 1), 7);
        let pred = model.predict_time(&ClusterShape::homogeneous(ty, 8, 1), w.iterations);
        let err = (pred - obs).abs() / obs;
        assert!(
            err < 0.12,
            "{ty_name}: {:.1}% ({pred:.0} vs {obs:.0})",
            err * 100.0
        );
    }
}

#[test]
fn baselines_fail_exactly_where_the_paper_says() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");

    // (1) Bottleneck regime (mnist at 8 workers): both baselines
    // underpredict; Cynthia does not.
    let w = Workload::mnist_bsp().with_iterations(2000);
    let profile = profile_workload(&w, m4, 3);
    let cynthia = CynthiaModel::new(profile.clone());
    let paleo = PaleoModel::new(profile.clone());
    let optimus = OptimusModel::fit_from_simulation(&w, m4, &[1, 2, 3, 4], 3);
    let shape = ClusterShape::homogeneous(m4, 8, 1);
    let obs = observed(&w, ClusterSpec::homogeneous(m4, 8, 1), 9);
    let e = |p: f64| (p - obs) / obs;
    assert!(e(cynthia.predict_time(&shape, 2000)).abs() < 0.10);
    assert!(
        e(optimus.predict_time(&shape, 2000)) < -0.15,
        "Optimus should underpredict the knee"
    );
    assert!(
        e(paleo.predict_time(&shape, 2000)) < -0.15,
        "Paleo should underpredict the knee"
    );

    // (2) Balanced BSP (cifar10 at 9 workers): additive baselines
    // overpredict because they ignore the compute/communication overlap.
    let w2 = Workload::cifar10_bsp().with_iterations(1000);
    let profile2 = profile_workload(&w2, m4, 3);
    let cynthia2 = CynthiaModel::new(profile2.clone());
    let paleo2 = PaleoModel::new(profile2);
    let shape2 = ClusterShape::homogeneous(m4, 9, 1);
    let obs2 = observed(&w2, ClusterSpec::homogeneous(m4, 9, 1), 9);
    assert!(((cynthia2.predict_time(&shape2, 1000) - obs2) / obs2).abs() < 0.10);
    assert!(
        (paleo2.predict_time(&shape2, 1000) - obs2) / obs2 > 0.25,
        "Paleo should overpredict the balanced regime"
    );
}

#[test]
fn predicted_worker_utilization_matches_table2_shape() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let w = Workload::mnist_bsp().with_iterations(1500);
    let model = CynthiaModel::new(profile_workload(&w, m4, 3));
    // Predicted busy fraction tracks the measured utilization closely and
    // both collapse as the PS saturates.
    let mut last = f64::INFINITY;
    for n in [2u32, 4, 8] {
        let predicted = model.predicted_worker_busy_fraction(&ClusterShape::homogeneous(m4, n, 1));
        let report = simulate(&TrainJob {
            workload: &w,
            cluster: ClusterSpec::homogeneous(m4, n, 1),
            config: SimConfig::fast(5),
        });
        let measured = report.mean_worker_util();
        assert!(
            predicted <= last + 1e-9,
            "utilization must not increase with n"
        );
        last = predicted;
        assert!(
            (predicted - measured).abs() < 0.12,
            "n={n}: predicted u={predicted:.2} vs measured {measured:.2}"
        );
        // The paper-literal demand/supply u is an optimistic envelope.
        let u_paper = model.worker_utilization(&ClusterShape::homogeneous(m4, n, 1));
        assert!(
            u_paper + 1e-9 >= predicted,
            "n={n}: {u_paper} vs {predicted}"
        );
    }
}
