//! Determinism properties of the elastic subsystem: every observable of
//! an elastic run — reclaim schedules, repair decisions, realized cost,
//! engine timing — is a pure function of the master seed.

use cynthia::prelude::*;
use cynthia_cloud::{default_catalog, RevocationModel, SpotMarket, SpotMarketConfig};
use proptest::prelude::*;

fn config(seed: u64, rate_per_hour: f64) -> ElasticConfig {
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    };
    let mut cfg = ElasticConfig::new(goal, RepairPolicy::spot_with_fallback(), seed);
    cfg.market.revocations = RevocationModel::Exponential { rate_per_hour };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed ⇒ bit-identical reclaim schedules and price traces,
    /// whatever the slot or horizon.
    #[test]
    fn market_is_a_pure_function_of_the_seed(seed in 0u64..1_000_000, slot in 0u64..64) {
        let mk = || SpotMarket::new(SpotMarketConfig::default(), seed);
        let catalog = default_catalog();
        let ty = catalog.expect("m4.xlarge");
        let a = mk().revocation_times(&ty.name, slot, 86_400.0);
        let b = mk().revocation_times(&ty.name, slot, 86_400.0);
        prop_assert_eq!(&a, &b);
        let pa = mk().price_trace(ty, 86_400.0);
        let pb = mk().price_trace(ty, 86_400.0);
        prop_assert_eq!(pa.points(), pb.points());
        // Slots are independent renewal processes: a different slot under
        // the same seed draws a different schedule (unless both are empty).
        let other = mk().revocation_times(&ty.name, slot + 1, 86_400.0);
        if !(a.is_empty() && other.is_empty()) {
            prop_assert_ne!(&a, &other);
        }
    }
}

proptest! {
    // Each case runs four full-detail simulations; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same master seed ⇒ bit-identical timeline (revocations + repair
    /// decisions), realized cost, and engine observables.
    #[test]
    fn elastic_run_is_bit_identical_per_seed(seed in 0u64..1_000) {
        let catalog = default_catalog();
        let workload = Workload::cifar10_bsp();
        let cfg = config(seed, 12.0);
        let a = run_elastic(&workload, &catalog, &cfg).expect("goal is feasible");
        let b = run_elastic(&workload, &catalog, &cfg).expect("goal is feasible");
        prop_assert_eq!(&a.timeline, &b.timeline);
        prop_assert_eq!(a.realized_cost.to_bits(), b.realized_cost.to_bits());
        prop_assert_eq!(
            a.on_demand_baseline_cost.to_bits(),
            b.on_demand_baseline_cost.to_bits()
        );
        prop_assert_eq!(a.training.total_time.to_bits(), b.training.total_time.to_bits());
        prop_assert_eq!(a.training.final_loss.to_bits(), b.training.final_loss.to_bits());
        prop_assert_eq!(a.training.revocations, b.training.revocations);
        prop_assert_eq!(a.training.repairs, b.training.repairs);
    }
}

#[test]
fn different_seeds_draw_different_markets() {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let a = run_elastic(&workload, &catalog, &config(101, 12.0)).expect("goal is feasible");
    let b = run_elastic(&workload, &catalog, &config(202, 12.0)).expect("goal is feasible");
    // Distinct seeds must not replay the same run: either the timelines
    // differ or (vanishingly unlikely at 12/hour) the realized timings do.
    assert!(
        a.timeline != b.timeline
            || a.training.total_time.to_bits() != b.training.total_time.to_bits(),
        "seeds 101 and 202 produced identical runs"
    );
}
