//! Budget planner: sweep deadlines and loss targets for a workload and
//! print the cost-efficient plan for each goal — the decision table a
//! practitioner would consult before launching a training job (the
//! planning half of Figs. 11–12).
//!
//! ```text
//! cargo run --release --example budget_planner
//! ```

use cynthia::prelude::*;

fn main() {
    let scheduler = Cynthia::new(default_catalog());
    let workload = Workload::cifar10_bsp();
    let profile = scheduler.profile(&workload);
    // Ground-truth convergence as if fitted from a prior production run.
    let loss = FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    };

    println!(
        "Budget planner for {} (profiled on {})\n",
        workload.id(),
        profile.baseline_type
    );
    println!(
        "{:>9}  {:>6}  {:>22}  {:>9}  {:>9}  {:>8}",
        "deadline", "loss", "plan", "pred time", "pred cost", "$/update"
    );

    for target_loss in [0.8, 0.7, 0.6, 0.5] {
        for deadline_mins in [30u32, 60, 120, 240] {
            let goal = Goal {
                deadline_secs: deadline_mins as f64 * 60.0,
                target_loss,
            };
            match scheduler.plan(&profile, &loss, &goal) {
                Some(plan) => println!(
                    "{:>7}m  {:>6.2}  {:>22}  {:>8.0}s  {:>9.3}  {:>8.5}",
                    deadline_mins,
                    target_loss,
                    format!("{}×{} + {}ps", plan.n_workers, plan.type_name, plan.n_ps),
                    plan.predicted_time,
                    plan.predicted_cost,
                    plan.predicted_cost / plan.total_updates as f64,
                ),
                None => println!(
                    "{:>7}m  {:>6.2}  {:>22}",
                    deadline_mins, target_loss, "infeasible"
                ),
            }
        }
    }

    println!(
        "\nNote: targets at or below the fitted loss floor (β1 = {:.2}) are\n\
         unreachable at any scale; very tight deadlines become infeasible\n\
         once the PS service bandwidth saturates.",
        loss.beta1
    );
}
