//! Heterogeneity study: how stragglers poison BSP barriers and dilute ASP
//! throughput, and how well the performance model tracks both (the
//! phenomena of Figs. 1 and 9).
//!
//! ```text
//! cargo run --release --example heterogeneity_study
//! ```

use cynthia::prelude::*;

fn main() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let m1 = catalog.expect("m1.xlarge");
    println!(
        "fast worker: {} ({:.2} GFLOPS/core); straggler: {} ({:.2} GFLOPS/core)\n",
        m4.name, m4.core_gflops, m1.name, m1.core_gflops
    );

    for (workload, iters) in [
        (Workload::mnist_bsp(), 2000u64),
        (Workload::resnet32_asp(), 300),
    ] {
        let w = workload.with_iterations(iters);
        let profile = profile_workload(&w, m4, 7);
        let model = CynthiaModel::new(profile);
        println!("== {} ==", w.id());
        println!(
            "{:>7}  {:>12}  {:>12}  {:>10}  {:>12}",
            "workers", "homo (s)", "hetero (s)", "slowdown", "pred hetero"
        );
        for n in [2u32, 4, 8] {
            let homo_spec = ClusterSpec::homogeneous(m4, n, 1);
            let hetero_spec = ClusterSpec::heterogeneous(m4, m1, n, 1);
            let homo = simulate(&TrainJob {
                workload: &w,
                cluster: homo_spec,
                config: SimConfig::fast(1),
            })
            .total_time;
            let hetero = simulate(&TrainJob {
                workload: &w,
                cluster: hetero_spec.clone(),
                config: SimConfig::fast(1),
            })
            .total_time;
            let predicted =
                model.predict_time(&ClusterShape::from_spec(&hetero_spec), w.iterations);
            println!(
                "{:>7}  {:>12.0}  {:>12.0}  {:>9.0}%  {:>11.0}s",
                n,
                homo,
                hetero,
                (hetero / homo - 1.0) * 100.0,
                predicted
            );
        }
        println!();
    }

    println!(
        "BSP pays for stragglers directly (the barrier waits for the\n\
         slowest worker, Eq. 4's min); ASP only loses the stragglers'\n\
         share of aggregate throughput. This is why Cynthia provisions\n\
         homogeneous clusters (Sec. 4)."
    );
}
