//! Quickstart: submit a DDNN training job with a performance goal and let
//! Cynthia profile, plan, provision, and train it — the full pipeline of
//! the prototype in Sec. 5 of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cynthia::prelude::*;

fn main() {
    let scheduler = Cynthia::new(default_catalog());
    let workload = Workload::cifar10_bsp();
    let goal = Goal {
        deadline_secs: 7200.0, // two hours
        target_loss: 0.8,
    };

    println!("== workload ==");
    println!("{}", workload.model.summary().render_table());

    // Step 1: one-shot 30-iteration profiling on the baseline worker.
    let profile = scheduler.profile(&workload);
    println!("== profile (Table 4 quantities) ==");
    println!(
        "w_iter = {:.3} GFLOP, g_param = {:.2} MB, c_prof = {:.3} GFLOPS, b_prof = {:.2} MB/s",
        profile.w_iter_gflops, profile.g_param_mb, profile.c_prof_gflops, profile.b_prof_mbps
    );
    println!(
        "profiling took {:.1} virtual seconds\n",
        profile.profiling_wallclock
    );

    // Step 2: loss model from a reference run (Eq. 1).
    let loss = scheduler.fit_loss(&workload, 4);
    println!("== fitted loss model ==");
    println!(
        "loss(s) = {:.1}/s + {:.3}   (R² = {:.4})\n",
        loss.beta0, loss.beta1, loss.r_squared
    );

    // Step 3: Algorithm 1 provisioning.
    let plan = scheduler
        .plan(&profile, &loss, &goal)
        .expect("the goal is feasible");
    println!("== plan ==");
    println!(
        "{} workers + {} PS on {} | {} iterations | predicted {:.0}s, ${:.3}",
        plan.n_workers,
        plan.n_ps,
        plan.type_name,
        plan.iterations,
        plan.predicted_time,
        plan.predicted_cost
    );

    // Steps 4-5: provision, train, settle the bill.
    let report = scheduler.execute(&workload, &plan, &goal, 0.0);
    println!("\n== outcome ==");
    println!(
        "trained {} updates in {:.0}s (goal {:.0}s) -> met: {}",
        report.training.iterations,
        report.training.total_time,
        goal.deadline_secs,
        report.met_deadline
    );
    println!(
        "final loss {:.3} (goal {:.2}) -> met: {}",
        report.training.final_loss, goal.target_loss, report.met_loss
    );
    println!("actual cost ${:.3}", report.actual_cost);
    println!("cluster join token: {}", report.join_token);
}
