//! ASP vs BSP: the synchronization trade-off the paper's loss model
//! (Eq. 1) captures — ASP iterates faster but staleness inflates the
//! iterations needed, so the *time to a target loss* is what matters.
//!
//! ```text
//! cargo run --release --example asp_vs_bsp
//! ```

use cynthia::prelude::*;

fn main() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let base = Workload::resnet32_asp();
    let target_loss = 0.65;

    println!(
        "{} to loss ≤ {target_loss} on m4.xlarge clusters (1 PS)\n",
        base.model.name
    );
    println!(
        "{:>7}  {:>5}  {:>9}  {:>10}  {:>11}  {:>10}",
        "workers", "sync", "updates", "time (s)", "final loss", "staleness"
    );

    for sync in [SyncMode::Bsp, SyncMode::Asp] {
        for n in [2u32, 4, 8] {
            let w = base.clone().with_sync(sync);
            let updates = w
                .convergence
                .updates_to_reach(sync, target_loss, n)
                .expect("reachable target");
            let w = w.with_iterations(updates);
            let report = simulate(&TrainJob {
                workload: &w,
                cluster: ClusterSpec::homogeneous(m4, n, 1),
                config: SimConfig::fast(11),
            });
            println!(
                "{:>7}  {:>5}  {:>9}  {:>10.0}  {:>11.3}  {:>10.1}",
                n,
                sync.label(),
                updates,
                report.total_time,
                report.final_loss,
                report.staleness.mean
            );
        }
    }

    println!(
        "\nBSP needs the same update count at any scale (the barrier keeps\n\
         gradients fresh) and splits each batch n ways; ASP's updates are\n\
         whole batches running concurrently, but staleness multiplies the\n\
         required count by ≈ √n (Eq. 1). Which wins depends on where the\n\
         PS bottlenecks — exactly what the performance model predicts."
    );
}
