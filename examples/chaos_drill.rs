//! Chaos drill: fault rate × recovery policy, priced.
//!
//! Sweeps the fault injector's event rate against the three recovery
//! policies on a fixed cifar-10/BSP fleet, several master seeds each,
//! and tabulates realized runtime, Eq. (8) cost, and the deadline-miss
//! rate — the robustness counterpart of the spot-savings frontier:
//!
//! ```text
//! cargo run --release --example chaos_drill [-- --small]
//! ```
//!
//! Then demonstrates the SLO guard (docs/FAULTS.md): a fleet degraded by
//! a permanent straggler plus a PS crash misses its deadline when left
//! alone, and meets it when the guard replans onto a rescue fleet.
//!
//! Writes the sweep as `CHAOS_drill.json` (CI uploads it next to the
//! bench reports). `--small` trims seeds and rates for the CI smoke run.

use cynthia::prelude::*;
use cynthia_cloud::billing::static_cluster_cost;
use serde::Serialize;

const DEADLINE_SECS: f64 = 3600.0;
const N_WORKERS: u32 = 4;
const N_PS: u32 = 2;

#[derive(Debug, Clone, Serialize)]
struct DrillRow {
    policy: String,
    events_per_hour: f64,
    seeds: usize,
    mean_time_secs: f64,
    mean_cost: f64,
    deadline_miss_rate: f64,
    mean_downtime_secs: f64,
    mean_degraded_secs: f64,
    mean_lost_updates: f64,
    mean_retries: f64,
    mean_failovers: f64,
}

fn policy_name(p: &RecoveryPolicy) -> &'static str {
    if p.retry_budget == 0 {
        "none"
    } else if p.checkpoint_interval_updates <= 20 {
        "aggressive"
    } else {
        "default"
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let catalog = default_catalog();
    let ty = catalog.expect("m4.xlarge").clone();
    // 800 updates ≈ 21 min healthy on this fleet: room for faults inside
    // the deadline, so the miss column measures the *policies*.
    let workload = Workload::cifar10_bsp().with_iterations(800);

    let seeds: Vec<u64> = if small {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 5, 8, 13, 21, 34]
    };
    let rates: &[f64] = if small {
        &[0.0, 8.0]
    } else {
        &[0.0, 2.0, 4.0, 8.0, 16.0]
    };
    let policies = [
        RecoveryPolicy::none(),
        RecoveryPolicy::default(),
        RecoveryPolicy::aggressive(),
    ];

    println!(
        "cifar-10/BSP on {} x{} + {} PS, deadline {:.0} s, {} seeds\n",
        ty.name,
        N_WORKERS,
        N_PS,
        DEADLINE_SECS,
        seeds.len()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>9} {:>7} {:>9} {:>9} {:>7} {:>8}",
        "policy", "rate/h", "time s", "cost $", "miss", "down s", "degr s", "lost", "retries"
    );

    let mut rows: Vec<DrillRow> = Vec::new();
    for &rate in rates {
        for policy in &policies {
            let mut times = 0.0;
            let mut costs = 0.0;
            let mut misses = 0usize;
            let mut down = 0.0;
            let mut degraded = 0.0;
            let mut lost = 0.0;
            let mut retries = 0.0;
            let mut failovers = 0.0;
            for &seed in &seeds {
                let plan = FaultInjector::new(InjectorConfig::chaos(rate, DEADLINE_SECS))
                    .draw_plan(seed, N_WORKERS as usize, N_PS as usize);
                let report = simulate_faulted(
                    &TrainJob {
                        workload: &workload,
                        cluster: ClusterSpec::homogeneous(&ty, N_WORKERS, N_PS),
                        config: SimConfig::deterministic(seed),
                    },
                    &plan,
                    policy,
                );
                times += report.total_time;
                costs += static_cluster_cost(
                    ty.price_per_hour,
                    N_WORKERS,
                    ty.price_per_hour,
                    N_PS,
                    report.total_time,
                );
                misses += usize::from(report.total_time > DEADLINE_SECS);
                down += report.downtime_secs;
                degraded += report.degraded_secs;
                lost += report.lost_updates as f64;
                retries += report.retries as f64;
                failovers += report.failovers as f64;
            }
            let n = seeds.len() as f64;
            let row = DrillRow {
                policy: policy_name(policy).to_string(),
                events_per_hour: rate,
                seeds: seeds.len(),
                mean_time_secs: times / n,
                mean_cost: costs / n,
                deadline_miss_rate: misses as f64 / n,
                mean_downtime_secs: down / n,
                mean_degraded_secs: degraded / n,
                mean_lost_updates: lost / n,
                mean_retries: retries / n,
                mean_failovers: failovers / n,
            };
            println!(
                "{:<12} {:>8.1} {:>10.1} {:>9.4} {:>6.0}% {:>9.1} {:>9.1} {:>7.1} {:>8.1}",
                row.policy,
                row.events_per_hour,
                row.mean_time_secs,
                row.mean_cost,
                row.deadline_miss_rate * 100.0,
                row.mean_downtime_secs,
                row.mean_degraded_secs,
                row.mean_lost_updates,
                row.mean_retries,
            );
            rows.push(row);
        }
        println!();
    }

    // ------------------------------------------------------------------
    // SLO guard demo: rescue a run the faults have doomed.
    let goal = Goal {
        deadline_secs: DEADLINE_SECS,
        target_loss: 2.2,
    };
    let faults = FaultPlan::new(vec![
        FaultEvent::permanent(
            FaultKind::Straggler {
                worker: 0,
                factor: 0.05,
            },
            60.0,
        ),
        FaultEvent::transient(FaultKind::PsCrash { ps: 0 }, 120.0, 45.0),
    ]);
    let guarded = run_guarded(
        &workload,
        &catalog,
        &faults,
        &RecoveryPolicy::default(),
        &SloGuardConfig::new(goal, 17),
    )
    .expect("goal is feasible on a healthy fleet");
    println!("SLO guard: 20x straggler at 60 s + PS crash at 120 s, deadline {DEADLINE_SECS:.0} s");
    println!(
        "  unguarded: {:>8.0} s  -> {}",
        guarded.unguarded_time,
        if guarded.unguarded_met_deadline {
            "met"
        } else {
            "MISSED"
        }
    );
    for r in &guarded.replans {
        println!(
            "  guard fired at {:.0} s: projected finish {:.0} s, \
             restart from update {} on {} workers (was {})",
            r.at, r.projected_finish, r.restart_from, r.n_after, r.n_before
        );
    }
    println!(
        "  guarded:   {:>8.0} s  -> {}  (cost ${:.2} vs unguarded ${:.2})",
        guarded.guarded_time,
        if guarded.met_deadline {
            "met"
        } else {
            "MISSED"
        },
        guarded.realized_cost,
        guarded.unguarded_cost
    );

    cynthia_obs::export::write_json_pretty("CHAOS_drill.json", &rows)
        .expect("write CHAOS_drill.json");
    println!("\nwrote CHAOS_drill.json ({} rows)", rows.len());
}
