//! Execution-trace example: run a short BSP job with tracing enabled,
//! print a per-lane busy summary, and export a Chrome trace you can open
//! in `chrome://tracing` or Perfetto to *see* the PS bottleneck form.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use cynthia::prelude::*;
use cynthia::train::simulate_traced;
use cynthia::train::trace::Activity;

fn main() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let workload = Workload::mnist_bsp().with_iterations(200);

    for n in [2u32, 8] {
        let job = TrainJob {
            workload: &workload,
            cluster: ClusterSpec::homogeneous(m4, n, 1),
            config: SimConfig::deterministic(7),
        };
        let (report, trace) = simulate_traced(&job, 500_000);
        println!(
            "== {n} workers: {:.1}s for {} iterations ==",
            report.total_time, report.iterations
        );
        let horizon = report.simulated_time;
        for j in 0..n as usize {
            let lane = format!("worker-{j}");
            let compute = trace.busy_time(&lane, Activity::Compute);
            println!(
                "  {lane}: computing {:.0}% of the time",
                compute / horizon * 100.0
            );
        }
        let apply = trace.busy_time("ps-0", Activity::Apply);
        println!(
            "  ps-0: applying {:.0}% of the time",
            apply / horizon * 100.0
        );

        let path = format!("/tmp/cynthia-trace-{n}wk.json");
        std::fs::write(&path, trace.to_chrome_trace()).expect("write trace");
        println!(
            "  wrote {} spans to {path} (open in chrome://tracing)\n",
            trace.spans().len()
        );
    }

    println!(
        "With 2 workers the timeline shows busy compute lanes and an idle\n\
         PS; with 8 the picture inverts — the PS apply lane is solid and\n\
         workers spend most of each iteration stalled on pulls. That is\n\
         Fig. 1(b)'s U-curve, visible span by span."
    );
}
