//! Multi-PS scaling: when does a second (or fourth) parameter server pay
//! for itself? Reproduces the Fig. 10 reasoning that justifies Theorem
//! 4.1's minimum-PS rule, with per-configuration cost.
//!
//! ```text
//! cargo run --release --example multi_ps_scaling
//! ```

use cynthia::prelude::*;

fn main() {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");

    for (workload, iters, counts) in [
        (Workload::mnist_bsp(), 3000u64, [8u32, 16]),
        (Workload::vgg19_asp(), 200, [9, 12]),
    ] {
        let w = workload.with_iterations(iters);
        println!("== {} ==", w.id());
        println!(
            "{:>7}  {:>4}  {:>10}  {:>9}  {:>9}  {:>9}",
            "workers", "PS", "time (s)", "PS util", "NIC MB/s", "cost ($)"
        );
        for &n in &counts {
            for n_ps in [1u32, 2, 4] {
                let report = simulate(&TrainJob {
                    workload: &w,
                    cluster: ClusterSpec::homogeneous(m4, n, n_ps),
                    config: SimConfig::fast(3),
                });
                let cost = cynthia::cloud::billing::static_cluster_cost(
                    m4.price_per_hour,
                    n,
                    m4.price_per_hour,
                    n_ps,
                    report.total_time,
                );
                println!(
                    "{:>7}  {:>4}  {:>10.0}  {:>8.0}%  {:>9.1}  {:>9.3}",
                    n,
                    n_ps,
                    report.total_time,
                    report.mean_ps_util() * 100.0,
                    report.total_ps_nic_mbps(),
                    cost
                );
            }
        }
        println!();
    }

    println!(
        "mnist saturates a single PS (CPU-ingest bound), so a second PS\n\
         buys real time — but a fourth mostly buys idle servers. VGG-19's\n\
         ASP traffic saturates the PS NIC around 9 workers, with the same\n\
         pattern. Cynthia therefore provisions the *minimum* PS count that\n\
         keeps workers un-throttled (Eqs. 17-18/22), escalating only when\n\
         a goal is otherwise infeasible."
    );
}
