//! Spot-fleet savings sweep: realized cost and deadline-miss rate per
//! repair policy, across spot revocation rates.
//!
//! For the paper's cifar-10/BSP workload with a fixed `(deadline, loss)`
//! goal, this sweeps the spot market's reclaim rate and compares the
//! elastic policies against the all-on-demand baseline over several
//! master seeds:
//!
//! ```text
//! cargo run --release --example spot_savings
//! ```
//!
//! At rate 0 the spot fleet is strictly cheaper (spot discount, no
//! disruptions); as the rate climbs, repair latencies and on-demand
//! fallbacks eat the discount and the deadline-miss rate creeps up —
//! the cost/risk frontier the replanner navigates.

use cynthia::prelude::*;
use cynthia_cloud::RevocationModel;

fn main() {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    };
    let seeds: Vec<u64> = vec![3, 5, 9, 17, 23];
    let rates = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let policies = [
        RepairPolicy::OnDemandOnly,
        RepairPolicy::spot_with_fallback(),
        RepairPolicy::mixed(0.5),
    ];

    println!(
        "cifar-10/BSP, goal: loss ≤ {} within {:.0} s, {} seeds\n",
        goal.target_loss,
        goal.deadline_secs,
        seeds.len()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>9} {:>8} {:>8}",
        "policy", "rate/h", "cost $", "od-base $", "saving", "miss", "revs"
    );
    for &rate in &rates {
        for policy in &policies {
            let mut cfg = ElasticConfig::new(goal, *policy, 0);
            cfg.market.revocations = RevocationModel::Exponential {
                rate_per_hour: rate,
            };
            let summary = summarize(&workload, &catalog, &cfg, &seeds)
                .expect("goal is feasible for this catalog");
            let saving = 1.0 - summary.mean_realized_cost / summary.mean_on_demand_cost;
            println!(
                "{:<22} {:>10.1} {:>12.4} {:>12.4} {:>8.1}% {:>7.0}% {:>8.1}",
                summary.policy,
                rate,
                summary.mean_realized_cost,
                summary.mean_on_demand_cost,
                saving * 100.0,
                summary.deadline_miss_rate * 100.0,
                summary.mean_revocations,
            );
        }
        println!();
    }
}
