//! Observability drill: trace and meter the whole pipeline.
//!
//! Turns on the process tracer, exercises all three instrumented layers —
//! the Algorithm 1 provisioner (wall-clock spans), the training engine
//! under injected faults (virtual-clock spans), and the SLO guard
//! replanning onto a rescue fleet — then exports everything the
//! observability layer captured:
//!
//! ```text
//! cargo run --release --example observe
//! ```
//!
//! Writes `OBS_trace.json` (Chrome trace format — load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>), `OBS_trace.jsonl`
//! (one span per line), `OBS_metrics.prom` (Prometheus text exposition),
//! and `OBS_metrics.json`. Finishes by re-parsing its own exports and
//! checking span well-nesting and per-layer metric coverage, so CI can
//! run it as a smoke test. With `--no-default-features` the hooks are
//! compiled out and the exports are empty but still valid.

use cynthia::prelude::*;
use cynthia_obs::span::{to_chrome_trace, to_jsonl, validate_well_nested};
use cynthia_obs::{export, metrics, tracer};

const DEADLINE_SECS: f64 = 3600.0;
const N_WORKERS: u32 = 4;
const N_PS: u32 = 2;

fn main() {
    tracer().set_enabled(true);
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp().with_iterations(800);

    // ------------------------------------------------------------------
    // Layer 1+2: provision (Alg. 1 band search) and run the chosen fleet.
    let goal = Goal {
        deadline_secs: DEADLINE_SECS,
        target_loss: 2.2,
    };
    let scheduler = Cynthia::new(default_catalog());
    let report = scheduler
        .run_end_to_end(&workload, &goal)
        .expect("goal is feasible");
    println!(
        "provisioned {} x{} + {} PS -> {:.0} s, ${:.2}",
        report.plan.type_name,
        report.plan.n_workers,
        report.plan.n_ps,
        report.training.total_time,
        report.actual_cost
    );

    // ------------------------------------------------------------------
    // Layer 2+faults: the same workload on a fixed fleet under a seeded
    // chaos plan, so recovery (rollbacks, restores, failovers) shows up.
    let ty = catalog.expect("m4.xlarge").clone();
    let chaos = FaultInjector::new(InjectorConfig::chaos(8.0, DEADLINE_SECS)).draw_plan(
        13,
        N_WORKERS as usize,
        N_PS as usize,
    );
    let faulted = simulate_faulted(
        &TrainJob {
            workload: &workload,
            cluster: ClusterSpec::homogeneous(&ty, N_WORKERS, N_PS),
            config: SimConfig::deterministic(13),
        },
        &chaos,
        &RecoveryPolicy::default(),
    );
    println!(
        "faulted run: {:.0} s, {} lost updates, {:.0} s downtime",
        faulted.total_time, faulted.lost_updates, faulted.downtime_secs
    );

    // ------------------------------------------------------------------
    // Layer 3: the SLO guard rescuing a doomed run (see chaos_drill).
    let guard_goal = Goal {
        deadline_secs: DEADLINE_SECS,
        target_loss: 2.2,
    };
    let dooming = FaultPlan::new(vec![
        FaultEvent::permanent(
            FaultKind::Straggler {
                worker: 0,
                factor: 0.05,
            },
            60.0,
        ),
        FaultEvent::transient(FaultKind::PsCrash { ps: 0 }, 120.0, 45.0),
    ]);
    let guarded = run_guarded(
        &workload,
        &catalog,
        &dooming,
        &RecoveryPolicy::default(),
        &SloGuardConfig::new(guard_goal, 17),
    )
    .expect("goal is feasible on a healthy fleet");
    println!(
        "SLO guard: unguarded {:.0} s ({}), guarded {:.0} s ({}), {} replans",
        guarded.unguarded_time,
        if guarded.unguarded_met_deadline {
            "met"
        } else {
            "MISSED"
        },
        guarded.guarded_time,
        if guarded.met_deadline {
            "met"
        } else {
            "MISSED"
        },
        guarded.replans.len()
    );

    // ------------------------------------------------------------------
    // Export everything the tracer and registry captured.
    tracer().set_enabled(false);
    let spans = tracer().drain();
    validate_well_nested(&spans).expect("span trees are well-nested");

    export::write_text("OBS_trace.jsonl", &to_jsonl(&spans)).expect("write OBS_trace.jsonl");
    export::write_json_pretty("OBS_trace.json", &to_chrome_trace(&spans))
        .expect("write OBS_trace.json");
    let prom = metrics().render_prometheus();
    export::write_text("OBS_metrics.prom", &prom).expect("write OBS_metrics.prom");
    export::write_json_pretty("OBS_metrics.json", &metrics().to_json())
        .expect("write OBS_metrics.json");

    // ------------------------------------------------------------------
    // Self-validation: the exports must round-trip and cover every layer.
    let raw = std::fs::read_to_string("OBS_trace.json").expect("read OBS_trace.json back");
    let chrome: serde_json::Value = serde_json::from_str(&raw).expect("Chrome trace parses");
    let events = chrome["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(
        events.iter().filter(|e| e["ph"] == "X").count(),
        spans.len(),
        "one X event per span"
    );

    if cfg!(feature = "obs") {
        for layer in ["provision", "train#", "recovery#", "slo#"] {
            assert!(
                spans.iter().any(|s| s.track.starts_with(layer)),
                "no spans on any {layer}* track"
            );
        }
        for metric in [
            "cynthia_provision_plans_total",    // provisioner
            "cynthia_provision_band_width",     // Theorem 4.1 bands
            "cynthia_sim_events_total",         // event queue
            "cynthia_train_runs_total",         // engine
            "cynthia_train_comp_seconds_total", // paper t_comp
            "cynthia_faults_injected_total",    // injector
            "cynthia_slo_replans_total",        // guard
        ] {
            assert!(
                prom.contains(metric),
                "metric {metric} missing from exposition"
            );
        }
        println!(
            "\n{} spans on {} tracks, {} metrics -> OBS_trace.json / OBS_trace.jsonl / \
             OBS_metrics.prom / OBS_metrics.json",
            spans.len(),
            {
                let mut tracks: Vec<&str> = spans.iter().map(|s| s.track.as_str()).collect();
                tracks.sort_unstable();
                tracks.dedup();
                tracks.len()
            },
            metrics().len()
        );
    } else {
        assert!(spans.is_empty() && metrics().is_empty());
        println!("\nobs feature compiled out: exports written, trace and metrics empty");
    }
}
