//! Seeded random fault plans.
//!
//! The [`FaultInjector`] turns per-class fault rates into concrete
//! [`FaultPlan`]s via independent Poisson processes — one deterministic
//! RNG stream per `(class, entity)` pair, derived from a single master
//! seed with [`cynthia_sim::rng::component_rng`]. The same
//! `(config, seed, cluster shape)` always yields the identical plan, and
//! changing one entity's count never perturbs another's stream, so chaos
//! runs replay bit-for-bit.
//!
//! Drawn plans are valid by construction: permanent worker departures are
//! capped below the fleet size, permanent PS crashes below the PS count,
//! and stalls/blackouts always carry finite durations — the
//! [`FaultPlan::validate`] invariants the simulator requires.

use crate::plan::{FaultEvent, FaultKind, FaultPlan, LinkTarget};
use cynthia_sim::rng::component_rng;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-class fault rates and shapes for [`FaultInjector`]. All rates are
/// events per hour *per entity* (worker, NIC, or PS node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectorConfig {
    /// Horizon over which faults are drawn, seconds. Faults beyond the
    /// realized run length simply never fire.
    pub horizon_secs: f64,
    /// Worker crash rate, per worker-hour.
    pub worker_crash_rate: f64,
    /// Fraction of worker crashes where the environment supplies a
    /// replacement (spot semantics); the rest fall to the recovery
    /// policy's retry budget.
    pub replaced_crash_fraction: f64,
    /// Mean outage before an environment-supplied replacement, seconds.
    pub mean_outage_secs: f64,
    /// Permanent worker departures over the whole horizon, per
    /// worker-hour. Capped so at least one worker always survives.
    pub departure_rate: f64,
    /// Straggler episode rate, per worker-hour.
    pub straggler_rate: f64,
    /// Straggler gFLOPS factor is drawn uniformly from this range.
    pub straggler_factor: (f64, f64),
    /// Mean straggler episode length, seconds.
    pub mean_straggle_secs: f64,
    /// Link degradation rate, per NIC-hour (worker and PS NICs alike).
    pub link_degrade_rate: f64,
    /// Link capacity factor drawn uniformly from this range (must stay
    /// within `(0, 1]` so permanent blackouts cannot arise).
    pub link_factor: (f64, f64),
    /// Mean link degradation length, seconds.
    pub mean_degrade_secs: f64,
    /// PS crash rate, per PS-hour.
    pub ps_crash_rate: f64,
    /// Fraction of PS crashes that are permanent (failover) rather than a
    /// reboot. Capped so at least one PS always survives.
    pub ps_permanent_fraction: f64,
    /// Mean PS reboot outage, seconds.
    pub mean_ps_outage_secs: f64,
    /// PS stall rate, per PS-hour.
    pub ps_stall_rate: f64,
    /// Mean PS stall length, seconds.
    pub mean_stall_secs: f64,
}

impl InjectorConfig {
    /// A balanced mix of every fault class, scaled by `rate` (events per
    /// entity-hour) over `horizon_secs`.
    pub fn chaos(rate: f64, horizon_secs: f64) -> Self {
        InjectorConfig {
            horizon_secs,
            worker_crash_rate: rate,
            replaced_crash_fraction: 0.5,
            mean_outage_secs: 45.0,
            departure_rate: rate * 0.1,
            straggler_rate: rate,
            straggler_factor: (0.2, 0.8),
            mean_straggle_secs: 120.0,
            link_degrade_rate: rate,
            link_factor: (0.1, 0.9),
            mean_degrade_secs: 90.0,
            ps_crash_rate: rate * 0.5,
            ps_permanent_fraction: 0.3,
            mean_ps_outage_secs: 60.0,
            ps_stall_rate: rate * 0.5,
            mean_stall_secs: 30.0,
        }
    }

    /// No faults at all (the control arm of a chaos drill).
    pub fn quiet(horizon_secs: f64) -> Self {
        InjectorConfig {
            horizon_secs,
            worker_crash_rate: 0.0,
            replaced_crash_fraction: 0.0,
            mean_outage_secs: 45.0,
            departure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: (0.5, 0.5),
            mean_straggle_secs: 60.0,
            link_degrade_rate: 0.0,
            link_factor: (0.5, 0.5),
            mean_degrade_secs: 60.0,
            ps_crash_rate: 0.0,
            ps_permanent_fraction: 0.0,
            mean_ps_outage_secs: 60.0,
            ps_stall_rate: 0.0,
            mean_stall_secs: 30.0,
        }
    }
}

/// Draws deterministic random [`FaultPlan`]s from an [`InjectorConfig`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: InjectorConfig,
}

/// Exponential inter-arrival sample for a `rate`-per-hour Poisson process,
/// in seconds.
fn exp_interval(rng: &mut SmallRng, rate_per_hour: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() * 3600.0 / rate_per_hour
}

/// Exponential duration with the given mean, floored at one second so
/// zero-length faults cannot arise.
fn exp_duration(rng: &mut SmallRng, mean_secs: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-u.ln() * mean_secs).max(1.0)
}

/// Arrival times of a Poisson process over `[0, horizon)`.
fn arrivals(rng: &mut SmallRng, rate_per_hour: f64, horizon: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if rate_per_hour <= 0.0 {
        return out;
    }
    let mut t = exp_interval(rng, rate_per_hour);
    while t < horizon {
        out.push(t);
        t += exp_interval(rng, rate_per_hour);
    }
    out
}

impl FaultInjector {
    /// An injector for the given rates.
    pub fn new(cfg: InjectorConfig) -> Self {
        assert!(
            cfg.horizon_secs > 0.0 && cfg.horizon_secs.is_finite(),
            "injector horizon must be positive and finite"
        );
        FaultInjector { cfg }
    }

    /// The configured rates.
    pub fn config(&self) -> &InjectorConfig {
        &self.cfg
    }

    /// Draws the plan for `(seed, cluster shape)`. Deterministic: the same
    /// arguments always return the identical plan, and the result passes
    /// [`FaultPlan::validate`] by construction.
    pub fn draw_plan(&self, seed: u64, n_workers: usize, n_ps: usize) -> FaultPlan {
        assert!(n_workers > 0 && n_ps > 0, "degenerate cluster");
        let c = &self.cfg;
        let h = c.horizon_secs;
        let mut events: Vec<FaultEvent> = Vec::new();

        // Worker crashes and departures. Departures are budgeted to leave
        // at least one worker: surplus departures become crashes.
        let mut departures_left = n_workers - 1;
        for j in 0..n_workers {
            let mut rng = component_rng(seed, "fault-worker-crash", j as u64);
            for at in arrivals(&mut rng, c.worker_crash_rate, h) {
                let replaced = rng.gen_range(0.0..1.0) < c.replaced_crash_fraction;
                let kind = FaultKind::WorkerCrash { worker: j };
                if replaced {
                    events.push(FaultEvent::transient(
                        kind,
                        at,
                        exp_duration(&mut rng, c.mean_outage_secs),
                    ));
                } else {
                    events.push(FaultEvent::permanent(kind, at));
                }
            }
            let mut rng = component_rng(seed, "fault-worker-departure", j as u64);
            for at in arrivals(&mut rng, c.departure_rate, h) {
                if departures_left > 0 {
                    departures_left -= 1;
                    events.push(FaultEvent::permanent(
                        FaultKind::WorkerDeparture { worker: j },
                        at,
                    ));
                } else {
                    // Downgrade to a recoverable crash to keep the fleet alive.
                    events.push(FaultEvent::permanent(
                        FaultKind::WorkerCrash { worker: j },
                        at,
                    ));
                }
            }
            let mut rng = component_rng(seed, "fault-straggler", j as u64);
            for at in arrivals(&mut rng, c.straggler_rate, h) {
                let (lo, hi) = c.straggler_factor;
                let factor = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                events.push(FaultEvent::transient(
                    FaultKind::Straggler { worker: j, factor },
                    at,
                    exp_duration(&mut rng, c.mean_straggle_secs),
                ));
            }
            let mut rng = component_rng(seed, "fault-worker-link", j as u64);
            for at in arrivals(&mut rng, c.link_degrade_rate, h) {
                let (lo, hi) = c.link_factor;
                let factor = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                events.push(FaultEvent::transient(
                    FaultKind::LinkDegraded {
                        link: LinkTarget::Worker(j),
                        factor: factor.clamp(1e-3, 1.0),
                    },
                    at,
                    exp_duration(&mut rng, c.mean_degrade_secs),
                ));
            }
        }

        // PS crashes, stalls, and link degradations. Permanent crashes are
        // budgeted to leave at least one PS: surplus become reboots.
        let mut ps_deaths_left = n_ps - 1;
        for k in 0..n_ps {
            let mut rng = component_rng(seed, "fault-ps-crash", k as u64);
            for at in arrivals(&mut rng, c.ps_crash_rate, h) {
                let permanent = rng.gen_range(0.0..1.0) < c.ps_permanent_fraction;
                let kind = FaultKind::PsCrash { ps: k };
                if permanent && ps_deaths_left > 0 {
                    ps_deaths_left -= 1;
                    events.push(FaultEvent::permanent(kind, at));
                } else {
                    events.push(FaultEvent::transient(
                        kind,
                        at,
                        exp_duration(&mut rng, c.mean_ps_outage_secs),
                    ));
                }
            }
            let mut rng = component_rng(seed, "fault-ps-stall", k as u64);
            for at in arrivals(&mut rng, c.ps_stall_rate, h) {
                events.push(FaultEvent::transient(
                    FaultKind::PsStall { ps: k },
                    at,
                    exp_duration(&mut rng, c.mean_stall_secs),
                ));
            }
            let mut rng = component_rng(seed, "fault-ps-link", k as u64);
            for at in arrivals(&mut rng, c.link_degrade_rate, h) {
                let (lo, hi) = c.link_factor;
                let factor = if hi > lo { rng.gen_range(lo..hi) } else { lo };
                events.push(FaultEvent::transient(
                    FaultKind::LinkDegraded {
                        link: LinkTarget::Ps(k),
                        factor: factor.clamp(1e-3, 1.0),
                    },
                    at,
                    exp_duration(&mut rng, c.mean_degrade_secs),
                ));
            }
        }

        // Stable sort by start time: simultaneous events keep the
        // deterministic generation order above.
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("fault times are finite"));
        crate::obs::plan_drawn(&events);
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let inj = FaultInjector::new(InjectorConfig::chaos(6.0, 1800.0));
        let a = inj.draw_plan(42, 4, 2);
        let b = inj.draw_plan(42, 4, 2);
        assert_eq!(a, b);
        let c = inj.draw_plan(43, 4, 2);
        assert_ne!(a, c, "different seeds should draw different plans");
    }

    #[test]
    fn drawn_plans_always_validate() {
        for rate in [0.0, 1.0, 10.0, 60.0] {
            let inj = FaultInjector::new(InjectorConfig::chaos(rate, 1200.0));
            for seed in 0..20u64 {
                for (n, p) in [(1usize, 1usize), (2, 1), (4, 2), (8, 3)] {
                    let plan = inj.draw_plan(seed, n, p);
                    plan.validate(n, p).unwrap_or_else(|e| {
                        panic!("seed {seed} rate {rate} {n}x{p}: invalid plan: {e}")
                    });
                }
            }
        }
    }

    #[test]
    fn quiet_config_draws_nothing() {
        let inj = FaultInjector::new(InjectorConfig::quiet(3600.0));
        assert!(inj.draw_plan(7, 4, 2).is_empty());
    }

    #[test]
    fn higher_rates_draw_more_events() {
        let lo = FaultInjector::new(InjectorConfig::chaos(1.0, 3600.0));
        let hi = FaultInjector::new(InjectorConfig::chaos(20.0, 3600.0));
        let n_lo: u32 = (0..10)
            .map(|s| lo.draw_plan(s, 4, 2).census().total())
            .sum();
        let n_hi: u32 = (0..10)
            .map(|s| hi.draw_plan(s, 4, 2).census().total())
            .sum();
        assert!(
            n_hi > n_lo * 5,
            "rates should scale event counts: {n_lo} vs {n_hi}"
        );
    }

    #[test]
    fn events_are_time_sorted_within_horizon() {
        let inj = FaultInjector::new(InjectorConfig::chaos(30.0, 600.0));
        let plan = inj.draw_plan(3, 4, 2);
        assert!(!plan.is_empty());
        for w in plan.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &plan.events {
            assert!(e.at < 600.0);
        }
    }
}
