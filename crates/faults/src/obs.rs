//! Instrumentation hooks for fault injection (feature `obs`).
//!
//! With the feature off these compile to empty inline bodies; with it on
//! they bump per-kind counters in the process-wide registry
//! (`cynthia_faults_injected_total{kind=...}`). Hooks only read the drawn
//! plan — the injector's RNG streams are untouched either way.

#[cfg(feature = "obs")]
mod real {
    use crate::plan::FaultEvent;
    use cynthia_obs::metrics;

    /// Records one counter bump per drawn fault event, labeled by kind.
    pub fn plan_drawn(events: &[FaultEvent]) {
        if !cynthia_obs::enabled() || events.is_empty() {
            return;
        }
        for e in events {
            metrics()
                .counter_with(
                    "cynthia_faults_injected_total",
                    &[("kind", e.kind.label())],
                    "Fault events drawn by the injector, by kind",
                )
                .inc();
        }
    }
}

#[cfg(feature = "obs")]
pub use real::*;

/// No-op hook bodies compiled when the `obs` feature is off.
#[cfg(not(feature = "obs"))]
mod stub {
    use crate::plan::FaultEvent;

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn plan_drawn(_events: &[FaultEvent]) {}
}

#[cfg(not(feature = "obs"))]
pub use stub::*;
