//! Recovery policies: how a faulted cluster puts itself back together.
//!
//! Recovery has three legs, mirroring what real PS-architecture training
//! stacks do (cf. "Elastic Model Aggregation with Parameter Service"):
//!
//! 1. **Checkpointing** — the PS fleet persists parameters every
//!    `checkpoint_interval_updates` global updates. A PS crash rolls global
//!    progress back to the last checkpoint boundary; the rolled-back
//!    updates are *lost* and must be *replayed*.
//! 2. **Worker restarts** — a crashed worker (no environment-supplied
//!    replacement) is relaunched after an exponential backoff
//!    `restart_backoff_secs · backoff_multiplier^attempt`, jittered by a
//!    deterministic [`cynthia_sim::rng::Jitter`] stream, while the
//!    `retry_budget` lasts; after that the slot is retired (fleet shrink).
//!    The last surviving worker is never retired — it restarts past the
//!    budget so the job always terminates.
//! 3. **PS failover** — on a permanent PS crash, the dead node's parameter
//!    chunks (and hence its share of parameter bandwidth) are re-sharded
//!    round-robin across the surviving PS nodes; workers restore from the
//!    new owners after `ps_failover_secs`. When failover is disabled or no
//!    survivor exists, the node instead reboots from its durable
//!    checkpoint after the same latency.

use serde::{Deserialize, Serialize};

/// Knobs of the recovery machinery. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Checkpoint cadence in global updates; a PS crash rolls back to the
    /// last multiple of this. `0` = checkpoint only at start (a crash
    /// rolls back to update 0). `1` = continuous checkpointing (only
    /// in-flight work is lost).
    pub checkpoint_interval_updates: u64,
    /// Restart attempts granted per worker slot before it is retired.
    pub retry_budget: u32,
    /// Backoff before the first restart attempt, seconds.
    pub restart_backoff_secs: f64,
    /// Backoff growth per successive attempt on the same slot (≥ 1).
    pub backoff_multiplier: f64,
    /// Coefficient of variation of the multiplicative jitter applied to
    /// each backoff (`0` = deterministic backoff).
    pub backoff_jitter_cv: f64,
    /// Whether a permanently-crashed PS node's chunks fail over to the
    /// surviving servers (re-sharding parameter bandwidth).
    pub ps_failover: bool,
    /// Latency of a PS failover or checkpoint reboot, seconds (leader
    /// election + shard handoff, or node reboot + checkpoint load).
    pub ps_failover_secs: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_interval_updates: 100,
            retry_budget: 3,
            restart_backoff_secs: 30.0,
            backoff_multiplier: 2.0,
            backoff_jitter_cv: 0.0,
            ps_failover: true,
            ps_failover_secs: 30.0,
        }
    }
}

impl RecoveryPolicy {
    /// The no-recovery policy `simulate_disrupted` runs under: zero retry
    /// budget (an unreplaced crash shrinks the fleet immediately) and no
    /// PS failover. Checkpoint interval 1 keeps PS crashes — which that
    /// API cannot express anyway — from losing committed progress.
    pub fn none() -> Self {
        RecoveryPolicy {
            checkpoint_interval_updates: 1,
            retry_budget: 0,
            restart_backoff_secs: 0.0,
            backoff_multiplier: 1.0,
            backoff_jitter_cv: 0.0,
            ps_failover: false,
            ps_failover_secs: 0.0,
        }
    }

    /// An aggressive policy for chaos drills: tight checkpoints, generous
    /// retries, fast failover.
    pub fn aggressive() -> Self {
        RecoveryPolicy {
            checkpoint_interval_updates: 20,
            retry_budget: 8,
            restart_backoff_secs: 10.0,
            backoff_multiplier: 1.5,
            backoff_jitter_cv: 0.0,
            ps_failover: true,
            ps_failover_secs: 15.0,
        }
    }

    /// Backoff before restart attempt `attempt` (0-based) on a worker
    /// slot, before jitter.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.restart_backoff_secs * self.backoff_multiplier.powi(attempt as i32)
    }

    /// The checkpoint boundary at or below `progress` — where a PS crash
    /// at that progress rolls back to.
    pub fn checkpoint_floor(&self, progress: u64) -> u64 {
        if self.checkpoint_interval_updates == 0 {
            0
        } else {
            progress - progress % self.checkpoint_interval_updates
        }
    }

    /// Sanity-checks the numeric fields; call once before simulation.
    pub fn validate(&self) -> Result<(), String> {
        if !self.restart_backoff_secs.is_finite() || self.restart_backoff_secs < 0.0 {
            return Err("restart_backoff_secs must be finite and non-negative".into());
        }
        if !self.backoff_multiplier.is_finite() || self.backoff_multiplier < 1.0 {
            return Err("backoff_multiplier must be finite and at least 1".into());
        }
        if !self.backoff_jitter_cv.is_finite() || self.backoff_jitter_cv < 0.0 {
            return Err("backoff_jitter_cv must be finite and non-negative".into());
        }
        if !self.ps_failover_secs.is_finite() || self.ps_failover_secs < 0.0 {
            return Err("ps_failover_secs must be finite and non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy {
            restart_backoff_secs: 10.0,
            backoff_multiplier: 2.0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.backoff_secs(0), 10.0);
        assert_eq!(p.backoff_secs(1), 20.0);
        assert_eq!(p.backoff_secs(3), 80.0);
    }

    #[test]
    fn checkpoint_floor_rounds_down() {
        let p = RecoveryPolicy {
            checkpoint_interval_updates: 50,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.checkpoint_floor(0), 0);
        assert_eq!(p.checkpoint_floor(49), 0);
        assert_eq!(p.checkpoint_floor(50), 50);
        assert_eq!(p.checkpoint_floor(149), 100);
        let never = RecoveryPolicy {
            checkpoint_interval_updates: 0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(never.checkpoint_floor(149), 0);
        let continuous = RecoveryPolicy {
            checkpoint_interval_updates: 1,
            ..RecoveryPolicy::default()
        };
        assert_eq!(continuous.checkpoint_floor(149), 149);
    }

    #[test]
    fn presets_validate() {
        assert!(RecoveryPolicy::default().validate().is_ok());
        assert!(RecoveryPolicy::none().validate().is_ok());
        assert!(RecoveryPolicy::aggressive().validate().is_ok());
    }

    #[test]
    fn bad_fields_fail_validation() {
        let p = RecoveryPolicy {
            backoff_multiplier: 0.5,
            ..RecoveryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RecoveryPolicy {
            restart_backoff_secs: f64::NAN,
            ..RecoveryPolicy::default()
        };
        assert!(p.validate().is_err());
    }
}
