//! # cynthia-faults — deterministic fault injection and recovery
//!
//! Cynthia's guarantees (Eqs. 8–14) assume the provisioned cluster stays
//! healthy; the paper's own motivation — transient cloud resources and
//! bottleneck-prone parameter servers — says it won't. This crate supplies
//! the vocabulary the ground-truth simulator uses to break clusters on
//! purpose, and the policies it uses to put them back together:
//!
//! * [`plan`] — the fault taxonomy: [`FaultKind`] (worker crash, permanent
//!   worker departure, PS crash, straggler slowdown, link degradation,
//!   transient PS stall), timed [`FaultEvent`]s, and validated
//!   [`FaultPlan`]s.
//! * [`injector`] — a seeded, deterministic [`FaultInjector`] that draws
//!   random-but-replayable fault plans from per-class rates; the chaos
//!   property suite drives it.
//! * [`recovery`] — the [`RecoveryPolicy`]: checkpoint interval (in global
//!   updates), restart retry budget with exponential backoff jittered by
//!   [`cynthia_sim::rng::Jitter`], and PS failover that re-shards parameter
//!   bandwidth across the surviving servers.
//!
//! The simulator entry point is `cynthia_train::simulate_faulted(job, plan,
//! policy)`; `simulate_disrupted` is a thin wrapper over it (worker crashes
//! with environment-supplied outage durations, no recovery policy). See
//! `docs/FAULTS.md` for the full semantics.

#![warn(missing_docs)]

pub mod injector;
pub mod obs;
pub mod plan;
pub mod recovery;

pub use injector::{FaultInjector, InjectorConfig};
pub use plan::{FaultEvent, FaultKind, FaultPlan, LinkTarget, PlanError};
pub use recovery::RecoveryPolicy;
