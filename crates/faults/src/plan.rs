//! Fault taxonomy: what can go wrong, when, and for how long.
//!
//! A [`FaultPlan`] is a validated schedule of [`FaultEvent`]s against a
//! cluster of known shape. Plans are plain data — deterministic by
//! construction — so a simulation driven by the same plan (and seed)
//! replays bit-for-bit. Random plans come from
//! [`FaultInjector`](crate::injector::FaultInjector), which is itself a
//! deterministic function of a master seed.

use serde::{Deserialize, Serialize};

/// Which NIC a [`FaultKind::LinkDegraded`] event throttles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkTarget {
    /// Worker `j`'s NIC.
    Worker(usize),
    /// PS node `k`'s NIC.
    Ps(usize),
}

/// One class of partial failure. Timing (start, optional duration) lives on
/// the enclosing [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Worker `worker`'s instance crashes. With an event duration, the
    /// environment supplies a replacement that joins after that outage
    /// (spot-reclaim semantics); without one, the
    /// [`RecoveryPolicy`](crate::recovery::RecoveryPolicy) decides —
    /// restart after backoff while the retry budget lasts, then shrink.
    WorkerCrash {
        /// Worker slot hit by the crash.
        worker: usize,
    },
    /// Worker `worker` leaves permanently (environment-mandated shrink,
    /// the old `Disruption { rejoin_at: None }`). No recovery applies.
    WorkerDeparture {
        /// Worker slot removed from the fleet.
        worker: usize,
    },
    /// PS node `ps` crashes, losing all parameter state since the last
    /// checkpoint. With a duration the node reboots after the outage;
    /// without one the crash is permanent and the recovery policy's PS
    /// failover re-shards the node's chunks across the survivors. Either
    /// way global progress rolls back to the last checkpoint.
    PsCrash {
        /// PS node hit by the crash.
        ps: usize,
    },
    /// Worker `worker` computes at `factor` of its nominal gFLOPS (e.g. a
    /// noisy neighbour or thermal throttling). Applies to compute segments
    /// *started* while the fault is active.
    Straggler {
        /// Worker slot slowed down.
        worker: usize,
        /// Multiplicative gFLOPS factor in `(0, 1]`... or above 1 for a
        /// burst of extra capacity, which the taxonomy permits.
        factor: f64,
    },
    /// The targeted NIC's capacity is scaled by `factor` (congestion,
    /// flaky cabling, a throttled virtual NIC). In-flight flows re-share
    /// immediately via the max-min fair allocator.
    LinkDegraded {
        /// Which NIC is throttled.
        link: LinkTarget,
        /// Multiplicative capacity factor in `[0, 1]`; `0` requires a
        /// finite duration.
        factor: f64,
    },
    /// PS node `ps` stops applying updates (CPU wedged at 0) but keeps its
    /// NIC and parameter state — a transient stall, not a crash. No
    /// progress is lost; requires a finite duration.
    PsStall {
        /// PS node stalled.
        ps: usize,
    },
}

impl FaultKind {
    /// Short label for tables and traces.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash { .. } => "worker-crash",
            FaultKind::WorkerDeparture { .. } => "worker-departure",
            FaultKind::PsCrash { .. } => "ps-crash",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::LinkDegraded { .. } => "link-degraded",
            FaultKind::PsStall { .. } => "ps-stall",
        }
    }
}

/// A fault of some [`FaultKind`] starting at virtual time `at`, lasting
/// `duration` seconds when finite. `duration: None` means the fault is
/// permanent (crashes) or lasts for the rest of the run (degradations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What breaks.
    pub kind: FaultKind,
    /// Start time, seconds since job start (must be ≥ 0).
    pub at: f64,
    /// How long it lasts; `None` = permanent / rest-of-run.
    pub duration: Option<f64>,
}

impl FaultEvent {
    /// A permanent (or rest-of-run) fault at `at`.
    pub fn permanent(kind: FaultKind, at: f64) -> Self {
        FaultEvent {
            kind,
            at,
            duration: None,
        }
    }

    /// A transient fault over `[at, at + duration)`.
    pub fn transient(kind: FaultKind, at: f64, duration: f64) -> Self {
        FaultEvent {
            kind,
            at,
            duration: Some(duration),
        }
    }
}

/// Why a [`FaultPlan`] failed validation against a cluster shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// An event names a worker slot outside `0..n_workers`.
    UnknownWorker {
        /// Offending worker index.
        worker: usize,
        /// Cluster worker count.
        n_workers: usize,
    },
    /// An event names a PS node outside `0..n_ps`.
    UnknownPs {
        /// Offending PS index.
        ps: usize,
        /// Cluster PS count.
        n_ps: usize,
    },
    /// An event starts at a negative time, or has NaN timing.
    BadTiming {
        /// Index of the offending event in the plan.
        event: usize,
    },
    /// A duration is negative or NaN.
    BadDuration {
        /// Index of the offending event in the plan.
        event: usize,
    },
    /// A factor is out of range (straggler ≤ 0, link outside `[0, 1]`).
    BadFactor {
        /// Index of the offending event in the plan.
        event: usize,
    },
    /// A fault that would never let the run finish: a permanent PS stall,
    /// a total link blackout with no end, or permanent departures covering
    /// every worker / every PS without failover capacity.
    Unrecoverable {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownWorker { worker, n_workers } => {
                write!(
                    f,
                    "fault names worker {worker} of a {n_workers}-worker fleet"
                )
            }
            PlanError::UnknownPs { ps, n_ps } => {
                write!(f, "fault names PS {ps} of a {n_ps}-PS fleet")
            }
            PlanError::BadTiming { event } => write!(f, "event {event} has invalid start time"),
            PlanError::BadDuration { event } => write!(f, "event {event} has invalid duration"),
            PlanError::BadFactor { event } => write!(f, "event {event} has out-of-range factor"),
            PlanError::Unrecoverable { reason } => write!(f, "unrecoverable plan: {reason}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A schedule of faults to inject into one training run. Events may be in
/// any order; simultaneous events apply in plan order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: `simulate_faulted` with it reproduces `simulate`
    /// bit-for-bit.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan from a list of events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the plan against a cluster of `n_workers` × `n_ps`.
    ///
    /// Beyond per-event range checks, this rejects plans that can never
    /// terminate: permanent [`FaultKind::PsStall`]s, permanent total link
    /// blackouts (`factor == 0`), permanent departures of *every* worker,
    /// and permanent crashes of *every* PS node.
    pub fn validate(&self, n_workers: usize, n_ps: usize) -> Result<(), PlanError> {
        let mut departed = vec![false; n_workers];
        let mut ps_dead = vec![false; n_ps];
        for (i, e) in self.events.iter().enumerate() {
            if !e.at.is_finite() || e.at < 0.0 {
                return Err(PlanError::BadTiming { event: i });
            }
            if let Some(d) = e.duration {
                // Zero is legal: an instantly-replaced crash still pays the
                // checkpoint restore.
                if !d.is_finite() || d < 0.0 {
                    return Err(PlanError::BadDuration { event: i });
                }
            }
            let check_worker = |w: usize| {
                if w >= n_workers {
                    Err(PlanError::UnknownWorker {
                        worker: w,
                        n_workers,
                    })
                } else {
                    Ok(())
                }
            };
            let check_ps = |p: usize| {
                if p >= n_ps {
                    Err(PlanError::UnknownPs { ps: p, n_ps })
                } else {
                    Ok(())
                }
            };
            match e.kind {
                FaultKind::WorkerCrash { worker } => check_worker(worker)?,
                FaultKind::WorkerDeparture { worker } => {
                    check_worker(worker)?;
                    departed[worker] = true;
                }
                FaultKind::PsCrash { ps } => {
                    check_ps(ps)?;
                    if e.duration.is_none() {
                        ps_dead[ps] = true;
                    }
                }
                FaultKind::Straggler { worker, factor } => {
                    check_worker(worker)?;
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(PlanError::BadFactor { event: i });
                    }
                }
                FaultKind::LinkDegraded { link, factor } => {
                    match link {
                        LinkTarget::Worker(w) => check_worker(w)?,
                        LinkTarget::Ps(p) => check_ps(p)?,
                    }
                    if !(0.0..=1.0).contains(&factor) || factor.is_nan() {
                        return Err(PlanError::BadFactor { event: i });
                    }
                    if factor == 0.0 && e.duration.is_none() {
                        return Err(PlanError::Unrecoverable {
                            reason: "permanent total link blackout",
                        });
                    }
                }
                FaultKind::PsStall { ps } => {
                    check_ps(ps)?;
                    if e.duration.is_none() {
                        return Err(PlanError::Unrecoverable {
                            reason: "permanent PS stall",
                        });
                    }
                }
            }
        }
        if departed.iter().all(|d| *d) && n_workers > 0 {
            return Err(PlanError::Unrecoverable {
                reason: "every worker departs permanently",
            });
        }
        if ps_dead.iter().all(|d| *d) && n_ps > 0 {
            return Err(PlanError::Unrecoverable {
                reason: "every PS crashes permanently",
            });
        }
        Ok(())
    }

    /// Counts of events per fault class, for summaries.
    pub fn census(&self) -> FaultCensus {
        let mut c = FaultCensus::default();
        for e in &self.events {
            match e.kind {
                FaultKind::WorkerCrash { .. } => c.worker_crashes += 1,
                FaultKind::WorkerDeparture { .. } => c.worker_departures += 1,
                FaultKind::PsCrash { .. } => c.ps_crashes += 1,
                FaultKind::Straggler { .. } => c.stragglers += 1,
                FaultKind::LinkDegraded { .. } => c.link_degradations += 1,
                FaultKind::PsStall { .. } => c.ps_stalls += 1,
            }
        }
        c
    }
}

/// Per-class event counts of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct FaultCensus {
    pub worker_crashes: u32,
    pub worker_departures: u32,
    pub ps_crashes: u32,
    pub stragglers: u32,
    pub link_degradations: u32,
    pub ps_stalls: u32,
}

impl FaultCensus {
    /// Total events across all classes.
    pub fn total(&self) -> u32 {
        self.worker_crashes
            + self.worker_departures
            + self.ps_crashes
            + self.stragglers
            + self.link_degradations
            + self.ps_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_valid() {
        assert_eq!(FaultPlan::empty().validate(4, 1), Ok(()));
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let p = FaultPlan::new(vec![FaultEvent::permanent(
            FaultKind::WorkerCrash { worker: 4 },
            1.0,
        )]);
        assert_eq!(
            p.validate(4, 1),
            Err(PlanError::UnknownWorker {
                worker: 4,
                n_workers: 4
            })
        );
        let p = FaultPlan::new(vec![FaultEvent::transient(
            FaultKind::PsStall { ps: 2 },
            1.0,
            5.0,
        )]);
        assert_eq!(
            p.validate(4, 2),
            Err(PlanError::UnknownPs { ps: 2, n_ps: 2 })
        );
    }

    #[test]
    fn bad_timing_and_duration_are_rejected() {
        let p = FaultPlan::new(vec![FaultEvent::permanent(
            FaultKind::WorkerCrash { worker: 0 },
            -1.0,
        )]);
        assert_eq!(p.validate(2, 1), Err(PlanError::BadTiming { event: 0 }));
        let p = FaultPlan::new(vec![FaultEvent::transient(
            FaultKind::WorkerCrash { worker: 0 },
            1.0,
            -1.0,
        )]);
        assert_eq!(p.validate(2, 1), Err(PlanError::BadDuration { event: 0 }));
    }

    #[test]
    fn unrecoverable_plans_are_rejected() {
        // Permanent PS stall.
        let p = FaultPlan::new(vec![FaultEvent::permanent(
            FaultKind::PsStall { ps: 0 },
            1.0,
        )]);
        assert!(matches!(
            p.validate(2, 1),
            Err(PlanError::Unrecoverable { .. })
        ));
        // Permanent zero-capacity link.
        let p = FaultPlan::new(vec![FaultEvent::permanent(
            FaultKind::LinkDegraded {
                link: LinkTarget::Ps(0),
                factor: 0.0,
            },
            1.0,
        )]);
        assert!(matches!(
            p.validate(2, 1),
            Err(PlanError::Unrecoverable { .. })
        ));
        // All workers depart.
        let p = FaultPlan::new(vec![
            FaultEvent::permanent(FaultKind::WorkerDeparture { worker: 0 }, 1.0),
            FaultEvent::permanent(FaultKind::WorkerDeparture { worker: 1 }, 2.0),
        ]);
        assert!(matches!(
            p.validate(2, 1),
            Err(PlanError::Unrecoverable { .. })
        ));
        // All PS nodes crash permanently.
        let p = FaultPlan::new(vec![FaultEvent::permanent(
            FaultKind::PsCrash { ps: 0 },
            1.0,
        )]);
        assert!(matches!(
            p.validate(2, 1),
            Err(PlanError::Unrecoverable { .. })
        ));
        // ... but a *transient* PS crash of the only PS is fine.
        let p = FaultPlan::new(vec![FaultEvent::transient(
            FaultKind::PsCrash { ps: 0 },
            1.0,
            30.0,
        )]);
        assert_eq!(p.validate(2, 1), Ok(()));
    }

    #[test]
    fn factors_are_range_checked() {
        let p = FaultPlan::new(vec![FaultEvent::transient(
            FaultKind::Straggler {
                worker: 0,
                factor: 0.0,
            },
            1.0,
            5.0,
        )]);
        assert_eq!(p.validate(2, 1), Err(PlanError::BadFactor { event: 0 }));
        let p = FaultPlan::new(vec![FaultEvent::transient(
            FaultKind::LinkDegraded {
                link: LinkTarget::Worker(0),
                factor: 1.5,
            },
            1.0,
            5.0,
        )]);
        assert_eq!(p.validate(2, 1), Err(PlanError::BadFactor { event: 0 }));
    }

    #[test]
    fn census_counts_by_class() {
        let p = FaultPlan::new(vec![
            FaultEvent::permanent(FaultKind::WorkerCrash { worker: 0 }, 1.0),
            FaultEvent::transient(FaultKind::PsStall { ps: 0 }, 2.0, 3.0),
            FaultEvent::transient(
                FaultKind::Straggler {
                    worker: 1,
                    factor: 0.5,
                },
                3.0,
                9.0,
            ),
        ]);
        let c = p.census();
        assert_eq!(c.worker_crashes, 1);
        assert_eq!(c.ps_stalls, 1);
        assert_eq!(c.stragglers, 1);
        assert_eq!(c.total(), 3);
    }
}
