//! The calibrated instance catalog.
//!
//! The evaluation uses four EC2 instance types. The compute capabilities
//! below are *effective* GFLOPS for the paper's CPU TensorFlow workloads
//! (an E5-2686 v4 core sustains ~0.9 effective GFLOP/s on those kernels —
//! derived from Table 4: `w_iter`/`t_base` for the mnist DNN), not peak
//! datasheet FLOPS. The m1.xlarge (E5-2651 v2) is the designated straggler:
//! its core speed is ≈ 0.55× an m4 core, matching the up-to-84% training
//! slowdown of Fig. 1. NIC bandwidths reflect the observed saturation
//! plateaus of Figs. 2 and 7 (≈ 70–118 MB/s). Prices are 2019 us-east-1
//! on-demand.

use crate::instance::InstanceType;
use serde::{Deserialize, Serialize};

/// An ordered collection of instance types the provisioner can choose from.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    types: Vec<InstanceType>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a type; panics if it fails validation or duplicates a name.
    pub fn add(&mut self, t: InstanceType) -> &mut Self {
        if let Err(e) = t.validate() {
            panic!("invalid instance type: {e}");
        }
        assert!(
            self.get(&t.name).is_none(),
            "duplicate instance type {}",
            t.name
        );
        self.types.push(t);
        self
    }

    /// Looks a type up by name.
    pub fn get(&self, name: &str) -> Option<&InstanceType> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Looks a type up by name, panicking with a useful message if missing.
    pub fn expect(&self, name: &str) -> &InstanceType {
        self.get(name)
            .unwrap_or_else(|| panic!("instance type {name:?} not in catalog"))
    }

    /// All types in insertion order.
    pub fn types(&self) -> &[InstanceType] {
        &self.types
    }

    /// Number of types (the paper's `p` in the complexity analysis of
    /// Alg. 1).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

/// The calibrated catalog mirroring the paper's testbed (Sec. 2 and Sec. 5)
/// plus two extra general-purpose sizes so Alg. 1 has a non-trivial type
/// search space.
pub fn default_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add(InstanceType {
        name: "m4.xlarge".into(),
        vcpus: 4,
        physical_cores: 2,
        core_gflops: 0.90,
        node_gflops: 3.60,
        nic_mbps: 118.0,
        price_per_hour: 0.20,
        launch_secs: 95.0,
    });
    c.add(InstanceType {
        // Previous-generation straggler (Intel E5-2651 v2); the paper's
        // heterogeneous clusters mix these in as ⌊n/2⌋ of the workers.
        name: "m1.xlarge".into(),
        vcpus: 4,
        physical_cores: 4,
        core_gflops: 0.50,
        node_gflops: 2.00,
        nic_mbps: 80.0,
        price_per_hour: 0.35,
        launch_secs: 120.0,
    });
    c.add(InstanceType {
        name: "c3.xlarge".into(),
        vcpus: 4,
        physical_cores: 2,
        core_gflops: 1.00,
        node_gflops: 4.00,
        nic_mbps: 95.0,
        price_per_hour: 0.21,
        launch_secs: 90.0,
    });
    c.add(InstanceType {
        // E5-2670 v2, used in Fig. 8's cross-type prediction experiment.
        name: "r3.xlarge".into(),
        vcpus: 4,
        physical_cores: 2,
        core_gflops: 0.80,
        node_gflops: 3.20,
        nic_mbps: 95.0,
        price_per_hour: 0.333,
        launch_secs: 100.0,
    });
    c.add(InstanceType {
        name: "m4.2xlarge".into(),
        vcpus: 8,
        physical_cores: 4,
        core_gflops: 0.90,
        node_gflops: 7.20,
        nic_mbps: 125.0,
        price_per_hour: 0.40,
        launch_secs: 95.0,
    });
    c.add(InstanceType {
        name: "c4.xlarge".into(),
        vcpus: 4,
        physical_cores: 2,
        core_gflops: 1.05,
        node_gflops: 4.20,
        nic_mbps: 95.0,
        price_per_hour: 0.199,
        launch_secs: 90.0,
    });
    c
}

/// The default catalog extended with GPU instance types, for the paper's
/// future-work scenario (Sec. 7: "deploy Cynthia in the GPU cluster").
/// Capabilities are in the same capability-table units as the CPU types
/// (an effective m4 core = 0.9), so one profile transfers across the
/// whole catalog: a K80 runs the conv-heavy workloads ≈ 28× an m4 core,
/// a V100 ≈ 130×. GPU instances ship with 10-25 Gbps networking.
pub fn gpu_catalog() -> Catalog {
    let mut c = default_catalog();
    c.add(InstanceType {
        name: "p2.xlarge".into(),
        vcpus: 4,
        physical_cores: 1, // one GPU = one worker pod
        core_gflops: 25.0,
        node_gflops: 27.0,
        nic_mbps: 450.0,
        price_per_hour: 0.90,
        launch_secs: 150.0,
    });
    c.add(InstanceType {
        name: "p3.2xlarge".into(),
        vcpus: 8,
        physical_cores: 1,
        core_gflops: 120.0,
        node_gflops: 125.0,
        nic_mbps: 1250.0,
        price_per_hour: 3.06,
        launch_secs: 150.0,
    });
    c
}

/// The static "CPU capability table" (paper ref. \[3\]) used to obtain
/// `c_wk`/`c_ps` without profiling each type: `(type name, core GFLOPS,
/// node GFLOPS)`.
pub fn capability_table() -> Vec<(String, f64, f64)> {
    default_catalog()
        .types()
        .iter()
        .map(|t| (t.name.clone(), t.core_gflops, t.node_gflops))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PodKind;

    #[test]
    fn default_catalog_has_the_papers_types() {
        let c = default_catalog();
        for name in ["m4.xlarge", "m1.xlarge", "c3.xlarge", "r3.xlarge"] {
            assert!(c.get(name).is_some(), "{name} missing");
        }
        assert!(c.len() >= 4);
    }

    #[test]
    fn all_default_types_validate() {
        for t in default_catalog().types() {
            t.validate().unwrap();
        }
    }

    #[test]
    fn straggler_ratio_matches_calibration() {
        let c = default_catalog();
        let m4 = c.expect("m4.xlarge").core_gflops;
        let m1 = c.expect("m1.xlarge").core_gflops;
        let ratio = m1 / m4;
        assert!(
            (0.5..0.65).contains(&ratio),
            "straggler ratio {ratio} outside the calibrated band"
        );
    }

    #[test]
    fn lookup_by_name() {
        let c = default_catalog();
        assert_eq!(c.expect("m4.xlarge").pod_gflops(PodKind::Worker), 0.90);
        assert!(c.get("p3.16xlarge").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate instance type")]
    fn duplicate_names_rejected() {
        let mut c = default_catalog();
        let t = c.expect("m4.xlarge").clone();
        c.add(t);
    }

    #[test]
    fn capability_table_covers_catalog() {
        let table = capability_table();
        assert_eq!(table.len(), default_catalog().len());
        let (name, core, node) = &table[0];
        assert_eq!(name, "m4.xlarge");
        assert_eq!(*core, 0.90);
        assert_eq!(*node, 3.60);
    }
}

#[cfg(test)]
mod gpu_tests {
    use super::*;

    #[test]
    fn gpu_catalog_extends_the_default() {
        let g = gpu_catalog();
        assert_eq!(g.len(), default_catalog().len() + 2);
        for t in g.types() {
            t.validate().unwrap();
        }
        let k80 = g.expect("p2.xlarge");
        let v100 = g.expect("p3.2xlarge");
        assert!(v100.core_gflops > 4.0 * k80.core_gflops);
        assert!(v100.price_per_hour > k80.price_per_hour);
        // One GPU per worker pod.
        assert_eq!(k80.physical_cores, 1);
    }
}
