//! Instrumentation hooks for billing (feature `obs`).
//!
//! [`BillingMeter`](crate::billing::BillingMeter) reports every lease
//! launch and every settled lease cost — the realized Eq. (8) spend —
//! so the cost side of the paper's objective is observable alongside
//! the time side (`cynthia_train_*`). Hooks never affect billing.

#[cfg(feature = "obs")]
mod real {
    use cynthia_obs::{metrics, Counter, FloatCounter};
    use std::sync::OnceLock;

    fn leases() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_billing_leases_total",
                "Instance leases launched by billing meters",
            )
        })
    }

    fn settled() -> &'static FloatCounter {
        static C: OnceLock<FloatCounter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().float_counter(
                "cynthia_billing_settled_dollars_total",
                "Settled lease cost in dollars (realized Eq. 8 spend)",
            )
        })
    }

    /// Records a lease launch.
    #[inline]
    pub fn lease_launched() {
        if cynthia_obs::enabled() {
            leases().inc();
        }
    }

    /// Records a terminated lease's settled cost.
    #[inline]
    pub fn lease_settled(cost: f64) {
        if cynthia_obs::enabled() {
            settled().add(cost);
        }
    }
}

#[cfg(feature = "obs")]
pub use real::*;

/// No-op hook bodies compiled when the `obs` feature is off.
#[cfg(not(feature = "obs"))]
mod stub {
    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn lease_launched() {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn lease_settled(_cost: f64) {}
}

#[cfg(not(feature = "obs"))]
pub use stub::*;
