//! # cynthia-cloud — a simulated EC2-like public cloud
//!
//! The Cynthia paper provisions Amazon EC2 instances (m4.xlarge, m1.xlarge,
//! c3.xlarge, r3.xlarge), joins them into a Kubernetes cluster, and bills
//! them at on-demand hourly prices. This crate substitutes that environment
//! with a deterministic, in-process model:
//!
//! * [`instance`] — instance-type descriptors: CPU capability (GFLOPS),
//!   NIC bandwidth (MB/s), hourly price, launch latency.
//! * [`catalog`] — the calibrated instance catalog and the static "CPU
//!   capability table" the paper looks capabilities up in (its ref. \[3\]).
//! * [`billing`] — a per-second billing meter over launch/terminate events.
//! * [`provisioner`] — a simulated provisioning API plus the
//!   kubeadm-join-style cluster assembly used by the prototype (Sec. 5).
//! * [`netperf`] — one-shot bandwidth measurement of a link, standing in
//!   for the paper's use of the `netperf` tool.
//! * [`spot`] — a deterministic spot market: per-type price traces and
//!   seeded revocation processes for transient capacity.
//!
//! Calibration rationale lives in `DESIGN.md` §6: the catalog constants are
//! chosen once so the paper's bottleneck knees (PS NIC saturation around
//! 8–9 workers for mnist/VGG-19, straggler ratio ≈ 0.55) appear at the same
//! cluster sizes.

#![warn(missing_docs)]

pub mod billing;
pub mod catalog;
pub mod instance;
pub mod netperf;
pub mod obs;
pub mod provisioner;
pub mod spot;

pub use billing::{BillingError, BillingMeter};
pub use catalog::{capability_table, default_catalog, gpu_catalog, Catalog};
pub use instance::{InstanceType, PodKind};
pub use provisioner::{CloudProvider, Instance, InstanceId, ProvisionRequest, ProvisionedCluster};
pub use spot::{RevocationModel, SpotMarket, SpotMarketConfig, SpotPriceTrace};
