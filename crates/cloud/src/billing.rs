//! Per-second billing over launch/terminate events.
//!
//! The paper's cost metric (Eq. 8) is hourly price × runtime × instance
//! count. `BillingMeter` generalizes that to arbitrary launch/terminate
//! schedules so the end-to-end framework can also account for provisioning
//! latency if desired.

use std::collections::HashMap;

/// One billable lease: an instance of some hourly price running over an
/// interval.
#[derive(Debug, Clone)]
struct Lease {
    price_per_hour: f64,
    start: f64,
    /// `None` while still running.
    end: Option<f64>,
}

/// Accumulates the cost of a fleet of instances.
#[derive(Debug, Default, Clone)]
pub struct BillingMeter {
    leases: HashMap<u64, Lease>,
    next_id: u64,
    /// Cost of already-terminated leases.
    settled: f64,
}

impl BillingMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts billing an instance at `t` (seconds) with the given hourly
    /// price; returns a lease handle.
    pub fn launch(&mut self, t: f64, price_per_hour: f64) -> u64 {
        assert!(price_per_hour >= 0.0 && t >= 0.0);
        let id = self.next_id;
        self.next_id += 1;
        self.leases.insert(
            id,
            Lease {
                price_per_hour,
                start: t,
                end: None,
            },
        );
        id
    }

    /// Stops billing lease `id` at time `t`.
    ///
    /// # Panics
    /// Panics on an unknown or already-terminated lease, or if `t` precedes
    /// the launch.
    pub fn terminate(&mut self, id: u64, t: f64) {
        let lease = self.leases.get_mut(&id).expect("unknown lease");
        assert!(lease.end.is_none(), "lease {id} already terminated");
        assert!(t >= lease.start, "terminate before launch");
        lease.end = Some(t);
        self.settled += lease.price_per_hour * (t - lease.start) / 3600.0;
    }

    /// Terminates every running lease at `t`.
    pub fn terminate_all(&mut self, t: f64) {
        let running: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.end.is_none())
            .map(|(id, _)| *id)
            .collect();
        for id in running {
            self.terminate(id, t);
        }
    }

    /// Total accrued cost as of time `t` (running leases billed up to `t`).
    pub fn total_cost(&self, t: f64) -> f64 {
        let running: f64 = self
            .leases
            .values()
            .filter(|l| l.end.is_none())
            .map(|l| l.price_per_hour * (t - l.start).max(0.0) / 3600.0)
            .sum();
        self.settled + running
    }

    /// Number of currently running leases.
    pub fn running(&self) -> usize {
        self.leases.values().filter(|l| l.end.is_none()).count()
    }
}

/// Convenience: the paper's Eq. (8) cost of a static cluster —
/// `(p_wk·n_wk + p_ps·n_ps) · t_iter · s`, with time in seconds and prices
/// in $/hour.
pub fn static_cluster_cost(
    worker_price_per_hour: f64,
    n_workers: u32,
    ps_price_per_hour: f64,
    n_ps: u32,
    runtime_secs: f64,
) -> f64 {
    assert!(runtime_secs >= 0.0);
    (worker_price_per_hour * n_workers as f64 + ps_price_per_hour * n_ps as f64) * runtime_secs
        / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lease_accrues_per_second() {
        let mut m = BillingMeter::new();
        let id = m.launch(0.0, 3.6); // $3.6/h = $0.001/s
        assert!((m.total_cost(1000.0) - 1.0).abs() < 1e-9);
        m.terminate(id, 2000.0);
        assert!((m.total_cost(9999.0) - 2.0).abs() < 1e-9);
        assert_eq!(m.running(), 0);
    }

    #[test]
    fn staggered_fleet() {
        let mut m = BillingMeter::new();
        m.launch(0.0, 1.0);
        m.launch(1800.0, 1.0);
        assert_eq!(m.running(), 2);
        m.terminate_all(3600.0);
        // 1h + 0.5h at $1/h
        assert!((m.total_cost(99999.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut m = BillingMeter::new();
        let id = m.launch(0.0, 1.0);
        m.terminate(id, 1.0);
        m.terminate(id, 2.0);
    }

    #[test]
    fn static_cost_matches_eq8() {
        // 4 workers at $0.2/h + 1 PS at $0.2/h for 5400 s = $1.5.
        let c = static_cluster_cost(0.2, 4, 0.2, 1, 5400.0);
        assert!((c - 1.5).abs() < 1e-12);
    }
}
