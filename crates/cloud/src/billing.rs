//! Per-second billing over launch/terminate events.
//!
//! The paper's cost metric (Eq. 8) is hourly price × runtime × instance
//! count. `BillingMeter` generalizes that to arbitrary launch/terminate
//! schedules so the end-to-end framework can also account for provisioning
//! latency if desired.
//!
//! Spot-priced capacity is billed through the same meter: a spot lease is a
//! sequence of fixed-price segments, and [`BillingMeter::reprice`] settles
//! the running segment and opens the next one whenever the market price
//! moves (the elastic layer drives this at each price epoch).

use std::collections::HashMap;

/// Typed billing failures. Revocation handling drives terminate/lookup
/// paths programmatically, so these are recoverable values, not panics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BillingError {
    /// The lease id was never issued by this meter.
    UnknownLease(u64),
    /// The lease was already terminated (double-revocation, double-teardown).
    AlreadyTerminated(u64),
    /// The event time precedes the lease's (current segment) start.
    TimeBeforeStart {
        /// Lease the out-of-order event targeted.
        id: u64,
        /// Start of the lease's current billing segment.
        start: f64,
        /// Timestamp of the rejected event.
        t: f64,
    },
}

impl std::fmt::Display for BillingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BillingError::UnknownLease(id) => write!(f, "unknown lease {id}"),
            BillingError::AlreadyTerminated(id) => write!(f, "lease {id} already terminated"),
            BillingError::TimeBeforeStart { id, start, t } => {
                write!(f, "event at t={t} precedes start {start} of lease {id}")
            }
        }
    }
}

impl std::error::Error for BillingError {}

/// One billable lease: an instance of some hourly price running over an
/// interval. For spot leases, `start`/`settled_before` describe only the
/// *current* price segment; earlier segments are folded into
/// `settled_before`.
#[derive(Debug, Clone)]
struct Lease {
    price_per_hour: f64,
    /// Start of the current price segment.
    start: f64,
    /// Cost of this lease's already-settled earlier price segments.
    settled_before: f64,
    /// `None` while still running.
    end: Option<f64>,
}

/// Accumulates the cost of a fleet of instances.
#[derive(Debug, Default, Clone)]
pub struct BillingMeter {
    leases: HashMap<u64, Lease>,
    next_id: u64,
    /// Cost of already-terminated leases.
    settled: f64,
}

impl BillingMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts billing an instance at `t` (seconds) with the given hourly
    /// price; returns a lease handle.
    pub fn launch(&mut self, t: f64, price_per_hour: f64) -> u64 {
        assert!(price_per_hour >= 0.0 && t >= 0.0);
        let id = self.next_id;
        self.next_id += 1;
        self.leases.insert(
            id,
            Lease {
                price_per_hour,
                start: t,
                settled_before: 0.0,
                end: None,
            },
        );
        crate::obs::lease_launched();
        id
    }

    fn running_lease_mut(&mut self, id: u64) -> Result<&mut Lease, BillingError> {
        let lease = self
            .leases
            .get_mut(&id)
            .ok_or(BillingError::UnknownLease(id))?;
        if lease.end.is_some() {
            return Err(BillingError::AlreadyTerminated(id));
        }
        Ok(lease)
    }

    /// Stops billing lease `id` at time `t`; returns the lease's total
    /// settled cost.
    ///
    /// # Errors
    /// [`BillingError::UnknownLease`] for a handle this meter never issued,
    /// [`BillingError::AlreadyTerminated`] on double-terminate, and
    /// [`BillingError::TimeBeforeStart`] if `t` precedes the lease's
    /// current segment start.
    pub fn terminate(&mut self, id: u64, t: f64) -> Result<f64, BillingError> {
        let lease = self.running_lease_mut(id)?;
        if t < lease.start {
            return Err(BillingError::TimeBeforeStart {
                id,
                start: lease.start,
                t,
            });
        }
        lease.end = Some(t);
        let cost = lease.settled_before + lease.price_per_hour * (t - lease.start) / 3600.0;
        self.settled += cost;
        crate::obs::lease_settled(cost);
        Ok(cost)
    }

    /// Changes the hourly price of a running lease at time `t` (spot price
    /// epoch): settles the segment `[segment_start, t)` at the old price
    /// and continues at `price_per_hour`.
    ///
    /// # Errors
    /// Same conditions as [`BillingMeter::terminate`].
    pub fn reprice(&mut self, id: u64, t: f64, price_per_hour: f64) -> Result<(), BillingError> {
        assert!(price_per_hour >= 0.0);
        let lease = self.running_lease_mut(id)?;
        if t < lease.start {
            return Err(BillingError::TimeBeforeStart {
                id,
                start: lease.start,
                t,
            });
        }
        lease.settled_before += lease.price_per_hour * (t - lease.start) / 3600.0;
        lease.start = t;
        lease.price_per_hour = price_per_hour;
        Ok(())
    }

    /// Terminates every running lease at `t`.
    pub fn terminate_all(&mut self, t: f64) {
        let running: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.end.is_none())
            .map(|(id, _)| *id)
            .collect();
        for id in running {
            // Running leases by construction; clamp never fires for sane
            // schedules, but terminate_all must not fail halfway.
            let _ = self.terminate(id, t);
        }
    }

    /// Whether lease `id` is currently running.
    ///
    /// # Errors
    /// [`BillingError::UnknownLease`] for a handle this meter never issued.
    pub fn is_running(&self, id: u64) -> Result<bool, BillingError> {
        self.leases
            .get(&id)
            .map(|l| l.end.is_none())
            .ok_or(BillingError::UnknownLease(id))
    }

    /// Accrued cost of a single lease as of `t` (running leases billed up
    /// to `t`, terminated leases at their final cost).
    ///
    /// # Errors
    /// [`BillingError::UnknownLease`] for a handle this meter never issued.
    pub fn lease_cost(&self, id: u64, t: f64) -> Result<f64, BillingError> {
        let lease = self.leases.get(&id).ok_or(BillingError::UnknownLease(id))?;
        let horizon = lease.end.unwrap_or(t);
        Ok(lease.settled_before + lease.price_per_hour * (horizon - lease.start).max(0.0) / 3600.0)
    }

    /// Total accrued cost as of time `t` (running leases billed up to `t`).
    pub fn total_cost(&self, t: f64) -> f64 {
        let running: f64 = self
            .leases
            .values()
            .filter(|l| l.end.is_none())
            .map(|l| l.settled_before + l.price_per_hour * (t - l.start).max(0.0) / 3600.0)
            .sum();
        self.settled + running
    }

    /// Number of currently running leases.
    pub fn running(&self) -> usize {
        self.leases.values().filter(|l| l.end.is_none()).count()
    }
}

/// Convenience: the paper's Eq. (8) cost of a static cluster —
/// `(p_wk·n_wk + p_ps·n_ps) · t_iter · s`, with time in seconds and prices
/// in $/hour.
pub fn static_cluster_cost(
    worker_price_per_hour: f64,
    n_workers: u32,
    ps_price_per_hour: f64,
    n_ps: u32,
    runtime_secs: f64,
) -> f64 {
    assert!(runtime_secs >= 0.0);
    (worker_price_per_hour * n_workers as f64 + ps_price_per_hour * n_ps as f64) * runtime_secs
        / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lease_accrues_per_second() {
        let mut m = BillingMeter::new();
        let id = m.launch(0.0, 3.6); // $3.6/h = $0.001/s
        assert!((m.total_cost(1000.0) - 1.0).abs() < 1e-9);
        let settled = m.terminate(id, 2000.0).unwrap();
        assert!((settled - 2.0).abs() < 1e-9);
        assert!((m.total_cost(9999.0) - 2.0).abs() < 1e-9);
        assert_eq!(m.running(), 0);
    }

    #[test]
    fn staggered_fleet() {
        let mut m = BillingMeter::new();
        m.launch(0.0, 1.0);
        m.launch(1800.0, 1.0);
        assert_eq!(m.running(), 2);
        m.terminate_all(3600.0);
        // 1h + 0.5h at $1/h
        assert!((m.total_cost(99999.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn double_terminate_is_a_typed_error() {
        let mut m = BillingMeter::new();
        let id = m.launch(0.0, 1.0);
        m.terminate(id, 1.0).unwrap();
        assert_eq!(
            m.terminate(id, 2.0),
            Err(BillingError::AlreadyTerminated(id))
        );
        // The failed call did not disturb the settled cost.
        assert!((m.total_cost(10.0) - 1.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn terminate_before_launch_is_a_typed_error() {
        let mut m = BillingMeter::new();
        let id = m.launch(100.0, 1.0);
        assert_eq!(
            m.terminate(id, 50.0),
            Err(BillingError::TimeBeforeStart {
                id,
                start: 100.0,
                t: 50.0
            })
        );
        // The lease is still running and billable.
        assert_eq!(m.is_running(id), Ok(true));
        m.terminate(id, 3700.0).unwrap();
        assert!((m.total_cost(9999.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_lease_is_a_typed_error() {
        let mut m = BillingMeter::new();
        assert_eq!(m.terminate(7, 1.0), Err(BillingError::UnknownLease(7)));
        assert_eq!(m.is_running(7), Err(BillingError::UnknownLease(7)));
        assert_eq!(m.lease_cost(7, 1.0), Err(BillingError::UnknownLease(7)));
    }

    #[test]
    fn reprice_settles_segments() {
        let mut m = BillingMeter::new();
        let id = m.launch(0.0, 1.0);
        // 1h at $1/h, then the spot price doubles for another hour.
        m.reprice(id, 3600.0, 2.0).unwrap();
        assert!((m.lease_cost(id, 7200.0).unwrap() - 3.0).abs() < 1e-9);
        let settled = m.terminate(id, 7200.0).unwrap();
        assert!((settled - 3.0).abs() < 1e-9);
        assert_eq!(
            m.reprice(id, 7300.0, 1.0),
            Err(BillingError::AlreadyTerminated(id))
        );
    }

    #[test]
    fn static_cost_matches_eq8() {
        // 4 workers at $0.2/h + 1 PS at $0.2/h for 5400 s = $1.5.
        let c = static_cluster_cost(0.2, 4, 0.2, 1, 5400.0);
        assert!((c - 1.5).abs() < 1e-12);
    }
}
