//! One-shot bandwidth measurement, standing in for `netperf`.
//!
//! The paper measures a PS node's available network bandwidth "only once
//! using the netperf tool" (Sec. 3). Here we run a short fluid-simulated
//! bulk transfer against the instance's NIC and report the achieved rate —
//! trivially equal to the catalog bandwidth for an idle NIC, but the
//! function accepts background load so tests can exercise a contended
//! measurement (which is what netperf would actually observe).

use crate::instance::InstanceType;
use cynthia_sim::fluid::{FlowSpec, FluidSystem};

/// Measures the bandwidth (MB/s) a new bulk flow achieves on the given
/// instance's NIC while `background_flows` long-running flows compete.
///
/// With no background load this equals the instance's full NIC bandwidth,
/// matching a quiescent netperf run.
pub fn measure_bandwidth(ty: &InstanceType, background_flows: usize) -> f64 {
    let mut sys = FluidSystem::new();
    let nic = sys.add_resource(ty.nic_mbps, format!("{}-nic", ty.name));
    for i in 0..background_flows {
        sys.start_flow(FlowSpec::new(vec![nic], f64::INFINITY, i as u64));
    }
    // 10 MB probe, the default netperf TCP_STREAM style bulk transfer.
    let probe = sys.start_flow(FlowSpec::new(vec![nic], 10.0, u64::MAX));
    sys.flow_rate(probe)
        .expect("probe flow must exist immediately after start")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::default_catalog;

    #[test]
    fn idle_nic_reports_catalog_bandwidth() {
        let cat = default_catalog();
        for t in cat.types() {
            let bw = measure_bandwidth(t, 0);
            assert!(
                (bw - t.nic_mbps).abs() < 1e-9,
                "{}: measured {bw}, catalog {}",
                t.name,
                t.nic_mbps
            );
        }
    }

    #[test]
    fn contended_nic_reports_fair_share() {
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        let bw = measure_bandwidth(m4, 1);
        assert!((bw - m4.nic_mbps / 2.0).abs() < 1e-9);
        let bw = measure_bandwidth(m4, 3);
        assert!((bw - m4.nic_mbps / 4.0).abs() < 1e-9);
    }
}
