//! Instance-type descriptors.
//!
//! An instance type carries exactly the scalars Cynthia's models consume:
//! per-core and per-node CPU capability in GFLOPS (the paper's `c_wk`,
//! `c_ps`, measured in FLOPS), NIC bandwidth in MB/s (`b_ps`), and the
//! on-demand hourly price (`p_t`).

use serde::{Deserialize, Serialize};

/// What role a pod (docker) plays on an instance. The prototype pins one
/// worker docker per physical CPU core and gives parameter-server pods the
/// whole node (Sec. 5, "Testbed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PodKind {
    /// A training worker: one physical core of the instance.
    Worker,
    /// A parameter server: the full node's CPU and NIC.
    ParameterServer,
}

/// A cloud instance type with the capabilities Cynthia's models need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// API name, e.g. `"m4.xlarge"`.
    pub name: String,
    /// Number of vCPUs (hyperthreads).
    pub vcpus: u32,
    /// Number of physical cores (worker pods are pinned one per core).
    pub physical_cores: u32,
    /// Effective per-core compute capability, GFLOPS (the paper's `c_wk`
    /// for a worker docker pinned to one core).
    pub core_gflops: f64,
    /// Effective whole-node compute capability, GFLOPS (the paper's `c_ps`
    /// for a PS pod owning the node).
    pub node_gflops: f64,
    /// NIC bandwidth in MB/s (the paper's `b_ps`; their PS NICs saturate
    /// around 70–110 MB/s).
    pub nic_mbps: f64,
    /// On-demand price in $/hour.
    pub price_per_hour: f64,
    /// Time from launch request to the pod joining the cluster, seconds.
    pub launch_secs: f64,
}

impl InstanceType {
    /// CPU capability available to a pod of the given kind, GFLOPS.
    pub fn pod_gflops(&self, kind: PodKind) -> f64 {
        match kind {
            PodKind::Worker => self.core_gflops,
            PodKind::ParameterServer => self.node_gflops,
        }
    }

    /// Price of running `count` pods' worth of instances for `secs` seconds,
    /// assuming one pod per instance (the provisioning granularity used in
    /// the evaluation: worker counts are instance counts).
    pub fn cost(&self, count: u32, secs: f64) -> f64 {
        assert!(secs >= 0.0, "negative duration");
        self.price_per_hour * count as f64 * secs / 3600.0
    }

    /// Validates internal consistency; used by catalog tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("empty name".into());
        }
        if self.vcpus == 0 || self.physical_cores == 0 {
            return Err(format!("{}: zero cores", self.name));
        }
        if self.physical_cores > self.vcpus {
            return Err(format!("{}: more physical cores than vCPUs", self.name));
        }
        for (field, v) in [
            ("core_gflops", self.core_gflops),
            ("node_gflops", self.node_gflops),
            ("nic_mbps", self.nic_mbps),
            ("price_per_hour", self.price_per_hour),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{}: {field} must be positive, got {v}", self.name));
            }
        }
        if self.node_gflops + 1e-9 < self.core_gflops {
            return Err(format!("{}: node slower than a single core", self.name));
        }
        if self.launch_secs < 0.0 {
            return Err(format!("{}: negative launch latency", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m4() -> InstanceType {
        InstanceType {
            name: "m4.xlarge".into(),
            vcpus: 4,
            physical_cores: 2,
            core_gflops: 0.9,
            node_gflops: 3.6,
            nic_mbps: 118.0,
            price_per_hour: 0.2,
            launch_secs: 90.0,
        }
    }

    #[test]
    fn pod_gflops_by_kind() {
        let t = m4();
        assert_eq!(t.pod_gflops(PodKind::Worker), 0.9);
        assert_eq!(t.pod_gflops(PodKind::ParameterServer), 3.6);
    }

    #[test]
    fn cost_is_per_second_prorated() {
        let t = m4();
        // 3 instances for half an hour at $0.2/h = $0.3.
        assert!((t.cost(3, 1800.0) - 0.3).abs() < 1e-12);
        assert_eq!(t.cost(0, 1000.0), 0.0);
    }

    #[test]
    fn validate_accepts_sane_type() {
        assert!(m4().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut t = m4();
        t.nic_mbps = 0.0;
        assert!(t.validate().is_err());
        let mut t = m4();
        t.physical_cores = 8;
        assert!(t.validate().is_err());
        let mut t = m4();
        t.node_gflops = 0.1;
        assert!(t.validate().is_err());
    }
}
