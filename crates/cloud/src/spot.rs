//! Deterministic spot-market model: price traces and revocation processes.
//!
//! The paper provisions on-demand capacity only; the elastic layer extends
//! it to transient (spot) instances, which trade a steep discount for the
//! risk of revocation. This module supplies the two stochastic ingredients,
//! both derived from a single master seed so that whole elastic experiments
//! replay bit-for-bit:
//!
//! * [`SpotMarket::price_trace`] — a piecewise-constant, mean-reverting
//!   bounded random walk over price epochs, one independent stream per
//!   instance type.
//! * [`SpotMarket::revocation_times`] — a renewal process of reclaim times
//!   per (instance type, fleet slot), with exponential or Weibull
//!   interarrivals ([`RevocationModel`]).

use crate::instance::InstanceType;
use cynthia_sim::rng::component_rng;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Interarrival distribution of spot reclaims for one fleet slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RevocationModel {
    /// Never revoked (useful as a control).
    None,
    /// Memoryless reclaims: exponential interarrivals with the given rate.
    Exponential {
        /// Mean reclaims per instance-hour.
        rate_per_hour: f64,
    },
    /// Weibull interarrivals. `shape < 1` models front-loaded reclaim risk
    /// (young instances die first, the empirical spot pattern); `shape = 1`
    /// degenerates to exponential.
    Weibull {
        /// Weibull shape `k` (front-loaded risk when `< 1`).
        shape: f64,
        /// Weibull scale `λ`, hours.
        scale_hours: f64,
    },
}

/// Shape of the simulated spot market, relative to on-demand prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMarketConfig {
    /// Long-run mean spot price as a fraction of on-demand (~0.3 on EC2).
    pub mean_discount: f64,
    /// Lower clamp on the spot price, as a fraction of on-demand.
    pub floor_discount: f64,
    /// Upper clamp, as a fraction of on-demand (1.0 = never above it).
    pub cap_discount: f64,
    /// Seconds between price epochs (price is constant within an epoch).
    pub epoch_secs: f64,
    /// Pull toward the mean per epoch, in (0, 1].
    pub reversion: f64,
    /// Per-epoch noise, as a fraction of the mean spot price.
    pub volatility: f64,
    /// Reclaim process per fleet slot.
    pub revocations: RevocationModel,
}

impl Default for SpotMarketConfig {
    fn default() -> Self {
        SpotMarketConfig {
            mean_discount: 0.35,
            floor_discount: 0.15,
            cap_discount: 1.0,
            epoch_secs: 300.0,
            reversion: 0.3,
            volatility: 0.08,
            revocations: RevocationModel::Exponential { rate_per_hour: 0.5 },
        }
    }
}

impl SpotMarketConfig {
    fn validate(&self) {
        assert!(
            self.mean_discount > 0.0 && self.mean_discount <= 1.0,
            "mean_discount must be in (0, 1]"
        );
        assert!(
            0.0 < self.floor_discount
                && self.floor_discount <= self.mean_discount
                && self.mean_discount <= self.cap_discount,
            "discounts must satisfy 0 < floor <= mean <= cap"
        );
        assert!(self.epoch_secs > 0.0, "epoch_secs must be positive");
        assert!(
            self.reversion > 0.0 && self.reversion <= 1.0,
            "reversion must be in (0, 1]"
        );
        assert!(self.volatility >= 0.0, "volatility must be non-negative");
        if let RevocationModel::Weibull { shape, scale_hours } = self.revocations {
            assert!(shape > 0.0 && scale_hours > 0.0, "degenerate Weibull");
        }
    }
}

/// A piecewise-constant spot price over time: `(epoch start, $/hour)`
/// points in ascending order, the first at `t = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotPriceTrace {
    points: Vec<(f64, f64)>,
}

impl SpotPriceTrace {
    /// The market price in force at time `t` (clamped to the first epoch
    /// for `t < 0`).
    pub fn price_at(&self, t: f64) -> f64 {
        match self.points.iter().rev().find(|(start, _)| *start <= t) {
            Some((_, p)) => *p,
            None => self.points[0].1,
        }
    }

    /// All `(time, price)` change points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Change points strictly inside `(from, to]` — the reprice events a
    /// lease running over that interval must play back.
    pub fn changes_in(&self, from: f64, to: f64) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter(|(t, _)| *t > from && *t <= to)
            .copied()
            .collect()
    }

    /// Time-weighted mean price over `[0, horizon]`.
    pub fn mean_price(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0);
        let mut acc = 0.0;
        for (i, (start, price)) in self.points.iter().enumerate() {
            if *start >= horizon {
                break;
            }
            let end = self
                .points
                .get(i + 1)
                .map(|(t, _)| *t)
                .unwrap_or(horizon)
                .min(horizon);
            acc += price * (end - start);
        }
        acc / horizon
    }
}

/// A seeded spot market over an instance catalog. Streams are independent
/// per instance type (prices) and per fleet slot (revocations): adding a
/// worker, or querying another type, never perturbs existing draws.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    config: SpotMarketConfig,
    seed: u64,
}

impl SpotMarket {
    /// Creates a market with the given shape; `seed` fixes every price
    /// trace and revocation draw.
    pub fn new(config: SpotMarketConfig, seed: u64) -> Self {
        config.validate();
        SpotMarket { config, seed }
    }

    /// The market's configuration.
    pub fn config(&self) -> &SpotMarketConfig {
        &self.config
    }

    /// The spot price trace of `ty` over `[0, horizon_secs]`.
    pub fn price_trace(&self, ty: &InstanceType, horizon_secs: f64) -> SpotPriceTrace {
        assert!(horizon_secs >= 0.0);
        let od = ty.price_per_hour;
        let mean = self.config.mean_discount * od;
        let floor = self.config.floor_discount * od;
        let cap = self.config.cap_discount * od;
        let mut rng = component_rng(self.seed, &format!("spot-price:{}", ty.name), 0);
        let mut price = mean;
        let mut points = vec![(0.0, price)];
        let mut t = self.config.epoch_secs;
        while t <= horizon_secs {
            let z = standard_normal(&mut rng);
            price = (price
                + self.config.reversion * (mean - price)
                + self.config.volatility * mean * z)
                .clamp(floor, cap);
            // Consecutive clamps produce flat segments; skip the no-ops.
            if price != points.last().expect("non-empty").1 {
                points.push((t, price));
            }
            t += self.config.epoch_secs;
        }
        SpotPriceTrace { points }
    }

    /// Reclaim times within `[0, horizon_secs)` for fleet slot `slot` of
    /// instance type `ty_name`. Each slot is an independent renewal
    /// process; the schedule is a function of `(seed, type, slot)` only.
    pub fn revocation_times(&self, ty_name: &str, slot: u64, horizon_secs: f64) -> Vec<f64> {
        let mut rng = component_rng(self.seed, &format!("spot-revoke:{ty_name}"), slot);
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            let dt = match self.config.revocations {
                RevocationModel::None => return out,
                RevocationModel::Exponential { rate_per_hour } => {
                    if rate_per_hour <= 0.0 {
                        return out;
                    }
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() / rate_per_hour * 3600.0
                }
                RevocationModel::Weibull { shape, scale_hours } => {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    (-u.ln()).powf(1.0 / shape) * scale_hours * 3600.0
                }
            };
            t += dt;
            if t >= horizon_secs {
                return out;
            }
            out.push(t);
        }
    }
}

/// One standard-normal draw (Box–Muller, as the jitter source uses).
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::default_catalog;

    fn m4() -> InstanceType {
        default_catalog().expect("m4.xlarge").clone()
    }

    fn market(seed: u64) -> SpotMarket {
        SpotMarket::new(SpotMarketConfig::default(), seed)
    }

    #[test]
    fn price_trace_is_bounded_and_deterministic() {
        let ty = m4();
        let a = market(7).price_trace(&ty, 24.0 * 3600.0);
        let b = market(7).price_trace(&ty, 24.0 * 3600.0);
        assert_eq!(a, b);
        let floor = 0.15 * ty.price_per_hour;
        let cap = ty.price_per_hour;
        for (t, p) in a.points() {
            assert!(*t >= 0.0);
            assert!(
                (floor - 1e-12..=cap + 1e-12).contains(p),
                "price {p} escaped [{floor}, {cap}] at t={t}"
            );
        }
        // The walk hovers near the configured mean discount.
        let mean = a.mean_price(24.0 * 3600.0);
        let target = 0.35 * ty.price_per_hour;
        assert!(
            (mean - target).abs() / target < 0.25,
            "mean {mean} far from target {target}"
        );
    }

    #[test]
    fn traces_differ_across_types_and_seeds() {
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge").clone();
        let c3 = cat.expect("c3.xlarge").clone();
        let mkt = market(7);
        assert_ne!(
            mkt.price_trace(&m4, 7200.0).points(),
            mkt.price_trace(&c3, 7200.0).points()
        );
        assert_ne!(
            mkt.price_trace(&m4, 7200.0),
            market(8).price_trace(&m4, 7200.0)
        );
    }

    #[test]
    fn price_lookup_is_piecewise_constant() {
        let ty = m4();
        let trace = market(3).price_trace(&ty, 3600.0);
        let pts = trace.points();
        assert_eq!(pts[0].0, 0.0);
        for w in pts.windows(2) {
            // Just before the next epoch the earlier price still holds.
            assert_eq!(trace.price_at(w[1].0 - 1e-6), w[0].1);
            assert_eq!(trace.price_at(w[1].0), w[1].1);
        }
        let changes = trace.changes_in(0.0, 3600.0);
        assert_eq!(changes.len(), pts.len() - 1, "t=0 point is not a change");
    }

    #[test]
    fn exponential_revocations_match_rate() {
        let mkt = SpotMarket::new(
            SpotMarketConfig {
                revocations: RevocationModel::Exponential { rate_per_hour: 2.0 },
                ..SpotMarketConfig::default()
            },
            11,
        );
        // Aggregate over many slots: ≈ 2/h × 50 h × 40 slots = 4000 events.
        let total: usize = (0..40)
            .map(|slot| mkt.revocation_times("m4.xlarge", slot, 50.0 * 3600.0).len())
            .sum();
        assert!(
            (3200..4800).contains(&total),
            "observed {total} reclaims, expected ≈4000"
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let cfg_w = SpotMarketConfig {
            revocations: RevocationModel::Weibull {
                shape: 1.0,
                scale_hours: 0.5,
            },
            ..SpotMarketConfig::default()
        };
        let times = SpotMarket::new(cfg_w, 5).revocation_times("m4.xlarge", 0, 100.0 * 3600.0);
        // Mean interarrival ≈ scale = 0.5 h.
        let mean = times.windows(2).map(|w| w[1] - w[0]).sum::<f64>() / (times.len() - 1) as f64;
        assert!(
            (mean / 1800.0 - 1.0).abs() < 0.2,
            "mean interarrival {mean} s, expected ≈1800"
        );
    }

    #[test]
    fn revocation_schedules_are_per_slot_and_deterministic() {
        let mkt = market(13);
        let a = mkt.revocation_times("m4.xlarge", 0, 36_000.0);
        let b = mkt.revocation_times("m4.xlarge", 0, 36_000.0);
        let c = mkt.revocation_times("m4.xlarge", 1, 36_000.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn no_revocations_model_is_quiet() {
        let mkt = SpotMarket::new(
            SpotMarketConfig {
                revocations: RevocationModel::None,
                ..SpotMarketConfig::default()
            },
            1,
        );
        assert!(mkt.revocation_times("m4.xlarge", 0, 1e9).is_empty());
    }
}
