//! Single-node SGD training.

use crate::data::Blobs;
use crate::network::Mlp;
use crate::optimizer::Optimizer;

/// Result of a training run: the per-iteration loss curve.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// `(iteration, minibatch loss)` — iteration is 1-based.
    pub loss_curve: Vec<(u64, f64)>,
    pub final_accuracy: f64,
}

/// Trains `net` on `data` for `iterations` minibatch SGD steps.
pub fn train_single_node<O: Optimizer>(
    net: &mut Mlp,
    data: &Blobs,
    opt: &mut O,
    iterations: u64,
    batch: usize,
) -> TrainOutcome {
    let mut curve = Vec::with_capacity(iterations as usize);
    let mut params = net.params().to_vec();
    for it in 0..iterations {
        let (x, y) = data.minibatch(it as usize, batch);
        net.set_params(&params);
        let (loss, grads) = net.loss_and_grad(&x, &y);
        opt.step(&mut params, &grads);
        curve.push((it + 1, loss as f64));
    }
    net.set_params(&params);
    let (x, y) = data.minibatch(0, data.len().min(512));
    TrainOutcome {
        loss_curve: curve,
        final_accuracy: net.accuracy(&x, &y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;

    #[test]
    fn training_converges_on_separable_blobs() {
        let data = Blobs::generate(512, 16, 4, 0.3, 11);
        let mut net = Mlp::new(&[16, 32, 4], 1);
        let mut opt = Sgd::new(0.2);
        let out = train_single_node(&mut net, &data, &mut opt, 300, 64);
        let first = out.loss_curve[0].1;
        let last = out.loss_curve.last().unwrap().1;
        assert!(last < first * 0.3, "loss {first} -> {last}");
        assert!(out.final_accuracy > 0.9, "accuracy {}", out.final_accuracy);
    }

    #[test]
    fn loss_curve_has_hyperbolic_shape() {
        // Fit loss = b0/s + b1 by least squares on the measured curve and
        // require a decent R² — the empirical basis of the paper's Eq. (1).
        let data = Blobs::generate(1024, 16, 4, 0.6, 5);
        let mut net = Mlp::new(&[16, 32, 4], 2);
        let mut opt = Sgd::new(0.1);
        let out = train_single_node(&mut net, &data, &mut opt, 800, 64);
        // Skip the warm-up plateau; smooth with a short moving average to
        // tame minibatch noise.
        let smoothed: Vec<(f64, f64)> = out
            .loss_curve
            .windows(10)
            .step_by(10)
            .map(|w| {
                let s = w[w.len() / 2].0 as f64;
                let l = w.iter().map(|(_, l)| l).sum::<f64>() / w.len() as f64;
                (1.0 / s, l)
            })
            .skip(2)
            .collect();
        let n = smoothed.len() as f64;
        let mx = smoothed.iter().map(|(x, _)| x).sum::<f64>() / n;
        let my = smoothed.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = smoothed.iter().map(|(x, _)| (x - mx).powi(2)).sum();
        let sxy: f64 = smoothed.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
        let b0 = sxy / sxx;
        let b1 = my - b0 * mx;
        let ss_res: f64 = smoothed
            .iter()
            .map(|(x, y)| (y - (b0 * x + b1)).powi(2))
            .sum();
        let ss_tot: f64 = smoothed.iter().map(|(_, y)| (y - my).powi(2)).sum();
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(b0 > 0.0, "decay constant must be positive: {b0}");
        assert!(
            r2 > 0.7,
            "1/s fit should explain most of the variance: R²={r2}"
        );
    }
}
