//! Stochastic gradient descent, optionally with momentum.
//!
//! The paper's training configuration is plain SGD (Sec. 2: "such a
//! training configuration is commonly used in production DDNN training");
//! momentum is provided because the convergence-shape tests also exercise
//! it (the paper notes its loss-fitting method extends to other
//! optimizers).

/// A first-order optimizer over flat parameter vectors.
pub trait Optimizer {
    /// Applies one update in place.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        Sgd::step(self, params, grads)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        Adam::step(self, params, grads)
    }
}

/// An SGD optimizer operating on flat parameter vectors.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        assert!((0.0..1.0).contains(&momentum), "momentum in [0,1)");
        Sgd {
            momentum,
            ..Sgd::new(lr)
        }
    }

    /// Applies one update in place: `p ← p − lr·(v ← μ·v + g)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad size mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }
}

/// The Adam optimizer (Kingma & Ba). The paper notes its loss-fitting
/// method extends to "other optimization methods (e.g., Adam)"; the
/// integration tests fit Eq. (1) to Adam-trained curves to back that up.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Adam with the canonical defaults (β1=0.9, β2=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one bias-corrected Adam update in place.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad size mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[10.0, -10.0]);
        assert_eq!(p, vec![0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::with_momentum(0.1, 0.5);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]); // v=1, p=-0.1
        opt.step(&mut p, &[1.0]); // v=1.5, p=-0.25
        assert!((p[0] + 0.25).abs() < 1e-6);
    }

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x-3)^2, gradient 2(x-3).
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0f32];
        for _ in 0..100 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0f32];
        for _ in 0..300 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "{}", p[0]);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // Bias correction makes the very first step ≈ lr regardless of
        // gradient magnitude.
        for g in [0.001f32, 1.0, 1000.0] {
            let mut opt = Adam::new(0.1);
            let mut p = vec![0.0f32];
            opt.step(&mut p, &[g]);
            assert!(
                (p[0] + 0.1).abs() < 1e-3,
                "g={g}: first step {} should be ≈ -lr",
                p[0]
            );
        }
    }

    #[test]
    fn adam_handles_resized_parameter_vectors() {
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0f32; 2];
        opt.step(&mut p, &[1.0, 1.0]);
        // A new parameter size resets state rather than panicking.
        let mut q = vec![0.0f32; 3];
        opt.step(&mut q, &[1.0, 1.0, 1.0]);
        assert_eq!(q.len(), 3);
    }
}
