//! A minimal row-major `f32` matrix with the kernels an MLP needs.
//!
//! Kernels are written cache-consciously (ikj loop order for GEMM, so the
//! inner loop streams rows of both operands) per the Rust performance
//! guidance this project follows; no unsafe, no external BLAS.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing slice, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other` (ikj order).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "outer dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    /// Adds `bias` to every row.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// In-place ReLU; returns the activation mask for backprop.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect()
    }

    /// Zeroes entries whose mask bit is false (ReLU backward).
    pub fn mask_inplace(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.data.len());
        for (v, &m) in self.data.iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
    }

    /// Scales every entry.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_agrees_with_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 2, &[1., 2., 3., 4.]);
        let at = m(3, 2, &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(a.t_matmul(&b).as_slice(), at.matmul(&b).as_slice());
    }

    #[test]
    fn matmul_t_agrees_with_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 3, &[7., 8., 9., 10., 11., 12.]);
        let bt = m(3, 2, &[7., 10., 8., 11., 9., 12.]);
        assert_eq!(a.matmul_t(&b).as_slice(), a.matmul(&bt).as_slice());
    }

    #[test]
    fn bias_and_colsums_roundtrip() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_bias(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut a = m(1, 4, &[-1.0, 2.0, -3.0, 4.0]);
        let mask = a.relu_inplace();
        assert_eq!(a.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(mask, vec![false, true, false, true]);
        let mut g = m(1, 4, &[10., 10., 10., 10.]);
        g.mask_inplace(&mask);
        assert_eq!(g.as_slice(), &[0., 10., 0., 10.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }
}
