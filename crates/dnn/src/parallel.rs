//! A real in-memory parameter server with threaded workers.
//!
//! This is the statistical companion to the discrete-event simulator: an
//! actual data-parallel SGD implementation whose workers are OS threads
//! (crossbeam scoped) sharing a parameter vector:
//!
//! * **BSP** — all workers compute gradients on disjoint minibatch shards,
//!   meet at a barrier, and worker 0 applies the aggregated (averaged)
//!   gradient — one global update per round, deterministic.
//! * **ASP** — workers pull, compute, and apply independently under a
//!   mutex; the *real* parameter staleness of every update is recorded.
//!   This is the mechanism behind the paper's √n convergence penalty
//!   (Summary 2 / Eq. 1).

use crate::data::Blobs;
use crate::network::Mlp;
use parking_lot::Mutex;
use std::sync::Barrier;

/// Synchronization mode of the threaded trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsMode {
    Bsp,
    Asp,
}

/// Configuration for [`train_parameter_server`].
#[derive(Debug, Clone, Copy)]
pub struct PsTrainConfig {
    pub mode: PsMode,
    pub n_workers: usize,
    /// Global updates to perform (BSP rounds, or ASP commits).
    pub iterations: u64,
    /// Per-worker minibatch size.
    pub batch: usize,
    pub lr: f32,
    pub seed: u64,
}

/// Outcome of a threaded PS run.
#[derive(Debug, Clone)]
pub struct PsOutcome {
    /// `(global update, minibatch loss at that update)` in commit order.
    pub loss_curve: Vec<(u64, f64)>,
    /// Staleness (missed updates) per ASP commit; empty for BSP.
    pub staleness: Vec<u64>,
    /// Final parameters.
    pub params: Vec<f32>,
}

impl PsOutcome {
    /// Mean staleness across commits (0 for BSP).
    pub fn mean_staleness(&self) -> f64 {
        if self.staleness.is_empty() {
            0.0
        } else {
            self.staleness.iter().sum::<u64>() as f64 / self.staleness.len() as f64
        }
    }

    /// Mean loss over the last `k` commits (tail average tames minibatch
    /// noise).
    pub fn tail_loss(&self, k: usize) -> f64 {
        let n = self.loss_curve.len();
        let k = k.min(n).max(1);
        self.loss_curve[n - k..].iter().map(|(_, l)| l).sum::<f64>() / k as f64
    }
}

struct PsState {
    params: Vec<f32>,
    version: u64,
    loss_curve: Vec<(u64, f64)>,
    staleness: Vec<u64>,
}

/// Trains an MLP with the given layer `dims` on `data` using `cfg.n_workers`
/// real worker threads against a shared parameter server.
pub fn train_parameter_server(dims: &[usize], data: &Blobs, cfg: &PsTrainConfig) -> PsOutcome {
    assert!(cfg.n_workers >= 1, "need at least one worker");
    assert!(cfg.iterations >= 1);
    let template = Mlp::new(dims, cfg.seed);
    match cfg.mode {
        PsMode::Bsp => train_bsp(template, data, cfg),
        PsMode::Asp => train_asp(template, data, cfg),
    }
}

fn train_bsp(template: Mlp, data: &Blobs, cfg: &PsTrainConfig) -> PsOutcome {
    let n = cfg.n_workers;
    let barrier = Barrier::new(n);
    let grads: Vec<Mutex<Vec<f32>>> = (0..n)
        .map(|_| Mutex::new(vec![0.0f32; template.param_count()]))
        .collect();
    let losses: Vec<Mutex<f32>> = (0..n).map(|_| Mutex::new(0.0)).collect();
    let state = Mutex::new(PsState {
        params: template.params().to_vec(),
        version: 0,
        loss_curve: Vec::new(),
        staleness: Vec::new(),
    });

    crossbeam::thread::scope(|scope| {
        for j in 0..n {
            let barrier = &barrier;
            let grads = &grads;
            let losses = &losses;
            let state = &state;
            let template = &template;
            scope.spawn(move |_| {
                let mut net = template.clone();
                for step in 0..cfg.iterations {
                    {
                        let s = state.lock();
                        net.set_params(&s.params);
                    }
                    let (x, y) = data.worker_batch(j, n, step as usize, cfg.batch);
                    let (loss, g) = net.loss_and_grad(&x, &y);
                    *grads[j].lock() = g;
                    *losses[j].lock() = loss;
                    barrier.wait();
                    if j == 0 {
                        // Deterministic aggregation in worker order.
                        let mut s = state.lock();
                        let mut mean_loss = 0.0f64;
                        for w in 0..n {
                            let g = grads[w].lock();
                            for (p, gi) in s.params.iter_mut().zip(g.iter()) {
                                *p -= cfg.lr * gi / n as f32;
                            }
                            mean_loss += *losses[w].lock() as f64 / n as f64;
                        }
                        s.version += 1;
                        let v = s.version;
                        s.loss_curve.push((v, mean_loss));
                    }
                    barrier.wait();
                }
            });
        }
    })
    .expect("a BSP worker thread panicked");

    let s = state.into_inner();
    PsOutcome {
        loss_curve: s.loss_curve,
        staleness: s.staleness,
        params: s.params,
    }
}

fn train_asp(template: Mlp, data: &Blobs, cfg: &PsTrainConfig) -> PsOutcome {
    let n = cfg.n_workers;
    let state = Mutex::new(PsState {
        params: template.params().to_vec(),
        version: 0,
        loss_curve: Vec::new(),
        staleness: Vec::new(),
    });

    crossbeam::thread::scope(|scope| {
        for j in 0..n {
            let state = &state;
            let template = &template;
            scope.spawn(move |_| {
                let mut net = template.clone();
                let mut step = 0usize;
                loop {
                    // Pull.
                    let seen = {
                        let s = state.lock();
                        if s.version >= cfg.iterations {
                            break;
                        }
                        net.set_params(&s.params);
                        s.version
                    };
                    // Compute on this worker's shard.
                    let (x, y) = data.worker_batch(j, n, step, cfg.batch);
                    step += 1;
                    let (loss, g) = net.loss_and_grad(&x, &y);
                    // Push: apply whatever the current parameters are.
                    let mut s = state.lock();
                    if s.version >= cfg.iterations {
                        break;
                    }
                    for (p, gi) in s.params.iter_mut().zip(&g) {
                        *p -= cfg.lr * gi;
                    }
                    let stale = s.version - seen;
                    s.version += 1;
                    let v = s.version;
                    s.staleness.push(stale);
                    s.loss_curve.push((v, loss as f64));
                }
            });
        }
    })
    .expect("an ASP worker thread panicked");

    let s = state.into_inner();
    PsOutcome {
        loss_curve: s.loss_curve,
        staleness: s.staleness,
        params: s.params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Blobs {
        Blobs::generate(512, 12, 4, 0.5, 21)
    }

    fn cfg(mode: PsMode, n: usize, iters: u64) -> PsTrainConfig {
        PsTrainConfig {
            mode,
            n_workers: n,
            iterations: iters,
            batch: 32,
            lr: 0.15,
            seed: 77,
        }
    }

    #[test]
    fn bsp_converges_and_is_deterministic() {
        let data = blobs();
        let a = train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Bsp, 4, 150));
        let b = train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Bsp, 4, 150));
        assert_eq!(a.params, b.params, "BSP must be deterministic");
        assert_eq!(a.loss_curve.len(), 150);
        assert!(a.tail_loss(20) < a.loss_curve[0].1 * 0.5);
        assert!(a.staleness.is_empty());
    }

    #[test]
    fn bsp_loss_trajectory_is_worker_count_invariant_in_shape() {
        // Same number of global updates, same per-worker batch: more
        // workers = bigger effective batch, still converging to a similar
        // tail loss (the paper's Fig. 4(a) observation).
        let data = blobs();
        let a = train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Bsp, 2, 200));
        let b = train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Bsp, 6, 200));
        let (ta, tb) = (a.tail_loss(30), b.tail_loss(30));
        assert!(
            (ta - tb).abs() < 0.25,
            "BSP tails should be close: {ta} vs {tb}"
        );
    }

    #[test]
    fn asp_commits_exactly_the_target_and_records_staleness() {
        let data = blobs();
        let out = train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Asp, 4, 200));
        assert_eq!(out.loss_curve.len(), 200);
        assert_eq!(out.staleness.len(), 200);
        assert!(out.tail_loss(30) < out.loss_curve[0].1, "still converges");
    }

    #[test]
    fn asp_staleness_grows_with_worker_count() {
        let data = blobs();
        let s2 =
            train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Asp, 2, 300)).mean_staleness();
        let s8 =
            train_parameter_server(&[12, 24, 4], &data, &cfg(PsMode::Asp, 8, 300)).mean_staleness();
        assert!(
            s8 > s2,
            "more workers must mean more missed updates: {s2} vs {s8}"
        );
        assert!(
            s8 > 0.5,
            "8 ASP workers should observe real staleness: {s8}"
        );
    }
}
