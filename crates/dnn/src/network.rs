//! A multilayer perceptron with softmax cross-entropy loss.
//!
//! Parameters are exposed as one flat `Vec<f32>` — exactly the view a
//! parameter server has of a model — so push/pull and gradient application
//! are slice operations.

use crate::tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Layer dimensions: `dims[0]` inputs, `dims.last()` classes, ReLU between
/// hidden layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub dims: Vec<usize>,
    /// Flat parameter vector: for each layer, weights (in×out, row-major)
    /// then biases (out).
    params: Vec<f32>,
}

/// Forward/backward scratch produced by [`Mlp::forward`].
pub struct ForwardPass {
    /// Activations per layer (post-ReLU), starting with the input batch.
    activations: Vec<Matrix>,
    /// ReLU masks per hidden layer.
    masks: Vec<Vec<bool>>,
    /// Softmax probabilities.
    probs: Matrix,
}

impl Mlp {
    /// He-initialized MLP with the given layer dimensions (≥ 2 entries).
    pub fn new(dims: &[usize], seed: u64) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|d| *d > 0), "zero-width layer");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut params = Vec::with_capacity(Self::param_count_of(dims));
        for w in dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f32).sqrt();
            for _ in 0..fan_in * fan_out {
                // Uniform(-a, a) with matching variance: a = std*sqrt(3).
                let a = std * 3f32.sqrt();
                params.push(rng.gen_range(-a..a));
            }
            params.extend(std::iter::repeat_n(0.0, fan_out));
        }
        Mlp {
            dims: dims.to_vec(),
            params,
        }
    }

    /// Total number of parameters for the given dims.
    pub fn param_count_of(dims: &[usize]) -> usize {
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Overwrites the flat parameter vector (a "pull").
    pub fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.params.len(), "parameter size mismatch");
        self.params.copy_from_slice(p);
    }

    /// Offset of layer `l`'s weights and biases in the flat vector.
    fn layer_offset(&self, l: usize) -> (usize, usize, usize) {
        let mut off = 0;
        for i in 0..l {
            off += self.dims[i] * self.dims[i + 1] + self.dims[i + 1];
        }
        let w_len = self.dims[l] * self.dims[l + 1];
        (off, off + w_len, off + w_len + self.dims[l + 1])
    }

    fn weights(&self, l: usize) -> Matrix {
        let (w0, w1, _) = self.layer_offset(l);
        Matrix::from_vec(self.dims[l], self.dims[l + 1], self.params[w0..w1].to_vec())
    }

    fn biases(&self, l: usize) -> &[f32] {
        let (_, w1, b1) = self.layer_offset(l);
        &self.params[w1..b1]
    }

    /// Forward pass on a batch (`x`: batch × dims\[0\]).
    pub fn forward(&self, x: &Matrix) -> ForwardPass {
        assert_eq!(x.cols(), self.dims[0], "input width mismatch");
        let n_layers = self.dims.len() - 1;
        let mut activations = vec![x.clone()];
        let mut masks = Vec::new();
        for l in 0..n_layers {
            let mut z = activations[l].matmul(&self.weights(l));
            z.add_row_bias(self.biases(l));
            if l + 1 < n_layers {
                masks.push(z.relu_inplace());
            }
            activations.push(z);
        }
        let logits = activations.last().unwrap();
        let mut probs = logits.clone();
        for r in 0..probs.rows() {
            let row = probs.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        ForwardPass {
            activations,
            masks,
            probs,
        }
    }

    /// Mean cross-entropy of a forward pass against integer labels.
    pub fn loss(&self, pass: &ForwardPass, labels: &[usize]) -> f32 {
        assert_eq!(labels.len(), pass.probs.rows());
        let mut total = 0.0;
        for (r, &y) in labels.iter().enumerate() {
            total -= pass.probs.get(r, y).max(1e-12).ln();
        }
        total / labels.len() as f32
    }

    /// Backward pass: gradient of the mean cross-entropy w.r.t. the flat
    /// parameter vector.
    pub fn backward(&self, pass: &ForwardPass, labels: &[usize]) -> Vec<f32> {
        let batch = labels.len();
        let n_layers = self.dims.len() - 1;
        // dL/dlogits = (probs - onehot)/batch
        let mut delta = pass.probs.clone();
        for (r, &y) in labels.iter().enumerate() {
            let v = delta.get(r, y);
            delta.set(r, y, v - 1.0);
        }
        delta.scale(1.0 / batch as f32);

        let mut grads = vec![0.0f32; self.params.len()];
        for l in (0..n_layers).rev() {
            let (w0, w1, b1) = self.layer_offset(l);
            let a_prev = &pass.activations[l];
            let dw = a_prev.t_matmul(&delta);
            grads[w0..w1].copy_from_slice(dw.as_slice());
            grads[w1..b1].copy_from_slice(&delta.col_sums());
            if l > 0 {
                let mut next = delta.matmul_t(&self.weights(l));
                next.mask_inplace(&pass.masks[l - 1]);
                delta = next;
            }
        }
        grads
    }

    /// Convenience: loss and gradient of a `(x, labels)` minibatch.
    pub fn loss_and_grad(&self, x: &Matrix, labels: &[usize]) -> (f32, Vec<f32>) {
        let pass = self.forward(x);
        (self.loss(&pass, labels), self.backward(&pass, labels))
    }

    /// Gradient of the mean cross-entropy w.r.t. the *input* batch — what
    /// an upstream layer (e.g. a convolution feeding this head) needs for
    /// its own backward pass.
    pub fn input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        let pass = self.forward(x);
        let batch = labels.len();
        let n_layers = self.dims.len() - 1;
        let mut delta = pass.probs.clone();
        for (r, &y) in labels.iter().enumerate() {
            let v = delta.get(r, y);
            delta.set(r, y, v - 1.0);
        }
        delta.scale(1.0 / batch as f32);
        for l in (0..n_layers).rev() {
            let mut next = delta.matmul_t(&self.weights(l));
            if l > 0 {
                next.mask_inplace(&pass.masks[l - 1]);
            }
            delta = next;
        }
        delta
    }

    /// Classification accuracy on a batch.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let pass = self.forward(x);
        let mut hits = 0usize;
        for (r, &y) in labels.iter().enumerate() {
            let row = pass.probs.row(r);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if argmax == y {
                hits += 1;
            }
        }
        hits as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batch() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_vec(
            4,
            3,
            vec![
                0.5, -0.2, 0.1, //
                -0.4, 0.9, 0.3, //
                0.0, 0.2, -0.7, //
                0.8, 0.8, 0.8,
            ],
        );
        (x, vec![0, 1, 2, 1])
    }

    #[test]
    fn param_count_matches_layout() {
        let net = Mlp::new(&[3, 5, 4], 1);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 4 + 4);
        assert_eq!(Mlp::param_count_of(&[3, 5, 4]), net.param_count());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let net = Mlp::new(&[3, 8, 4], 2);
        let (x, _) = tiny_batch();
        let pass = net.forward(&x);
        for r in 0..4 {
            let s: f32 = pass.probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut net = Mlp::new(&[3, 6, 4], 3);
        let (x, y) = tiny_batch();
        let (_, grads) = net.loss_and_grad(&x, &y);
        let eps = 1e-3f32;
        // Spot-check a spread of parameter indices.
        let n = net.param_count();
        for &i in &[0usize, 7, n / 2, n - 3, n - 1] {
            let orig = net.params()[i];
            let mut p = net.params().to_vec();
            p[i] = orig + eps;
            net.set_params(&p);
            let (lp, _) = net.loss_and_grad(&x, &y);
            p[i] = orig - eps;
            net.set_params(&p);
            let (lm, _) = net.loss_and_grad(&x, &y);
            p[i] = orig;
            net.set_params(&p);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grads[i] - numeric).abs() < 2e-3,
                "param {i}: analytic {} vs numeric {numeric}",
                grads[i]
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let net = Mlp::new(&[3, 6, 4], 8);
        let (x, y) = tiny_batch();
        let d_x = net.input_gradient(&x, &y);
        let eps = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (1, 2), (3, 1)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let (lp, _) = net.loss_and_grad(&xp, &y);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let (lm, _) = net.loss_and_grad(&xm, &y);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (d_x.get(r, c) - numeric).abs() < 2e-3,
                "({r},{c}): analytic {} vs numeric {numeric}",
                d_x.get(r, c)
            );
        }
    }

    #[test]
    fn loss_decreases_under_gradient_steps() {
        let mut net = Mlp::new(&[3, 16, 4], 4);
        let (x, y) = tiny_batch();
        let (l0, _) = net.loss_and_grad(&x, &y);
        for _ in 0..50 {
            let (_, g) = net.loss_and_grad(&x, &y);
            let mut p = net.params().to_vec();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= 0.5 * gi;
            }
            net.set_params(&p);
        }
        let (l1, _) = net.loss_and_grad(&x, &y);
        assert!(l1 < l0 * 0.5, "loss should drop: {l0} -> {l1}");
        assert!(net.accuracy(&x, &y) >= 0.75);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let net = Mlp::new(&[3, 4], 0);
        let x = Matrix::zeros(2, 5);
        net.forward(&x);
    }
}
