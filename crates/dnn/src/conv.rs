//! A real 2-D convolution layer (im2col-free direct loops) and a small
//! convolutional classifier.
//!
//! The analytic model zoo (`cynthia-models`) only needs FLOP counts; this
//! module exists so the convergence-validation suite can also train an
//! *actual* convolutional network and confirm the `β0/s + β1` loss shape
//! is not an MLP artifact.

use crate::tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A square-kernel, stride-1, zero-padded 2-D convolution over
/// channels-first images flattened row-major into matrix rows.
#[derive(Debug, Clone)]
pub struct Conv2d {
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub side: usize,
    /// `[out_ch][in_ch][k][k]` flattened.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// He-initialized convolution for `side × side` inputs.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        side: usize,
        seed: u64,
    ) -> Conv2d {
        assert!(!kernel.is_multiple_of(2), "odd kernels only (same padding)");
        assert!(side >= kernel, "input smaller than kernel");
        let mut rng = SmallRng::seed_from_u64(seed);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let a = (2.0 / fan_in).sqrt() * 3f32.sqrt();
        let weights = (0..out_channels * in_channels * kernel * kernel)
            .map(|_| rng.gen_range(-a..a))
            .collect();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            side,
            weights,
            bias: vec![0.0; out_channels],
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Elements in one output sample.
    pub fn output_len(&self) -> usize {
        self.out_channels * self.side * self.side
    }

    fn w(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f32 {
        let k = self.kernel;
        self.weights[((oc * self.in_channels + ic) * k + ky) * k + kx]
    }

    /// Forward pass on a batch of flattened `in_channels × side × side`
    /// images.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let s = self.side;
        assert_eq!(x.cols(), self.in_channels * s * s, "input shape mismatch");
        let pad = (self.kernel / 2) as isize;
        let mut out = Matrix::zeros(x.rows(), self.output_len());
        for r in 0..x.rows() {
            let img = x.row(r);
            let out_row = out.row_mut(r);
            for oc in 0..self.out_channels {
                for y in 0..s {
                    for xx in 0..s {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let iy = y as isize + ky as isize - pad;
                                if iy < 0 || iy >= s as isize {
                                    continue;
                                }
                                for kx in 0..self.kernel {
                                    let ix = xx as isize + kx as isize - pad;
                                    if ix < 0 || ix >= s as isize {
                                        continue;
                                    }
                                    acc += self.w(oc, ic, ky, kx)
                                        * img[(ic * s + iy as usize) * s + ix as usize];
                                }
                            }
                        }
                        out_row[(oc * s + y) * s + xx] = acc;
                    }
                }
            }
        }
        out
    }

    /// Backward pass: returns `(d_input, d_weights, d_bias)` given the
    /// upstream gradient `d_out` and the forward input `x`.
    pub fn backward(&self, x: &Matrix, d_out: &Matrix) -> (Matrix, Vec<f32>, Vec<f32>) {
        let s = self.side;
        assert_eq!(d_out.cols(), self.output_len());
        assert_eq!(d_out.rows(), x.rows());
        let pad = (self.kernel / 2) as isize;
        let mut d_x = Matrix::zeros(x.rows(), x.cols());
        let mut d_w = vec![0.0f32; self.weights.len()];
        let mut d_b = vec![0.0f32; self.bias.len()];
        let k = self.kernel;
        for r in 0..x.rows() {
            let img = x.row(r);
            let grad = d_out.row(r);
            for oc in 0..self.out_channels {
                for y in 0..s {
                    for xx in 0..s {
                        let g = grad[(oc * s + y) * s + xx];
                        if g == 0.0 {
                            continue;
                        }
                        d_b[oc] += g;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = y as isize + ky as isize - pad;
                                if iy < 0 || iy >= s as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = xx as isize + kx as isize - pad;
                                    if ix < 0 || ix >= s as isize {
                                        continue;
                                    }
                                    let ii = (ic * s + iy as usize) * s + ix as usize;
                                    d_w[((oc * self.in_channels + ic) * k + ky) * k + kx] +=
                                        g * img[ii];
                                    d_x.row_mut(r)[ii] += g * self.w(oc, ic, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
        (d_x, d_w, d_b)
    }

    /// Applies a gradient step to the layer parameters.
    pub fn apply(&mut self, d_w: &[f32], d_b: &[f32], lr: f32) {
        assert_eq!(d_w.len(), self.weights.len());
        assert_eq!(d_b.len(), self.bias.len());
        for (w, g) in self.weights.iter_mut().zip(d_w) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(d_b) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Blobs;
    use crate::network::Mlp;

    #[test]
    fn forward_shape_and_param_count() {
        let conv = Conv2d::new(2, 4, 3, 5, 1);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
        let x = Matrix::zeros(3, 2 * 5 * 5);
        let y = conv.forward(&x);
        assert_eq!((y.rows(), y.cols()), (3, 4 * 5 * 5));
    }

    #[test]
    fn identity_kernel_passes_the_image_through() {
        // 1x1 "kernel"? use 3x3 with a centered 1.
        let mut conv = Conv2d::new(1, 1, 3, 4, 2);
        let zeros = vec![0.0f32; conv.weights.len()];
        conv.weights.copy_from_slice(&zeros);
        conv.weights[4] = 1.0; // center tap
        let x = Matrix::from_vec(1, 16, (0..16).map(|i| i as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 3, 3, 4, 3);
        let mut rng = SmallRng::seed_from_u64(9);
        let x = Matrix::from_vec(
            2,
            2 * 16,
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        // Scalar objective: sum of squares of the output.
        let y = conv.forward(&x);
        let loss = |m: &Matrix| -> f32 { m.as_slice().iter().map(|v| v * v).sum::<f32>() * 0.5 };
        let _ = loss(&y);
        let d_out = y.clone(); // dL/dy = y
        let (d_x, d_w, d_b) = conv.backward(&x, &d_out);

        let eps = 1e-2f32;
        // Spot-check weight gradients.
        for &i in &[0usize, 7, 25, conv.weights.len() - 1] {
            let orig = conv.weights[i];
            conv.weights[i] = orig + eps;
            let lp = loss(&conv.forward(&x));
            conv.weights[i] = orig - eps;
            let lm = loss(&conv.forward(&x));
            conv.weights[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (d_w[i] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "w[{i}]: {} vs {numeric}",
                d_w[i]
            );
        }
        // Spot-check bias and input gradients.
        let orig = conv.bias[1];
        conv.bias[1] = orig + eps;
        let lp = loss(&conv.forward(&x));
        conv.bias[1] = orig - eps;
        let lm = loss(&conv.forward(&x));
        conv.bias[1] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((d_b[1] - numeric).abs() < 0.05 * (1.0 + numeric.abs()));

        let mut x2 = x.clone();
        let v = x2.get(0, 5);
        x2.set(0, 5, v + eps);
        let lp = loss(&conv.forward(&x2));
        x2.set(0, 5, v - eps);
        let lm = loss(&conv.forward(&x2));
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (d_x.get(0, 5) - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
            "{} vs {numeric}",
            d_x.get(0, 5)
        );
    }

    #[test]
    fn conv_classifier_learns_and_loss_decays_hyperbolically() {
        // conv(1->4, 8x8) -> ReLU -> dense head, trained end to end on
        // blob "images": the Eq. (1) premise holds beyond MLPs.
        let side = 8;
        let data = Blobs::generate(256, side * side, 3, 0.4, 17);
        let mut conv = Conv2d::new(1, 4, 3, side, 5);
        let mut head = Mlp::new(&[4 * side * side, 3], 6);
        let mut curve = Vec::new();
        let lr = 0.05;
        for it in 0..250u64 {
            let (x, yl) = data.minibatch(it as usize, 32);
            let fmap = conv.forward(&x);
            let mut act = fmap.clone();
            let mask = act.relu_inplace();
            let (loss, grads_head) = head.loss_and_grad(&act, &yl);
            curve.push((it + 1, loss as f64));
            // Backprop into the head parameters.
            let mut p = head.params().to_vec();
            for (pi, gi) in p.iter_mut().zip(&grads_head) {
                *pi -= lr * gi;
            }
            head.set_params(&p);
            // Backprop through the head input into the conv layer.
            let d_act = head.input_gradient(&act, &yl);
            let mut d_fmap = d_act;
            d_fmap.mask_inplace(&mask);
            let (_, d_w, d_b) = conv.backward(&x, &d_fmap);
            conv.apply(&d_w, &d_b, lr);
        }
        let head_loss = curve[..20].iter().map(|(_, l)| l).sum::<f64>() / 20.0;
        let tail_loss = curve[curve.len() - 20..]
            .iter()
            .map(|(_, l)| l)
            .sum::<f64>()
            / 20.0;
        assert!(
            tail_loss < head_loss * 0.7,
            "conv net should learn: {head_loss} -> {tail_loss}"
        );
    }
}
