//! Synthetic classification datasets.
//!
//! Gaussian blobs — one cluster per class with controllable overlap — are
//! the standard stand-in when the real dataset (mnist/cifar10 in the
//! paper) is unavailable: SGD on them exhibits the same `β0/s + β1` loss
//! decay the paper's Summary 2 fits.

use crate::tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled synthetic dataset.
#[derive(Debug, Clone)]
pub struct Blobs {
    pub features: Matrix,
    pub labels: Vec<usize>,
    pub n_classes: usize,
}

impl Blobs {
    /// Generates `n_samples` points in `n_features` dimensions, one
    /// Gaussian cluster per class. `noise` is the cluster standard
    /// deviation relative to the inter-center distance (≈ 0.3 is cleanly
    /// separable, ≈ 1.0 is hard).
    pub fn generate(
        n_samples: usize,
        n_features: usize,
        n_classes: usize,
        noise: f32,
        seed: u64,
    ) -> Blobs {
        assert!(n_classes >= 2, "need at least two classes");
        assert!(n_features >= 1 && n_samples >= n_classes);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random unit-ish centers.
        let centers: Vec<Vec<f32>> = (0..n_classes)
            .map(|_| (0..n_features).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n_samples * n_features);
        let mut labels = Vec::with_capacity(n_samples);
        for i in 0..n_samples {
            let class = i % n_classes;
            labels.push(class);
            for center in &centers[class] {
                let g = gaussian(&mut rng);
                data.push(center + noise * g);
            }
        }
        Blobs {
            features: Matrix::from_vec(n_samples, n_features, data),
            labels,
            n_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies minibatch `index` of size `batch` (wrapping around).
    pub fn minibatch(&self, index: usize, batch: usize) -> (Matrix, Vec<usize>) {
        assert!(batch > 0 && batch <= self.len());
        let n = self.len();
        let start = (index * batch) % n;
        let mut data = Vec::with_capacity(batch * self.features.cols());
        let mut labels = Vec::with_capacity(batch);
        for i in 0..batch {
            let r = (start + i) % n;
            data.extend_from_slice(self.features.row(r));
            labels.push(self.labels[r]);
        }
        (Matrix::from_vec(batch, self.features.cols(), data), labels)
    }

    /// A disjoint-by-stride shard view for worker `j` of `n` (data
    /// parallelism): every n-th minibatch index belongs to worker `j`.
    pub fn worker_batch(
        &self,
        worker: usize,
        n_workers: usize,
        step: usize,
        batch: usize,
    ) -> (Matrix, Vec<usize>) {
        self.minibatch(step * n_workers + worker, batch)
    }
}

fn gaussian(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_label_balance() {
        let d = Blobs::generate(300, 8, 3, 0.3, 7);
        assert_eq!(d.len(), 300);
        assert_eq!(d.features.cols(), 8);
        for c in 0..3 {
            let count = d.labels.iter().filter(|l| **l == c).count();
            assert_eq!(count, 100, "balanced classes");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Blobs::generate(50, 4, 2, 0.5, 9);
        let b = Blobs::generate(50, 4, 2, 0.5, 9);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_ne!(
            a.features.as_slice(),
            Blobs::generate(50, 4, 2, 0.5, 10).features.as_slice()
        );
    }

    #[test]
    fn minibatch_wraps_around() {
        let d = Blobs::generate(10, 2, 2, 0.1, 1);
        let (x, y) = d.minibatch(3, 4); // start = 12 % 10 = 2
        assert_eq!(x.rows(), 4);
        assert_eq!(y.len(), 4);
        assert_eq!(x.row(0), d.features.row(2));
        let (x2, _) = d.minibatch(0, 10);
        assert_eq!(x2.rows(), 10);
    }

    #[test]
    fn low_noise_blobs_are_separable() {
        // A linear probe should do well: centers far apart vs noise.
        let d = Blobs::generate(200, 4, 2, 0.1, 3);
        // Distance between class means should dominate intra-class spread.
        let mean = |class: usize| -> Vec<f32> {
            let rows: Vec<usize> = (0..d.len()).filter(|r| d.labels[*r] == class).collect();
            let mut m = vec![0.0; 4];
            for &r in &rows {
                for (mi, v) in m.iter_mut().zip(d.features.row(r)) {
                    *mi += v / rows.len() as f32;
                }
            }
            m
        };
        let m0 = mean(0);
        let m1 = mean(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.4, "cluster centers too close: {dist}");
    }
}
