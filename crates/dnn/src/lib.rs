//! # cynthia-dnn — a real miniature neural-network library
//!
//! The Cynthia reproduction's ground-truth *cluster* behaviour comes from
//! a discrete-event simulator (`cynthia-train`); this crate exists to
//! validate the *statistical* premises that simulator bakes in:
//!
//! 1. **Eq. (1)'s form** — under SGD, training loss decays ≈ `β0/s + β1`
//!    (Summary 2 of the paper). [`trainer`] really trains MLPs with SGD on
//!    synthetic data and the integration tests fit the hyperbola to the
//!    measured curve.
//! 2. **ASP staleness slows convergence** — [`parallel`] implements an
//!    actual in-memory parameter server with crossbeam worker threads in
//!    BSP (barrier + aggregated apply) and ASP (lock-free cadence, real
//!    staleness) modes, demonstrating the √n degradation Eq. (1) models.
//!
//! Everything is dependency-light and CPU-only: [`tensor::Matrix`] is a
//! row-major `f32` matrix with the handful of BLAS-like kernels a
//! multilayer perceptron needs.

pub mod conv;
pub mod data;
pub mod network;
pub mod optimizer;
pub mod parallel;
pub mod tensor;
pub mod trainer;

pub use conv::Conv2d;
pub use data::Blobs;
pub use network::Mlp;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use parallel::{train_parameter_server, PsMode, PsOutcome, PsTrainConfig};
pub use tensor::Matrix;
pub use trainer::{train_single_node, TrainOutcome};
