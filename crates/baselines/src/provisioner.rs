//! The "modified Optimus" provisioner (footnote 4 of the paper).
//!
//! Vanilla Optimus schedules to minimize average completion time in a
//! shared cluster; to compare provisioning strategies under a performance
//! *goal*, the paper substitutes the Optimus performance model into the
//! same cost-minimizing search (Alg. 1). This module does exactly that.

use crate::optimus::OptimusModel;
use cynthia_cloud::catalog::Catalog;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::profiler::ProfileData;
use cynthia_core::provisioner::{plan_with_model, Goal, Plan, PlannerOptions};

/// Plans with the Optimus model under the same goal and search.
pub fn plan_with_optimus(
    optimus: &OptimusModel,
    profile: &ProfileData,
    loss: &FittedLossModel,
    catalog: &Catalog,
    goal: &Goal,
    options: &PlannerOptions,
) -> Option<Plan> {
    plan_with_model(optimus, profile, loss, catalog, goal, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;
    use cynthia_core::profiler::profile_workload;
    use cynthia_core::provisioner::plan;
    use cynthia_models::Workload;

    #[test]
    fn optimus_plans_differ_from_cynthia_under_overlap() {
        // Optimus's additive model overestimates BSP time, so it tends to
        // provision at least as many (often more) resources than Cynthia
        // for the same goal — the over-provisioning of Fig. 11.
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        let w = Workload::cifar10_bsp();
        let profile = profile_workload(&w, m4, 11);
        let loss = FittedLossModel {
            sync: w.sync,
            beta0: w.convergence.beta0,
            beta1: w.convergence.beta1,
            r_squared: 1.0,
        };
        let goal = Goal {
            deadline_secs: 5400.0,
            target_loss: 0.8,
        };
        let opts = PlannerOptions::default();
        let optimus = OptimusModel::fit_from_simulation(&w, m4, &[1, 2, 3, 4], 11);
        let p_cyn = plan(&profile, &loss, &cat, &goal, &opts).expect("cynthia plan");
        let p_opt =
            plan_with_optimus(&optimus, &profile, &loss, &cat, &goal, &opts).expect("optimus plan");
        let cyn_nodes = p_cyn.n_workers + p_cyn.n_ps;
        let opt_nodes = p_opt.n_workers + p_opt.n_ps;
        assert!(
            opt_nodes >= cyn_nodes,
            "Optimus should not under-provision vs Cynthia here: {p_opt:?} vs {p_cyn:?}"
        );
    }
}
