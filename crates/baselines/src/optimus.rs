//! The Optimus performance model.
//!
//! Optimus models the iteration time of PS training with a low-order
//! rational form and calibrates its coefficients by least squares on
//! *observed* samples `(n, t_iter)` collected from short profiling runs:
//!
//! * BSP: `t_iter(n, p) = θ0/n + θ1 + θ2·n/p` — per-worker compute share,
//!   fixed overhead, communication linear in workers and inverse in PS
//!   count.
//! * ASP (per-worker cycle): `t_iter(n, p) = θ0 + θ1·n/p + θ2/n` —
//!   constant cycle, contention growing with workers, small-cluster
//!   correction.
//!
//! Computation and communication are additive (no overlap modelling) and
//! there is no demand/supply bottleneck term; both shortcomings are what
//! Sec. 5.1 of the Cynthia paper measures. When fitted from simulation,
//! the model records the profiled instance type's capabilities and scales
//! the compute/communication terms by capability ratios when asked about
//! other types (the minimal extension needed for the footnote-4
//! "modified Optimus" to search a catalog at all).

use cynthia_core::perf_model::{ClusterShape, PerfModel};
use cynthia_models::{SyncMode, Workload};
use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};
use serde::{Deserialize, Serialize};

/// A fitted Optimus model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimusModel {
    pub sync: SyncMode,
    /// Coefficients of the per-mode basis (see module docs).
    pub theta: [f64; 3],
    /// The `(n, t_iter)` samples the model was fitted on (diagnostics).
    pub samples: Vec<(u32, f64)>,
    /// Core GFLOPS of the instance type the samples came from (compute
    /// terms scale by `ref/actual`); `None` disables scaling.
    pub ref_core_gflops: Option<f64>,
    /// Per-node NIC MB/s of the profiled type (communication terms scale
    /// by `ref/actual`).
    pub ref_nic_mbps: Option<f64>,
}

fn basis(sync: SyncMode, n: f64) -> [f64; 3] {
    match sync {
        SyncMode::Bsp => [1.0 / n, 1.0, n],
        SyncMode::Asp => [1.0, n, 1.0 / n],
    }
}

impl OptimusModel {
    /// Fits θ to observed `(workers, iteration time)` samples, all taken
    /// with one PS node. Negative components are clamped to zero and the
    /// remaining terms refitted (Optimus uses NNLS).
    ///
    /// # Panics
    /// Panics with fewer than three samples (three unknowns).
    pub fn fit(sync: SyncMode, samples: &[(u32, f64)]) -> OptimusModel {
        assert!(
            samples.len() >= 3,
            "Optimus needs at least 3 profiling samples, got {}",
            samples.len()
        );
        let rows: Vec<([f64; 3], f64)> = samples
            .iter()
            .map(|(n, t)| (basis(sync, *n as f64), *t))
            .collect();
        let theta = nnls3(&rows);
        OptimusModel {
            sync,
            theta,
            samples: samples.to_vec(),
            ref_core_gflops: None,
            ref_nic_mbps: None,
        }
    }

    /// Collects samples by running the workload briefly at each of
    /// `sample_ns` worker counts (1 PS), then fits — Optimus's online
    /// profiling. Small `sample_ns` (the realistic, cheap choice) never
    /// see the bottleneck regime, which is exactly why the model
    /// extrapolates poorly there.
    pub fn fit_from_simulation(
        workload: &Workload,
        ty: &cynthia_cloud::instance::InstanceType,
        sample_ns: &[u32],
        seed: u64,
    ) -> OptimusModel {
        let samples: Vec<(u32, f64)> = sample_ns
            .iter()
            .map(|n| {
                let mut probe = workload.clone();
                probe.iterations = 30;
                let job = TrainJob {
                    workload: &probe,
                    cluster: ClusterSpec::homogeneous(ty, *n, 1),
                    config: SimConfig::exact(seed ^ (*n as u64)),
                };
                let report = simulate(&job);
                (*n, report.iter_time.mean)
            })
            .collect();
        OptimusModel {
            ref_core_gflops: Some(ty.core_gflops),
            ref_nic_mbps: Some(ty.nic_mbps),
            ..Self::fit(workload.sync, &samples)
        }
    }

    /// Capability scaling factors `(compute, network)` for a target
    /// shape relative to the profiled type.
    fn scales(&self, shape: &ClusterShape) -> (f64, f64) {
        let cpu = self
            .ref_core_gflops
            .map(|r| r / shape.min_worker_gflops())
            .unwrap_or(1.0);
        let per_ps_bw = shape.ps_total_bw / shape.n_ps as f64;
        let net = self.ref_nic_mbps.map(|r| r / per_ps_bw).unwrap_or(1.0);
        (cpu, net)
    }
}

impl PerfModel for OptimusModel {
    fn name(&self) -> &str {
        "Optimus"
    }

    fn iter_time(&self, shape: &ClusterShape) -> f64 {
        let n = shape.n_workers() as f64;
        let p = shape.n_ps as f64;
        let [t0, t1, t2] = self.theta;
        let (cpu, net) = self.scales(shape);
        match self.sync {
            SyncMode::Bsp => t0 * cpu / n + t1 + t2 * net * n / p,
            SyncMode::Asp => t0 * cpu + t1 * net * n / p + t2 / n,
        }
    }

    fn predict_time(&self, shape: &ClusterShape, total_updates: u64) -> f64 {
        let s = total_updates as f64;
        match self.sync {
            SyncMode::Bsp => s * self.iter_time(shape),
            // ASP: workers cycle independently; no saturation floor in
            // Optimus.
            SyncMode::Asp => s * self.iter_time(shape) / shape.n_workers() as f64,
        }
    }
}

/// Non-negative least squares for three parameters: ordinary LS via normal
/// equations, then clamp-and-refit for any negative component.
fn nnls3(rows: &[([f64; 3], f64)]) -> [f64; 3] {
    let mut active = [true; 3];
    loop {
        let theta = ls_subset(rows, &active);
        match theta.iter().position(|t| *t < 0.0) {
            None => return theta,
            Some(i) => {
                // Clamp the most negative active component and refit.
                let worst = theta
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| **t < 0.0)
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(i);
                active[worst] = false;
                if !active.iter().any(|a| *a) {
                    return [0.0; 3];
                }
            }
        }
    }
}

/// Least squares over the active subset of the three basis functions.
fn ls_subset(rows: &[([f64; 3], f64)], active: &[bool; 3]) -> [f64; 3] {
    let idx: Vec<usize> = (0..3).filter(|i| active[*i]).collect();
    let k = idx.len();
    // Normal equations A^T A x = A^T y over the active columns.
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (basis, y) in rows {
        for (a, &ia) in idx.iter().enumerate() {
            aty[a] += basis[ia] * y;
            for (b, &ib) in idx.iter().enumerate() {
                ata[a][b] += basis[ia] * basis[ib];
            }
        }
    }
    let x = solve(ata, aty);
    let mut theta = [0.0; 3];
    for (a, &ia) in idx.iter().enumerate() {
        theta[ia] = x[a];
    }
    theta
}

/// Gaussian elimination with partial pivoting. Singular systems fall back
/// to zeros (degenerate sample sets).
fn solve(mut a: Vec<Vec<f64>>, mut y: Vec<f64>) -> Vec<f64> {
    let n = y.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        if a[pivot][col].abs() < 1e-12 {
            return vec![0.0; n];
        }
        a.swap(col, pivot);
        y.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (cell, pivot) in rest[0][col..n].iter_mut().zip(&pivot_row[col..n]) {
                *cell -= f * pivot;
            }
            y[row] -= f * y[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = y[row];
        for (c, xc) in x.iter().enumerate().skip(row + 1) {
            acc -= a[row][c] * xc;
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;

    #[test]
    fn recovers_exact_coefficients_from_clean_samples() {
        // t(n) = 12/n + 0.5 + 0.3n
        let samples: Vec<(u32, f64)> = (1..=6)
            .map(|n| (n, 12.0 / n as f64 + 0.5 + 0.3 * n as f64))
            .collect();
        let m = OptimusModel::fit(SyncMode::Bsp, &samples);
        assert!((m.theta[0] - 12.0).abs() < 1e-6, "{:?}", m.theta);
        assert!((m.theta[1] - 0.5).abs() < 1e-6);
        assert!((m.theta[2] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn recovers_asp_coefficients_from_clean_samples() {
        // cycle(n) = 20 + 0.4n + 3/n
        let samples: Vec<(u32, f64)> = (1..=6)
            .map(|n| (n, 20.0 + 0.4 * n as f64 + 3.0 / n as f64))
            .collect();
        let m = OptimusModel::fit(SyncMode::Asp, &samples);
        assert!((m.theta[0] - 20.0).abs() < 1e-6, "{:?}", m.theta);
        assert!((m.theta[1] - 0.4).abs() < 1e-6);
        assert!((m.theta[2] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn nnls_clamps_negative_components() {
        // Pure 1/n decay: fitting the full basis on few samples can push
        // θ1/θ2 negative; NNLS must not.
        let samples: Vec<(u32, f64)> = (1..=4).map(|n| (n, 10.0 / n as f64)).collect();
        let m = OptimusModel::fit(SyncMode::Bsp, &samples);
        assert!(m.theta.iter().all(|t| *t >= 0.0), "{:?}", m.theta);
        // Still fits the data closely.
        for (n, t) in &samples {
            let shape = ClusterShape::homogeneous(default_catalog().expect("m4.xlarge"), *n, 1);
            assert!((m.iter_time(&shape) - t).abs() < 0.2, "{:?}", m.theta);
        }
    }

    #[test]
    fn underestimates_the_bottleneck_regime() {
        // Fit on the pre-knee samples of the mnist workload, then compare
        // against the ground-truth simulator at 8 workers: Optimus should
        // underpredict (Sec. 5.1's observation).
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        let w = cynthia_models::Workload::mnist_bsp();
        let model = OptimusModel::fit_from_simulation(&w, m4, &[1, 2, 3], 9);

        let mut probe = w.clone();
        probe.iterations = 300;
        let job = TrainJob {
            workload: &probe,
            cluster: ClusterSpec::homogeneous(m4, 8, 1),
            config: SimConfig::deterministic(9),
        };
        let observed = simulate(&job).iter_time.mean;
        let predicted = model.iter_time(&ClusterShape::homogeneous(m4, 8, 1));
        assert!(
            predicted < observed * 0.85,
            "Optimus should underpredict past the knee: {predicted} vs {observed}"
        );
    }

    #[test]
    fn capability_scaling_adjusts_cross_type_predictions() {
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        let m1 = cat.expect("m1.xlarge");
        let w = cynthia_models::Workload::cifar10_bsp();
        let model = OptimusModel::fit_from_simulation(&w, m4, &[1, 2, 3], 4);
        let on_m4 = model.iter_time(&ClusterShape::homogeneous(m4, 2, 1));
        let on_m1 = model.iter_time(&ClusterShape::homogeneous(m1, 2, 1));
        // m1 cores run at 0.55x, so the compute-bound prediction must be
        // substantially slower there.
        assert!(
            on_m1 > on_m4 * 1.4,
            "scaling should slow m1 predictions: {on_m4} vs {on_m1}"
        );
    }

    #[test]
    fn asp_prediction_divides_across_workers() {
        let m = OptimusModel {
            sync: SyncMode::Asp,
            theta: [20.0, 0.5, 4.0],
            samples: vec![],
            ref_core_gflops: None,
            ref_nic_mbps: None,
        };
        let cat = default_catalog();
        let shape = ClusterShape::homogeneous(cat.expect("m4.xlarge"), 5, 1);
        let cycle = 20.0 + 0.5 * 5.0 + 4.0 / 5.0;
        assert!((m.iter_time(&shape) - cycle).abs() < 1e-12);
        assert!((m.predict_time(&shape, 100) - 100.0 * cycle / 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_samples_panics() {
        OptimusModel::fit(SyncMode::Bsp, &[(1, 1.0), (2, 0.6)]);
    }
}
