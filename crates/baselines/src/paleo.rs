//! The Paleo performance model.
//!
//! Paleo predicts training time analytically from the network structure,
//! computation speed, and communication strategy: per-worker compute at
//! the platform's rated speed and parameter traffic at the full network
//! bandwidth, composed additively. It shares Cynthia's profiled inputs
//! here (the paper calibrates Paleo's computation speed from the same
//! single-node measurements) but, like Optimus, it models neither the
//! computation/communication overlap of BSP nor the PS resource
//! bottleneck — the two failure modes Fig. 6 quantifies.

use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::ProfileData;
use serde::{Deserialize, Serialize};

/// Paleo = the analytic additive, bandwidth-only model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaleoModel {
    inner: CynthiaModel,
}

impl PaleoModel {
    /// Builds Paleo from the same one-shot profile Cynthia uses.
    pub fn new(profile: ProfileData) -> Self {
        PaleoModel {
            inner: CynthiaModel {
                profile,
                overlap: false,
                bottleneck_aware: false,
            },
        }
    }

    /// The profile driving the model.
    pub fn profile(&self) -> &ProfileData {
        &self.inner.profile
    }
}

impl PerfModel for PaleoModel {
    fn name(&self) -> &str {
        "Paleo"
    }

    fn iter_time(&self, shape: &ClusterShape) -> f64 {
        self.inner.iter_time(shape)
    }

    fn predict_time(&self, shape: &ClusterShape, total_updates: u64) -> f64 {
        self.inner.predict_time(shape, total_updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;
    use cynthia_core::profiler::profile_workload;
    use cynthia_models::Workload;
    use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};

    fn shape(n: u32, n_ps: u32) -> ClusterShape {
        ClusterShape::homogeneous(default_catalog().expect("m4.xlarge"), n, n_ps)
    }

    #[test]
    fn paleo_is_additive_so_it_overestimates_balanced_bsp() {
        let cat = default_catalog();
        let w = Workload::cifar10_bsp();
        let profile = profile_workload(&w, cat.expect("m4.xlarge"), 3);
        let paleo = PaleoModel::new(profile.clone());
        let cynthia = CynthiaModel::new(profile);
        // Near the comp/comm balance point additive composition roughly
        // doubles the prediction relative to max().
        let s = shape(8, 1);
        let ratio = paleo.iter_time(&s) / cynthia.iter_time(&s);
        assert!(
            ratio > 1.5,
            "additive model should exceed overlap model near balance: {ratio}"
        );
    }

    #[test]
    fn paleo_misses_the_cpu_ingest_bottleneck() {
        // For mnist the PS CPU (not the NIC) bounds communication; Paleo's
        // bandwidth-only term under-accounts it at scale.
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        let w = Workload::mnist_bsp();
        let profile = profile_workload(&w, m4, 5);
        let paleo = PaleoModel::new(profile);

        let mut probe = w.clone();
        probe.iterations = 300;
        let job = TrainJob {
            workload: &probe,
            cluster: ClusterSpec::homogeneous(m4, 8, 1),
            config: SimConfig::deterministic(5),
        };
        let observed = simulate(&job).iter_time.mean;
        let predicted = paleo.iter_time(&shape(8, 1));
        assert!(
            predicted < observed * 0.9,
            "Paleo should underpredict the CPU-bound regime: {predicted} vs {observed}"
        );
    }

    #[test]
    fn name_and_profile_accessors() {
        let cat = default_catalog();
        let profile = profile_workload(&Workload::mnist_bsp(), cat.expect("m4.xlarge"), 1);
        let paleo = PaleoModel::new(profile.clone());
        assert_eq!(paleo.name(), "Paleo");
        assert_eq!(paleo.profile().workload_id, profile.workload_id);
    }
}
