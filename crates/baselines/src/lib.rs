//! # cynthia-baselines — Optimus and Paleo comparison models
//!
//! The paper evaluates Cynthia against two state-of-the-art DDNN
//! performance models (Sec. 5.1) and against a "modified Optimus"
//! provisioner (footnote 4: the Optimus model substituted into the same
//! cost-minimizing search, because vanilla Optimus minimizes time rather
//! than guaranteeing performance).
//!
//! * [`optimus`] — Optimus (Peng et al., EuroSys'18) fits a per-size
//!   throughput curve online from profiling samples and composes
//!   computation and communication *additively* (no overlap) with no
//!   notion of PS resource bottlenecks. Its documented failure modes —
//!   sample-quality sensitivity and extrapolation past the saturation
//!   knee — fall out of the implementation.
//! * [`paleo`] — Paleo (Qi et al., ICLR'17) predicts analytically from the
//!   model architecture and platform speeds: per-worker compute at rated
//!   FLOPS, communication at full unshared bandwidth, additive, bottleneck
//!   oblivious.
//! * [`provisioner`] — the modified-Optimus provisioner.

pub mod optimus;
pub mod paleo;
pub mod provisioner;

pub use optimus::OptimusModel;
pub use paleo::PaleoModel;
pub use provisioner::plan_with_optimus;
