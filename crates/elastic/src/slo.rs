//! SLO guard: deadline protection for faulted runs.
//!
//! The elastic scenario loop ([`crate::scenario`]) reacts to *revocations*
//! it can see coming (the market hands it a reclaim schedule). Real
//! degradation is sneakier: a straggling replacement, a degraded link, or
//! a parameter-server crash erode the progress *rate* without any single
//! obvious decision point. The SLO guard watches the observed progress
//! trajectory instead, and replans when the trajectory itself implies a
//! deadline miss.
//!
//! **Guard inequality** (docs/EQUATIONS.md): with committed progress `s(t)`
//! out of `S` total updates at observation time `t`, and the observed
//! progress rate `ρ(t)` of the current fleet (committed updates per second
//! of its tenure), the projected finish is
//!
//! ```text
//! T̂(t) = t + (S − s(t)) / ρ(t)
//! ```
//!
//! and the guard fires as soon as `T̂(t) > T_DDL · (1 + tolerance)` — the
//! Eq. (9) deadline constraint, relaxed by the tolerance band. On firing
//! it restates the remainder as a fresh Cynthia subproblem exactly as the
//! revocation replanner does: checkpoint floor `s_ckpt`, remaining updates
//! `S − s_ckpt`, remaining window `T_DDL − t − migration`, pseudo target
//! loss via Eq. (1) inversion, Theorem 4.1 band via
//! [`Replanner::rescue_width`] — then migrates to the smallest healthy
//! on-demand fleet that clears the window, and resumes from the
//! checkpoint.
//!
//! Replans are *bounded*: at most `max_replans`, separated by an
//! exponentially growing backoff, so a hopeless run converges to "ran out
//! of rescue attempts" instead of thrashing through migrations.

use cynthia_cloud::billing::static_cluster_cost;
use cynthia_cloud::{BillingMeter, Catalog};
use cynthia_core::provisioner::{plan, Goal, Plan, PlannerOptions};
use cynthia_core::{profile_workload, FittedLossModel};
use cynthia_faults::{FaultPlan, RecoveryPolicy};
use cynthia_models::Workload;
use cynthia_sim::rng::sub_seed;
use cynthia_train::{simulate_faulted, ClusterSpec, SimConfig, TrainJob, TrainingReport};
use serde::{Deserialize, Serialize};

use crate::replanner::Replanner;

/// Configuration of the deadline guard.
#[derive(Debug, Clone)]
pub struct SloGuardConfig {
    /// The user's `(deadline, target loss)` goal, as handed to Alg. 1.
    pub goal: Goal,
    /// Fractional deadline overrun tolerated before the guard fires
    /// (projection noise band). 0.05 ⇒ fire at a projected 5% overrun.
    pub tolerance: f64,
    /// Ignore projections before this much wall-clock has elapsed — early
    /// trajectories (warm-up, first checkpoint) are too noisy to act on.
    pub min_observation_secs: f64,
    /// Minimum gap between consecutive replans, seconds.
    pub replan_backoff_secs: f64,
    /// Backoff growth factor per replan taken.
    pub backoff_multiplier: f64,
    /// Hard cap on rescue migrations.
    pub max_replans: u32,
    /// Checkpoint drain + new-fleet boot latency per migration, seconds.
    /// The old fleet bills through the migration; the new one from its
    /// launch at the trigger.
    pub migration_secs: f64,
    /// Instance type used for the profiling run.
    pub baseline_type: String,
    pub planner: PlannerOptions,
    /// Master seed: profiling jitter, the faulted run, and every rescue
    /// segment derive from it. Same seed ⇒ bit-identical report.
    pub seed: u64,
}

impl SloGuardConfig {
    pub fn new(goal: Goal, seed: u64) -> Self {
        SloGuardConfig {
            goal,
            tolerance: 0.05,
            min_observation_secs: 30.0,
            replan_backoff_secs: 60.0,
            backoff_multiplier: 2.0,
            max_replans: 2,
            migration_secs: 60.0,
            baseline_type: "m4.xlarge".to_string(),
            planner: PlannerOptions::default(),
            seed,
        }
    }
}

/// One guard firing: the evidence and the decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplanEvent {
    /// Wall-clock time the guard fired, seconds since job start.
    pub at: f64,
    /// Committed global updates at the trigger.
    pub progress: u64,
    /// Checkpoint the rescue fleet resumed from (`≤ progress`).
    pub restart_from: u64,
    /// Projected finish `T̂` that violated the guard inequality.
    pub projected_finish: f64,
    /// Fleet width before and after the migration.
    pub n_before: u32,
    pub n_after: u32,
}

/// Outcome of one guarded run, with its unguarded counterfactual.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuardedReport {
    pub plan: Plan,
    pub goal: Goal,
    /// The same faults with recovery but *no* guard: realized runtime.
    pub unguarded_time: f64,
    pub unguarded_met_deadline: bool,
    /// Eq. (8) cost of the unguarded run (static fleet, list price).
    pub unguarded_cost: f64,
    /// Realized runtime with the guard active.
    pub guarded_time: f64,
    pub met_deadline: bool,
    /// Guard firings, in time order (empty when the trajectory never
    /// violated the inequality).
    pub replans: Vec<ReplanEvent>,
    /// Eq. (8) cost of everything the guarded run leased, migrations
    /// included.
    pub realized_cost: f64,
    /// Loss at the end of the final (possibly rescued) segment.
    pub final_loss: f64,
    /// Engine reports of each executed segment: the faulted original
    /// (truncated at the first firing, if any) followed by one fault-free
    /// rescue segment per replan.
    pub segments: Vec<TrainingReport>,
}

/// Runs one fault plan under the SLO guard. Returns `None` when Alg. 1
/// finds no feasible initial plan for the goal.
///
/// Deterministic in `cfg.seed`: the faulted segment uses the master seed,
/// rescue segment `k` uses `sub_seed(seed, "slo-replan", k)`.
pub fn run_guarded(
    workload: &Workload,
    catalog: &Catalog,
    faults: &FaultPlan,
    policy: &RecoveryPolicy,
    cfg: &SloGuardConfig,
) -> Option<GuardedReport> {
    let baseline_ty = catalog.expect(&cfg.baseline_type);
    let profile = profile_workload(workload, baseline_ty, cfg.seed);
    let loss = FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    };
    let the_plan = plan(&profile, &loss, catalog, &cfg.goal, &cfg.planner)?;
    let obs_guard = crate::obs::guarded_begin();
    let ty = catalog.expect(&the_plan.type_name).clone();
    let replanner = Replanner::new(profile, loss, cfg.planner);
    let total = the_plan.total_updates;
    let deadline = cfg.goal.deadline_secs;

    let run_segment = |n: u32, updates: u64, seed: u64, faults: &FaultPlan| -> TrainingReport {
        let mut configured = workload.clone();
        configured.iterations = updates;
        simulate_faulted(
            &TrainJob {
                workload: &configured,
                cluster: ClusterSpec::homogeneous(&ty, n, the_plan.n_ps),
                config: SimConfig::exact(seed),
            },
            faults,
            policy,
        )
    };

    // The unguarded counterfactual doubles as the guarded run's first
    // segment: same seed, same faults, so its trajectory up to the first
    // firing is exactly what the guard would have observed live.
    let unguarded = run_segment(the_plan.n_workers, total, cfg.seed, faults);
    let unguarded_cost = static_cluster_cost(
        ty.price_per_hour,
        the_plan.n_workers,
        ty.price_per_hour,
        the_plan.n_ps,
        unguarded.total_time,
    );

    let mut meter = BillingMeter::new();
    let mut segments: Vec<TrainingReport> = Vec::new();
    let mut replans: Vec<ReplanEvent> = Vec::new();

    let mut segment = unguarded.clone();
    let mut seg_start = 0.0_f64; // absolute time the segment began
    let mut seg_base = 0u64; // global updates done when it began
    let mut n_now = the_plan.n_workers;
    let mut fleet_leases: Vec<u64> = (0..the_plan.n_workers + the_plan.n_ps)
        .map(|_| meter.launch(0.0, ty.price_per_hour))
        .collect();
    let mut next_allowed = cfg.min_observation_secs;
    let mut backoff = cfg.replan_backoff_secs;

    let guarded_time = loop {
        // Walk the observed trajectory for a guard violation.
        let trigger = segment.progress_curve.iter().find_map(|&(t_rel, s_rel)| {
            if replans.len() >= cfg.max_replans as usize {
                return None;
            }
            let t_abs = seg_start + t_rel;
            let s_abs = seg_base + s_rel;
            if t_abs < next_allowed || s_abs == 0 || s_abs >= total {
                return None;
            }
            // Rate of the *current* fleet: segment-local, so a rescue
            // fleet is judged on its own progress, not on the wasted time
            // that triggered the migration. (For the original segment the
            // two coincide.) A fresh segment gets the observation warm-up
            // before it can be condemned.
            if t_rel < cfg.min_observation_secs || s_rel == 0 {
                return None;
            }
            let rate = s_rel as f64 / t_rel;
            let projected = t_abs + (total - s_abs) as f64 / rate;
            (projected.is_finite() && projected > deadline * (1.0 + cfg.tolerance))
                .then_some((t_abs, s_abs, projected))
        });

        let Some((t_abs, s_abs, projected)) = trigger else {
            break seg_start + segment.total_time; // trajectory stayed healthy
        };

        // Restate the remainder as a fresh Cynthia subproblem.
        let restart = policy.checkpoint_floor(s_abs);
        let remaining = total - restart;
        let window = deadline - t_abs - cfg.migration_secs;
        let Some(n_new) = (window > 0.0)
            .then(|| replanner.rescue_width(&ty, n_now, the_plan.n_ps, remaining, window))
            .flatten()
        else {
            // No width can make the deadline any more: ride the current
            // fleet to completion rather than pay for a futile migration.
            break seg_start + segment.total_time;
        };

        crate::obs::segment(obs_guard, seg_start, t_abs, n_now);
        crate::obs::migration(obs_guard, t_abs, cfg.migration_secs, n_now, n_new);
        replans.push(ReplanEvent {
            at: t_abs,
            progress: s_abs,
            restart_from: restart,
            projected_finish: projected,
            n_before: n_now,
            n_after: n_new,
        });
        segments.push(segment);

        // Old fleet drains its checkpoint through the migration; the new
        // one boots (and bills) from the trigger.
        for id in fleet_leases.drain(..) {
            meter
                .terminate(id, t_abs + cfg.migration_secs)
                .expect("fleet lease is running");
        }
        fleet_leases = (0..n_new + the_plan.n_ps)
            .map(|_| meter.launch(t_abs, ty.price_per_hour))
            .collect();

        // The rescue fleet is healthy on-demand capacity: fault-free.
        let seed_k = sub_seed(cfg.seed, "slo-replan", replans.len() as u64);
        segment = run_segment(n_new, remaining, seed_k, &FaultPlan::empty());
        seg_start = t_abs + cfg.migration_secs;
        seg_base = restart;
        n_now = n_new;
        next_allowed = t_abs + backoff;
        backoff *= cfg.backoff_multiplier;
    };

    crate::obs::segment(obs_guard, seg_start, guarded_time, n_now);
    crate::obs::guarded_end(obs_guard, guarded_time, guarded_time <= deadline);

    for id in fleet_leases.drain(..) {
        meter
            .terminate(id, guarded_time)
            .expect("fleet lease is running");
    }
    let realized_cost = meter.total_cost(guarded_time);
    let final_loss = segment.final_loss;
    segments.push(segment);

    Some(GuardedReport {
        plan: the_plan,
        goal: cfg.goal,
        unguarded_time: unguarded.total_time,
        unguarded_met_deadline: unguarded.total_time <= deadline,
        unguarded_cost,
        guarded_time,
        met_deadline: guarded_time <= deadline,
        replans,
        realized_cost,
        final_loss,
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;
    use cynthia_faults::{FaultEvent, FaultKind};

    fn goal() -> Goal {
        Goal {
            deadline_secs: 3600.0,
            target_loss: 2.2,
        }
    }

    #[test]
    fn healthy_run_never_fires() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = SloGuardConfig::new(goal(), 11);
        let r = run_guarded(
            &w,
            &catalog,
            &FaultPlan::empty(),
            &RecoveryPolicy::default(),
            &cfg,
        )
        .expect("feasible goal");
        assert!(
            r.replans.is_empty(),
            "no faults, no firings: {:?}",
            r.replans
        );
        assert_eq!(r.guarded_time, r.unguarded_time);
        assert_eq!(r.segments.len(), 1);
        assert!(
            (r.realized_cost - r.unguarded_cost).abs() < 1e-9,
            "identical runs must bill identically: {} vs {}",
            r.realized_cost,
            r.unguarded_cost
        );
    }

    #[test]
    fn guarded_runs_are_deterministic() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = SloGuardConfig::new(goal(), 23);
        let faults = FaultPlan::new(vec![FaultEvent::transient(
            FaultKind::Straggler {
                worker: 0,
                factor: 0.25,
            },
            40.0,
            10_000.0,
        )]);
        let a = run_guarded(&w, &catalog, &faults, &RecoveryPolicy::default(), &cfg).unwrap();
        let b = run_guarded(&w, &catalog, &faults, &RecoveryPolicy::default(), &cfg).unwrap();
        assert_eq!(a.guarded_time, b.guarded_time);
        assert_eq!(a.realized_cost, b.realized_cost);
        assert_eq!(a.replans, b.replans);
    }
}
