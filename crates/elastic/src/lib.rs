//! # cynthia-elastic — predictable training on transient (spot) capacity
//!
//! Cynthia's Alg. 1 provisions a *static* cluster and trusts it to
//! survive until the deadline. This crate extends the reproduction to
//! elastic fleets on revocable spot capacity, where that trust is
//! misplaced by construction:
//!
//! * [`policy`] — fleet composition and repair policies:
//!   [`RepairPolicy::OnDemandOnly`] (the paper's baseline),
//!   [`RepairPolicy::SpotWithFallback`], and [`RepairPolicy::MixedFleet`].
//! * [`replanner`] — the online [`Replanner`]: at every revocation it
//!   restates the *remaining* job (updates left, deadline left) as a
//!   fresh Cynthia provisioning problem via a pseudo-target-loss
//!   inversion of Eq. (1), re-runs the Theorem 4.1 band search
//!   (Eqs. 13–14), and picks a [`RepairAction`] — replace on spot,
//!   fall back to on-demand, or shrink the fleet.
//! * [`scenario`] — end-to-end orchestration: pre-drawn spot price
//!   traces and reclaim schedules ([`cynthia_cloud::SpotMarket`]),
//!   a predictive event loop emitting the disruption schedule, the
//!   ground-truth engine replaying it, and spot-priced billing of what
//!   actually ran. [`run_elastic`] produces an [`ElasticReport`];
//!   [`summarize`] aggregates deadline-miss probability over seeds.
//!
//! Everything is a deterministic function of one master seed: the same
//! seed yields bit-identical reclaim schedules, repair decisions,
//! timelines, and realized cost.

pub mod obs;
pub mod policy;
pub mod replanner;
pub mod scenario;
pub mod slo;

pub use policy::{Backing, RepairAction, RepairPolicy};
pub use replanner::{RepairDecision, ReplanInput, Replanner};
pub use scenario::{
    run_elastic, summarize, summarize_parallel, ElasticConfig, ElasticReport, ElasticSummary,
    TimelineEvent, TimelineKind,
};
pub use slo::{run_guarded, GuardedReport, ReplanEvent, SloGuardConfig};
