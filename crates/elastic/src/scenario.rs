//! End-to-end elastic scenarios: plan → run on a (partly) spot fleet →
//! replan at every reclaim → bill what actually ran.
//!
//! The scenario couples three deterministic machines, all driven by one
//! master seed:
//!
//! 1. the [`SpotMarket`] pre-draws a price trace and per-slot reclaim
//!    schedules for the planning horizon;
//! 2. a *predictive* event loop walks those reclaims against the Sec. 3
//!    performance model, consulting the [`Replanner`] at each one to pick
//!    a [`RepairAction`] and emitting the resulting [`Disruption`]
//!    schedule (revocations with or without rejoin) plus the lease
//!    segments each decision implies;
//! 3. the ground-truth engine ([`simulate_disrupted`]) replays that
//!    schedule in full detail, and a [`BillingMeter`] prices the lease
//!    segments — spot leases at the traced, repriced spot rate — against
//!    the realized runtime.
//!
//! The predictive loop uses the *model's* notion of progress to decide
//! when the job is over (further reclaims can no longer matter); the
//! engine's realized timing decides whether the deadline was actually
//! met. The small disagreement between the two is exactly the prediction
//! error Cynthia lives with, and is itself deterministic per seed.

use cynthia_cloud::billing::static_cluster_cost;
use cynthia_cloud::{BillingMeter, Catalog, SpotMarket, SpotMarketConfig};
use cynthia_core::provisioner::{plan, Goal, Plan, PlannerOptions};
use cynthia_core::{profile_workload, FittedLossModel};
use cynthia_models::{SyncMode, Workload};
use cynthia_train::{simulate, simulate_disrupted, ClusterSpec, Disruption, SimConfig, TrainJob};
use serde::{Deserialize, Serialize};

use crate::policy::{Backing, RepairAction, RepairPolicy};
use crate::replanner::{ReplanInput, Replanner};

/// Configuration of one elastic run.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// The user's `(deadline, target loss)` goal, as handed to Alg. 1.
    pub goal: Goal,
    pub policy: RepairPolicy,
    pub market: SpotMarketConfig,
    pub planner: PlannerOptions,
    /// Instance type used for the profiling run.
    pub baseline_type: String,
    /// Decision latency between a reclaim and the replacement launch
    /// request, seconds (replanning + control-plane round trip).
    pub replan_latency_secs: f64,
    /// Master seed: drives profiling jitter, the spot market, and the
    /// ground-truth engine. Same seed ⇒ bit-identical run.
    pub seed: u64,
}

impl ElasticConfig {
    pub fn new(goal: Goal, policy: RepairPolicy, seed: u64) -> Self {
        ElasticConfig {
            goal,
            policy,
            market: SpotMarketConfig::default(),
            planner: PlannerOptions::default(),
            baseline_type: "m4.xlarge".to_string(),
            replan_latency_secs: 5.0,
            seed,
        }
    }
}

/// One entry in the revocation/repair timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Seconds since job start.
    pub t: f64,
    /// Worker slot concerned.
    pub slot: usize,
    pub kind: TimelineKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimelineKind {
    /// The spot market reclaimed the slot's instance.
    Revoked,
    /// The replanner ordered a spot replacement, live at `rejoin_at`.
    RepairedWithSpot { rejoin_at: f64 },
    /// The replanner fell back to on-demand, live at `rejoin_at`.
    RepairedWithOnDemand { rejoin_at: f64 },
    /// The replanner retired the slot (Theorem 4.1 band still met).
    Shrunk,
}

/// What one elastic run cost and whether it met its objectives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticReport {
    pub policy: String,
    pub plan: Plan,
    pub goal: Goal,
    /// Ground-truth engine report of the disrupted run.
    pub training: cynthia_train::TrainingReport,
    /// Planner-side revocation/repair timeline, in time order. May extend
    /// past the realized end of training when the model's progress
    /// estimate lagged reality; billing clamps to the realized runtime.
    pub timeline: Vec<TimelineEvent>,
    /// Eq. (8) cost of what actually ran: spot leases at the traced spot
    /// price, on-demand leases and PS nodes at list price.
    pub realized_cost: f64,
    /// Cost of the same plan run undisrupted on all-on-demand capacity.
    pub on_demand_baseline_cost: f64,
    /// Runtime of the undisrupted all-on-demand reference run, seconds.
    pub baseline_time: f64,
    pub met_deadline: bool,
    pub met_loss: bool,
}

impl ElasticReport {
    /// Fractional saving of the realized cost over the all-on-demand
    /// baseline (negative when disruptions made the run *more* expensive).
    pub fn savings_vs_on_demand(&self) -> f64 {
        1.0 - self.realized_cost / self.on_demand_baseline_cost
    }

    pub fn shrinks(&self) -> usize {
        self.timeline
            .iter()
            .filter(|e| matches!(e.kind, TimelineKind::Shrunk))
            .count()
    }

    pub fn repairs(&self) -> usize {
        self.timeline
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TimelineKind::RepairedWithSpot { .. }
                        | TimelineKind::RepairedWithOnDemand { .. }
                )
            })
            .count()
    }

    pub fn revocations(&self) -> usize {
        self.timeline
            .iter()
            .filter(|e| matches!(e.kind, TimelineKind::Revoked))
            .count()
    }
}

/// Aggregate of [`run_elastic`] over several master seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticSummary {
    pub policy: String,
    pub runs: usize,
    /// Fraction of seeds whose realized runtime missed the deadline.
    pub deadline_miss_rate: f64,
    pub mean_realized_cost: f64,
    pub mean_on_demand_cost: f64,
    pub mean_revocations: f64,
    pub mean_repairs: f64,
    pub mean_shrinks: f64,
}

/// One worker slot's lease and reclaim bookkeeping in the predictive loop.
struct Slot {
    backing: Backing,
    /// Pre-drawn reclaim times; consumed only while the slot is
    /// spot-backed and live.
    reclaims: Vec<f64>,
    /// `(start, end, backing)` lease segments; `end = None` while open.
    leases: Vec<(f64, Option<f64>, Backing)>,
    /// Replacement boot completes at this time.
    absent_until: Option<f64>,
    departed: bool,
}

impl Slot {
    fn open_lease_start(&self) -> f64 {
        self.leases.last().expect("slot always has a lease").0
    }

    fn close_lease(&mut self, t: f64) {
        let lease = self.leases.last_mut().expect("slot always has a lease");
        debug_assert!(lease.1.is_none(), "closing a closed lease");
        lease.1 = Some(t);
    }
}

enum PendingEvent {
    Rejoin,
    Reclaim,
}

/// Runs one elastic scenario end to end. Returns `None` when Alg. 1
/// finds no feasible plan for the goal.
pub fn run_elastic(
    workload: &Workload,
    catalog: &Catalog,
    cfg: &ElasticConfig,
) -> Option<ElasticReport> {
    let baseline_ty = catalog.expect(&cfg.baseline_type);
    let profile = profile_workload(workload, baseline_ty, cfg.seed);
    let loss = FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    };
    let the_plan = plan(&profile, &loss, catalog, &cfg.goal, &cfg.planner)?;
    let ty = catalog.expect(&the_plan.type_name).clone();
    let n = the_plan.n_workers as usize;
    let replanner = Replanner::new(profile, loss, cfg.planner);

    let mut configured = workload.clone();
    configured.iterations = the_plan.total_updates;
    let sim = SimConfig::exact(cfg.seed);
    let cluster = ClusterSpec::homogeneous(&ty, the_plan.n_workers, the_plan.n_ps);

    // Undisrupted all-on-demand reference: what the static plan costs.
    let baseline = simulate(&TrainJob {
        workload: &configured,
        cluster: cluster.clone(),
        config: sim,
    });
    let on_demand_baseline_cost = static_cluster_cost(
        ty.price_per_hour,
        the_plan.n_workers,
        ty.price_per_hour,
        the_plan.n_ps,
        baseline.total_time,
    );

    // Pre-draw the market for a horizon generously past any plausible end.
    let market = SpotMarket::new(cfg.market, cfg.seed);
    let horizon = (cfg.goal.deadline_secs.max(baseline.total_time) * 4.0).max(3600.0);
    let trace = market.price_trace(&ty, horizon);

    let mut slots: Vec<Slot> = (0..n)
        .map(|j| {
            let backing = cfg.policy.initial_backing(j, n);
            let reclaims = match backing {
                Backing::Spot => market.revocation_times(&ty.name, j as u64, horizon),
                Backing::OnDemand => Vec::new(),
            };
            Slot {
                backing,
                reclaims,
                leases: vec![(0.0, None, backing)],
                absent_until: None,
                departed: false,
            }
        })
        .collect();

    // Predictive walk: advance model progress between reclaim/rejoin
    // events, replanning at each reclaim. The per-width progress rate
    // comes from the same Sec. 3 model Alg. 1 planned with.
    let repair_latency = cfg.replan_latency_secs + ty.launch_secs;
    let total = the_plan.total_updates as f64;
    let rate = |n_live: u32| -> f64 {
        total
            / replanner
                .predicted_remaining_secs(&ty, n_live, the_plan.n_ps, the_plan.total_updates)
                .max(f64::MIN_POSITIVE)
    };
    let mut t = 0.0_f64;
    let mut done = 0.0_f64;
    let mut disruptions: Vec<Disruption> = Vec::new();
    let mut timeline: Vec<TimelineEvent> = Vec::new();
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 100_000, "elastic event loop failed to converge");

        let present = slots
            .iter()
            .filter(|s| !s.departed && s.absent_until.is_none())
            .count() as u32;
        let any_absent = slots.iter().any(|s| s.absent_until.is_some());
        // BSP makes no global progress while a barrier member is absent;
        // ASP degrades to the surviving width.
        let r = if workload.sync == SyncMode::Bsp && any_absent {
            0.0
        } else {
            rate(present)
        };

        // Earliest pending event; rejoinders before reclaims on ties so a
        // back-to-back reclaim sees the slot live again.
        let mut next: Option<(f64, u8, usize, PendingEvent)> = None;
        for (j, s) in slots.iter().enumerate() {
            if s.departed {
                continue;
            }
            let cand = if let Some(ru) = s.absent_until {
                Some((ru, 0u8, j, PendingEvent::Rejoin))
            } else if s.backing == Backing::Spot {
                s.reclaims
                    .iter()
                    .copied()
                    .find(|&rt| rt > s.open_lease_start() && rt > t)
                    .map(|rt| (rt, 1u8, j, PendingEvent::Reclaim))
            } else {
                None
            };
            if let Some(c) = cand {
                let better = match &next {
                    None => true,
                    Some(b) => (c.0, c.1, c.2) < (b.0, b.1, b.2),
                };
                if better {
                    next = Some(c);
                }
            }
        }

        let Some((te, _, j, ev)) = next else {
            break; // no further market events can reach this run
        };
        if r > 0.0 && done + r * (te - t) >= total {
            break; // the model says training finishes before the event
        }
        done += r * (te - t);
        t = te;
        if t > horizon {
            break;
        }

        match ev {
            PendingEvent::Rejoin => {
                slots[j].absent_until = None;
            }
            PendingEvent::Reclaim => {
                slots[j].close_lease(t);
                timeline.push(TimelineEvent {
                    t,
                    slot: j,
                    kind: TimelineKind::Revoked,
                });
                let input = ReplanInput {
                    now: t,
                    deadline_secs: cfg.goal.deadline_secs,
                    updates_done: (done.floor() as u64).min(the_plan.total_updates),
                    total_updates: the_plan.total_updates,
                    ty: &ty,
                    n_slots: present,
                    n_ps: the_plan.n_ps,
                    repair_latency_secs: repair_latency,
                };
                let decision = replanner.decide(&cfg.policy, &input);
                match decision.action {
                    RepairAction::Shrink => {
                        slots[j].departed = true;
                        disruptions.push(Disruption {
                            worker: j,
                            at: t,
                            rejoin_at: None,
                        });
                        timeline.push(TimelineEvent {
                            t,
                            slot: j,
                            kind: TimelineKind::Shrunk,
                        });
                    }
                    RepairAction::ReplaceWithSpot | RepairAction::ReplaceWithOnDemand => {
                        let backing = if decision.action == RepairAction::ReplaceWithSpot {
                            Backing::Spot
                        } else {
                            Backing::OnDemand
                        };
                        // Billing starts when the replacement launches
                        // (boot time is paid for); training resumes when
                        // it has booted.
                        let lease_start = t + cfg.replan_latency_secs;
                        let rejoin_at = t + repair_latency;
                        slots[j].backing = backing;
                        slots[j].leases.push((lease_start, None, backing));
                        slots[j].absent_until = Some(rejoin_at);
                        disruptions.push(Disruption {
                            worker: j,
                            at: t,
                            rejoin_at: Some(rejoin_at),
                        });
                        timeline.push(TimelineEvent {
                            t,
                            slot: j,
                            kind: if backing == Backing::Spot {
                                TimelineKind::RepairedWithSpot { rejoin_at }
                            } else {
                                TimelineKind::RepairedWithOnDemand { rejoin_at }
                            },
                        });
                    }
                }
            }
        }
    }

    // Ground truth: the engine replays the disruption schedule in full
    // detail (jitter, barrier stalls, parameter re-pulls on rejoin).
    let training = simulate_disrupted(
        &TrainJob {
            workload: &configured,
            cluster,
            config: sim,
        },
        &disruptions,
    );
    let t_end = training.total_time;

    // Bill the lease segments against the realized runtime. Spot leases
    // open at the traced price and are repriced at every market epoch the
    // trace changes within the lease.
    let mut meter = BillingMeter::new();
    for slot in &slots {
        for &(start, end, backing) in &slot.leases {
            let end = end.unwrap_or(t_end).min(t_end);
            if start >= end {
                continue; // decided after the job already finished
            }
            match backing {
                Backing::OnDemand => {
                    let id = meter.launch(start, ty.price_per_hour);
                    meter
                        .terminate(id, end)
                        .expect("lease segments are well-formed");
                }
                Backing::Spot => {
                    let id = meter.launch(start, trace.price_at(start));
                    for (tc, price) in trace.changes_in(start, end) {
                        meter
                            .reprice(id, tc, price)
                            .expect("repricing a running spot lease");
                    }
                    meter
                        .terminate(id, end)
                        .expect("lease segments are well-formed");
                }
            }
        }
    }
    for _ in 0..the_plan.n_ps {
        let id = meter.launch(0.0, ty.price_per_hour);
        meter
            .terminate(id, t_end)
            .expect("PS lease spans the whole run");
    }
    let realized_cost = meter.total_cost(t_end);

    let met_deadline = t_end <= cfg.goal.deadline_secs;
    // Same tolerance the framework's ExecutionReport uses.
    let met_loss = training.final_loss <= cfg.goal.target_loss * 1.05;
    Some(ElasticReport {
        policy: cfg.policy.name(),
        plan: the_plan,
        goal: cfg.goal,
        training,
        timeline,
        realized_cost,
        on_demand_baseline_cost,
        baseline_time: baseline.total_time,
        met_deadline,
        met_loss,
    })
}

/// Runs the same scenario under each master seed and aggregates the
/// deadline-miss probability and mean costs.
pub fn summarize(
    workload: &Workload,
    catalog: &Catalog,
    cfg: &ElasticConfig,
    seeds: &[u64],
) -> Option<ElasticSummary> {
    assert!(!seeds.is_empty(), "summarize needs at least one seed");
    let mut reports = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut c = cfg.clone();
        c.seed = seed;
        reports.push(run_elastic(workload, catalog, &c)?);
    }
    Some(aggregate(cfg, &reports))
}

/// [`summarize`], with the per-seed scenarios fanned out across threads.
/// Each seed owns its RNGs end to end (market, engine, profiling jitter),
/// so the per-seed reports — and therefore the aggregate — are
/// bit-identical to the serial [`summarize`]; see
/// `tests/parallel_equivalence.rs`.
pub fn summarize_parallel(
    workload: &Workload,
    catalog: &Catalog,
    cfg: &ElasticConfig,
    seeds: &[u64],
) -> Option<ElasticSummary> {
    use rayon::prelude::*;
    assert!(!seeds.is_empty(), "summarize needs at least one seed");
    let reports: Option<Vec<ElasticReport>> = seeds
        .par_iter()
        .map(|&seed| {
            let mut c = cfg.clone();
            c.seed = seed;
            run_elastic(workload, catalog, &c)
        })
        .collect();
    reports.map(|r| aggregate(cfg, &r))
}

/// The summary statistics both [`summarize`] variants share; reports must
/// be in seed order so the floating-point folds match exactly.
fn aggregate(cfg: &ElasticConfig, reports: &[ElasticReport]) -> ElasticSummary {
    let runs = reports.len();
    let misses = reports.iter().filter(|r| !r.met_deadline).count();
    let mean = |f: &dyn Fn(&ElasticReport) -> f64| reports.iter().map(f).sum::<f64>() / runs as f64;
    ElasticSummary {
        policy: cfg.policy.name(),
        runs,
        deadline_miss_rate: misses as f64 / runs as f64,
        mean_realized_cost: mean(&|r| r.realized_cost),
        mean_on_demand_cost: mean(&|r| r.on_demand_baseline_cost),
        mean_revocations: mean(&|r| r.training.revocations as f64),
        mean_repairs: mean(&|r| r.training.repairs as f64),
        mean_shrinks: mean(&|r| r.shrinks() as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::{default_catalog, RevocationModel};

    fn cifar_goal() -> Goal {
        // cifar-10/BSP to loss 2.2 ≈ 400 iterations; a 1-hour deadline
        // leaves room for a couple of 95 s repairs.
        Goal {
            deadline_secs: 3600.0,
            target_loss: 2.2,
        }
    }

    fn config(policy: RepairPolicy, rate_per_hour: f64, seed: u64) -> ElasticConfig {
        let mut cfg = ElasticConfig::new(cifar_goal(), policy, seed);
        cfg.market.revocations = RevocationModel::Exponential { rate_per_hour };
        cfg
    }

    #[test]
    fn on_demand_only_matches_static_baseline() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = config(RepairPolicy::OnDemandOnly, 8.0, 7);
        let report = run_elastic(&w, &catalog, &cfg).expect("feasible goal");
        // No spot capacity anywhere: no revocations, and the realized
        // cost is exactly the static Eq. (8) cost of the same fleet.
        assert_eq!(report.training.revocations, 0);
        assert!(report.timeline.is_empty());
        assert!((report.realized_cost - report.on_demand_baseline_cost).abs() < 1e-9);
        assert!(report.met_loss);
    }

    #[test]
    fn quiet_market_spot_fleet_is_strictly_cheaper() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = config(RepairPolicy::spot_with_fallback(), 0.0, 7);
        let report = run_elastic(&w, &catalog, &cfg).expect("feasible goal");
        assert_eq!(report.training.revocations, 0);
        assert!(
            report.realized_cost < report.on_demand_baseline_cost,
            "spot fleet with no revocations must undercut on-demand: {} vs {}",
            report.realized_cost,
            report.on_demand_baseline_cost
        );
        assert!(report.met_deadline);
        assert!(report.met_loss);
    }

    #[test]
    fn revocations_are_repaired_and_job_completes() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        // High reclaim rate so the ~700 s run sees revocations.
        let cfg = config(RepairPolicy::spot_with_fallback(), 20.0, 11);
        let report = run_elastic(&w, &catalog, &cfg).expect("feasible goal");
        assert!(
            report.revocations() > 0,
            "a 20/hour reclaim rate should hit a ~15-minute run"
        );
        assert_eq!(
            report.revocations(),
            report.repairs() + report.shrinks(),
            "every reclaim gets exactly one decision"
        );
        assert!(report.met_loss, "training still converges under repair");
    }

    #[test]
    fn mixed_fleet_reclaims_only_spot_slots() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = config(RepairPolicy::mixed(0.5), 20.0, 13);
        let report = run_elastic(&w, &catalog, &cfg).expect("feasible goal");
        let n = report.plan.n_workers as usize;
        let first_spot_slot = n - (0.5 * n as f64).round() as usize;
        for e in &report.timeline {
            if matches!(e.kind, TimelineKind::Revoked) {
                assert!(
                    e.slot >= first_spot_slot,
                    "on-demand anchor slot {} was reclaimed",
                    e.slot
                );
            }
        }
    }

    #[test]
    fn summary_aggregates_over_seeds() {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = config(RepairPolicy::spot_with_fallback(), 4.0, 0);
        let summary = summarize(&w, &catalog, &cfg, &[3, 5, 9]).expect("feasible goal");
        assert_eq!(summary.runs, 3);
        assert!((0.0..=1.0).contains(&summary.deadline_miss_rate));
        assert!(summary.mean_realized_cost > 0.0);
        assert!(summary.mean_on_demand_cost > 0.0);
    }
}
