//! Instrumentation hooks for the SLO guard and replanner (feature `obs`).
//!
//! With the feature off these are empty inline bodies. With it on, each
//! guarded run opens its own virtual-clock span track (`slo#<id>`, since
//! every guarded clock restarts at zero) holding a `slo.guarded_run` root
//! with `slo.segment` / `slo.migration` children at the segment
//! boundaries the guard actually chose, and bumps counters
//! for replans, deadline misses, migration time, and rescue-width
//! searches. Hooks never influence the guard's decisions.

#[cfg(feature = "obs")]
mod real {
    use cynthia_obs::{metrics, tracer, Counter, FloatCounter};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Each guarded run gets its own span track (`slo#<id>`): guarded
    /// virtual clocks restart at zero per run, so spans of different runs
    /// must not share a timeline.
    static GUARD_SEQ: AtomicU64 = AtomicU64::new(0);

    fn track(guard: u64) -> String {
        format!("slo#{guard}")
    }

    fn guarded_runs() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_slo_guarded_runs_total",
                "SLO-guarded training runs",
            )
        })
    }

    fn replans() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_slo_replans_total",
                "Guard firings that migrated to a rescue fleet",
            )
        })
    }

    fn misses() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_slo_deadline_misses_total",
                "Guarded runs that still missed the deadline",
            )
        })
    }

    fn migration_secs() -> &'static FloatCounter {
        static C: OnceLock<FloatCounter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().float_counter(
                "cynthia_slo_migration_seconds_total",
                "Virtual seconds spent migrating between fleets",
            )
        })
    }

    fn rescues() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_elastic_rescue_searches_total",
                "Rescue-width band searches run by the replanner",
            )
        })
    }

    /// Marks the start of a guarded run (virtual time zero). Returns the
    /// run's track id (0 while spans are off) for the other span hooks.
    pub fn guarded_begin() -> u64 {
        if cynthia_obs::enabled() {
            guarded_runs().inc();
        }
        if !cynthia_obs::span_recording() {
            return 0;
        }
        let guard = GUARD_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        tracer().begin_at(&track(guard), "slo.guarded_run", 0.0);
        guard
    }

    /// Records one observed segment `[start, end]` on `n` workers.
    pub fn segment(guard: u64, start: f64, end: f64, n: u32) {
        if guard != 0 && cynthia_obs::span_recording() {
            tracer().complete(
                &track(guard),
                "slo.segment",
                start,
                end,
                &[("n_workers", n as f64)],
            );
        }
    }

    /// Records a guard firing: the migration window and the fleet resize.
    pub fn migration(guard: u64, at: f64, secs: f64, n_before: u32, n_after: u32) {
        if !cynthia_obs::enabled() {
            return;
        }
        replans().inc();
        migration_secs().add(secs);
        if guard != 0 && cynthia_obs::span_recording() {
            tracer().complete(
                &track(guard),
                "slo.migration",
                at,
                at + secs,
                &[("n_before", n_before as f64), ("n_after", n_after as f64)],
            );
        }
    }

    /// Closes the guarded-run span and records the deadline outcome.
    pub fn guarded_end(guard: u64, t: f64, met_deadline: bool) {
        if cynthia_obs::enabled() && !met_deadline {
            misses().inc();
        }
        if guard != 0 && cynthia_obs::span_recording() {
            tracer().end_at(
                &track(guard),
                t,
                &[("met_deadline", f64::from(u8::from(met_deadline)))],
            );
        }
    }

    /// Records one rescue-width band search.
    #[inline]
    pub fn rescue_search() {
        if cynthia_obs::enabled() {
            rescues().inc();
        }
    }
}

#[cfg(feature = "obs")]
pub use real::*;

/// No-op hook bodies compiled when the `obs` feature is off.
#[cfg(not(feature = "obs"))]
mod stub {
    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn guarded_begin() -> u64 {
        0
    }

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn segment(_guard: u64, _start: f64, _end: f64, _n: u32) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn migration(_guard: u64, _at: f64, _secs: f64, _n_before: u32, _n_after: u32) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn guarded_end(_guard: u64, _t: f64, _met_deadline: bool) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn rescue_search() {}
}

#[cfg(not(feature = "obs"))]
pub use stub::*;
