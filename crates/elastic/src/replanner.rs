//! Online replanning: re-running the Theorem 4.1 band search mid-flight.
//!
//! When a spot worker is reclaimed at time `t`, the job is no longer the
//! one Alg. 1 planned for: some updates are already done, some deadline is
//! already spent, and the fleet is one worker short. The [`Replanner`]
//! restates the *remainder* as a fresh Cynthia provisioning problem —
//! "reach `total − done` more updates in `deadline − t` seconds" — and
//! reuses the paper's own machinery (Eq. (1) inversion, Theorem 4.1 worker
//! bounds from Eqs. (13)–(14), the Sec. 3 performance model) to decide
//! whether the slot is worth repairing at all, and on what capacity.
//!
//! The remaining-update count is folded back into a *pseudo target loss*
//! `l*` such that inverting Eq. (1) at `l*` yields exactly the remaining
//! updates: `l* = β0·stale/rem + β1` (stale = 1 for BSP, √n for ASP). That
//! keeps `worker_bounds` — written in terms of `(deadline, loss)` goals —
//! applicable verbatim to mid-run state.

use cynthia_cloud::InstanceType;
use cynthia_core::provisioner::{worker_bounds, EvalCache, Goal, PlannerOptions};
use cynthia_core::{CynthiaModel, FittedLossModel, ProfileData};
use cynthia_models::SyncMode;
use serde::{Deserialize, Serialize};

use crate::policy::{RepairAction, RepairPolicy};

/// Safety factor applied to the predicted remaining time before the
/// replanner is allowed to shrink: shrinking is irreversible (the engine
/// cannot re-grow), so it must clear the deadline with margin.
const SHRINK_MARGIN: f64 = 1.25;

/// Mid-run fleet state handed to [`Replanner::decide`] at a revocation.
#[derive(Debug, Clone, Copy)]
pub struct ReplanInput<'a> {
    /// Wall-clock time of the revocation, seconds since job start.
    pub now: f64,
    /// The original goal's deadline, seconds since job start.
    pub deadline_secs: f64,
    /// Global updates committed so far.
    pub updates_done: u64,
    /// Global updates the plan budgets in total.
    pub total_updates: u64,
    /// Instance type the fleet runs on.
    pub ty: &'a InstanceType,
    /// Worker slots alive immediately *before* the revocation (the
    /// reclaimed slot included).
    pub n_slots: u32,
    /// Parameter-server count (fixed; PS nodes stay on-demand).
    pub n_ps: u32,
    /// Decision latency + instance launch time for a replacement, secs.
    pub repair_latency_secs: f64,
}

/// What the replanner decided, with the Theorem 4.1 evidence behind it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairDecision {
    pub action: RepairAction,
    /// Pseudo target loss `l*` encoding the remaining update count.
    pub pseudo_target_loss: f64,
    /// Eq. (13)/(14) lower worker bound for the remaining subproblem
    /// (`u32::MAX` when no worker count can meet the remaining goal).
    pub n_lower: u32,
    /// Model-predicted time to finish the remainder after the chosen
    /// action takes effect, seconds.
    pub predicted_remaining_secs: f64,
    /// Deadline slack left after that prediction, seconds (negative
    /// when the deadline is already forecast to be missed).
    pub slack_secs: f64,
}

/// Re-runs the band search of Theorem 4.1 against remaining work and
/// remaining deadline at each revocation or price-change epoch.
pub struct Replanner {
    profile: ProfileData,
    loss: FittedLossModel,
    model: CynthiaModel,
    options: PlannerOptions,
    /// Memoized Sec. 3 model evaluations: the scenario event loop asks for
    /// the same `(type, width, ps, updates)` points at every market event,
    /// and exact memoization keeps replay bit-identical.
    cache: EvalCache,
}

impl Replanner {
    pub fn new(profile: ProfileData, loss: FittedLossModel, options: PlannerOptions) -> Self {
        let model = CynthiaModel::new(profile.clone());
        Replanner {
            profile,
            loss,
            model,
            options,
            cache: EvalCache::new(),
        }
    }

    /// Cache statistics `(hits, misses)` of the memoized model evaluations.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// The pseudo target loss `l*` whose Eq. (1) inversion equals
    /// `remaining_updates` at the given fleet width.
    pub fn pseudo_target_loss(&self, remaining_updates: u64, n_workers: u32) -> f64 {
        assert!(remaining_updates > 0, "no remaining work to plan for");
        let stale = match self.loss.sync {
            SyncMode::Bsp => 1.0,
            SyncMode::Asp => (n_workers.max(1) as f64).sqrt(),
        };
        self.loss.beta0 * stale / remaining_updates as f64 + self.loss.beta1
    }

    /// Model-predicted seconds to run `remaining_updates` on `n` workers.
    pub fn predicted_remaining_secs(
        &self,
        ty: &InstanceType,
        n: u32,
        n_ps: u32,
        remaining_updates: u64,
    ) -> f64 {
        self.cache
            .predict_time(&self.model, ty, n.max(1), n_ps, remaining_updates)
    }

    /// The smallest fleet width that can still rescue a failing run:
    /// inside the Theorem 4.1 band of the remaining subproblem *and*
    /// predicted by the Sec. 3 model to clear `window_secs` with the
    /// planner's headroom. `None` when no width in the band can — the
    /// deadline is unsalvageable on this instance type.
    pub fn rescue_width(
        &self,
        ty: &InstanceType,
        n_now: u32,
        n_ps: u32,
        remaining_updates: u64,
        window_secs: f64,
    ) -> Option<u32> {
        if remaining_updates == 0 {
            return Some(n_now.max(1));
        }
        crate::obs::rescue_search();
        let l_star = self.pseudo_target_loss(remaining_updates, n_now.max(1));
        let goal = Goal {
            deadline_secs: window_secs.max(f64::MIN_POSITIVE),
            target_loss: l_star,
        };
        let bounds = worker_bounds(&self.profile, &self.loss, ty, &goal)?;
        let effective = window_secs * self.options.headroom;
        (bounds.n_lower.max(1)..=bounds.n_upper.max(bounds.n_lower.max(1)))
            .find(|&n| self.predicted_remaining_secs(ty, n, n_ps, remaining_updates) <= effective)
    }

    /// Decide what to do about one reclaimed worker slot.
    ///
    /// Order of preference: **shrink** when the surviving fleet sits
    /// inside the remaining subproblem's Theorem 4.1 band and clears the
    /// deadline with `SHRINK_MARGIN`; otherwise **repair**, on spot
    /// while post-repair slack exceeds the policy's fallback threshold,
    /// on-demand once it does not.
    pub fn decide(&self, policy: &RepairPolicy, input: &ReplanInput<'_>) -> RepairDecision {
        let rem = input.total_updates.saturating_sub(input.updates_done);
        let n_after = input.n_slots.saturating_sub(1);
        if rem == 0 {
            // Nothing left to do; a replacement could never pay for itself.
            return RepairDecision {
                action: RepairAction::Shrink,
                pseudo_target_loss: self.loss.beta1,
                n_lower: 0,
                predicted_remaining_secs: 0.0,
                slack_secs: input.deadline_secs - input.now,
            };
        }

        let window = (input.deadline_secs - input.now).max(f64::MIN_POSITIVE);
        // Plan the remainder against the headroom-discounted window, as
        // Alg. 1 does for the full job.
        let effective_window = window * self.options.headroom;
        let l_star = self.pseudo_target_loss(rem, input.n_slots);

        // Theorem 4.1 band for the remaining subproblem. The band's
        // deadline excludes the repair latency so that a repaired fleet —
        // which only resumes after the replacement boots — is judged on
        // the time it actually has.
        let goal = Goal {
            deadline_secs: (effective_window - input.repair_latency_secs).max(f64::MIN_POSITIVE),
            target_loss: l_star,
        };
        let n_lower = worker_bounds(&self.profile, &self.loss, input.ty, &goal)
            .map(|b| b.n_lower)
            .unwrap_or(u32::MAX);

        // Shrink: feasible iff the survivors alone clear the remaining
        // deadline (no repair latency to subtract — they keep running).
        if n_after >= 1 && n_after >= n_lower {
            let t_shrunk = self.predicted_remaining_secs(input.ty, n_after, input.n_ps, rem);
            if t_shrunk * SHRINK_MARGIN <= effective_window {
                return RepairDecision {
                    action: RepairAction::Shrink,
                    pseudo_target_loss: l_star,
                    n_lower,
                    predicted_remaining_secs: t_shrunk,
                    slack_secs: window - t_shrunk,
                };
            }
        }

        // Repair: restore the planned width after the repair latency.
        let t_repaired = input.repair_latency_secs
            + self.predicted_remaining_secs(input.ty, input.n_slots, input.n_ps, rem);
        let slack = window - t_repaired;
        let action = if matches!(policy, RepairPolicy::OnDemandOnly) {
            RepairAction::ReplaceWithOnDemand
        } else if slack > policy.fallback_slack_factor() * input.repair_latency_secs {
            RepairAction::ReplaceWithSpot
        } else {
            RepairAction::ReplaceWithOnDemand
        };
        RepairDecision {
            action,
            pseudo_target_loss: l_star,
            n_lower,
            predicted_remaining_secs: t_repaired,
            slack_secs: slack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;
    use cynthia_core::profile_workload;
    use cynthia_models::Workload;

    fn replanner(w: &Workload) -> (Replanner, InstanceType) {
        let catalog = default_catalog();
        let ty = catalog.expect("m4.xlarge").clone();
        let profile = profile_workload(w, &ty, 17);
        let loss = FittedLossModel {
            sync: w.sync,
            beta0: w.convergence.beta0,
            beta1: w.convergence.beta1,
            r_squared: 1.0,
        };
        (Replanner::new(profile, loss, PlannerOptions::default()), ty)
    }

    fn input<'a>(
        ty: &'a InstanceType,
        now: f64,
        deadline: f64,
        done: u64,
        total: u64,
        n: u32,
    ) -> ReplanInput<'a> {
        ReplanInput {
            now,
            deadline_secs: deadline,
            updates_done: done,
            total_updates: total,
            ty,
            n_slots: n,
            n_ps: 1,
            repair_latency_secs: 100.0,
        }
    }

    #[test]
    fn pseudo_target_inverts_to_remaining_updates() {
        let w = Workload::cifar10_bsp();
        let (rp, _) = replanner(&w);
        for rem in [1u64, 7, 133, 4096] {
            let l = rp.pseudo_target_loss(rem, 4);
            let back = rp.loss.bsp_iterations_for(l).unwrap();
            // ceil() of an exact quotient may round one update up.
            assert!(
                back == rem || back == rem + 1,
                "rem={rem} inverted to {back}"
            );
        }
    }

    #[test]
    fn pseudo_target_inverts_for_asp() {
        let w = Workload::vgg19_asp();
        let (rp, _) = replanner(&w);
        for n in [2u32, 4, 9] {
            let rem = 900u64;
            let l = rp.pseudo_target_loss(rem, n);
            let back = rp.loss.total_updates_for(l, n).unwrap();
            assert!(
                back == rem || back == rem + 1,
                "n={n}: rem={rem} inverted to {back}"
            );
        }
    }

    /// A deadline just too tight for the two survivors to finish alone
    /// (shrink needs `t_shrunk · 1.25 ≤ window · headroom`, headroom 0.9),
    /// forcing the replanner into the repair branch.
    fn repair_forcing_deadline(rp: &Replanner, ty: &InstanceType, total: u64) -> f64 {
        rp.predicted_remaining_secs(ty, 2, 1, total) * 1.25 / 0.9 * 0.99
    }

    #[test]
    fn ample_slack_repairs_with_spot() {
        let w = Workload::cifar10_bsp();
        let (rp, ty) = replanner(&w);
        // Shrink infeasible, but restoring the third worker leaves ample
        // slack: gamble on spot.
        let deadline = repair_forcing_deadline(&rp, &ty, 400);
        let d = rp.decide(
            &RepairPolicy::spot_with_fallback(),
            &input(&ty, 0.0, deadline, 0, 400, 3),
        );
        assert!(
            d.slack_secs > 2.0 * 100.0,
            "scenario must leave post-repair slack above the fallback threshold"
        );
        assert_eq!(d.action, RepairAction::ReplaceWithSpot);
    }

    #[test]
    fn tight_deadline_falls_back_to_on_demand() {
        let w = Workload::cifar10_bsp();
        let (rp, ty) = replanner(&w);
        // Mid-run with little slack left: the policy must not gamble on
        // another revocation.
        let total = 400u64;
        let t3 = rp.predicted_remaining_secs(&ty, 3, 1, total);
        let deadline = t3 * 1.3; // feasible for 3 workers, but tight
        let d = rp.decide(
            &RepairPolicy::spot_with_fallback(),
            &input(&ty, deadline * 0.5, deadline, total / 2, total, 3),
        );
        assert_eq!(d.action, RepairAction::ReplaceWithOnDemand);
    }

    #[test]
    fn near_finish_shrinks() {
        let w = Workload::cifar10_bsp();
        let (rp, ty) = replanner(&w);
        // 98% done with most of the deadline left: survivors finish alone.
        let d = rp.decide(
            &RepairPolicy::spot_with_fallback(),
            &input(&ty, 500.0, 20_000.0, 392, 400, 3),
        );
        assert_eq!(d.action, RepairAction::Shrink);
        assert!(d.predicted_remaining_secs < 20_000.0 - 500.0);
    }

    #[test]
    fn no_remaining_work_always_shrinks() {
        let w = Workload::cifar10_bsp();
        let (rp, ty) = replanner(&w);
        let d = rp.decide(
            &RepairPolicy::OnDemandOnly,
            &input(&ty, 900.0, 1800.0, 400, 400, 3),
        );
        assert_eq!(d.action, RepairAction::Shrink);
        assert_eq!(d.predicted_remaining_secs, 0.0);
    }

    #[test]
    fn on_demand_only_never_picks_spot() {
        let w = Workload::cifar10_bsp();
        let (rp, ty) = replanner(&w);
        let deadline = repair_forcing_deadline(&rp, &ty, 400);
        let d = rp.decide(
            &RepairPolicy::OnDemandOnly,
            &input(&ty, 0.0, deadline, 0, 400, 3),
        );
        assert_eq!(d.action, RepairAction::ReplaceWithOnDemand);
    }

    #[test]
    fn last_surviving_worker_is_never_shrunk_away() {
        let w = Workload::cifar10_bsp();
        let (rp, ty) = replanner(&w);
        let d = rp.decide(
            &RepairPolicy::spot_with_fallback(),
            &input(&ty, 60.0, 200_000.0, 399, 400, 1),
        );
        assert_ne!(d.action, RepairAction::Shrink);
    }
}
