//! Repair policies for elastic fleets.
//!
//! Cynthia's provisioning (Alg. 1) is static: it picks one cluster and
//! assumes it survives to the deadline. On transient (spot) capacity that
//! assumption breaks — instances are reclaimed mid-run. A [`RepairPolicy`]
//! decides, at provisioning time, which worker slots ride on spot capacity,
//! and constrains which [`RepairAction`]s the online replanner may take
//! when a slot is reclaimed.

use serde::{Deserialize, Serialize};

/// How a worker slot is backed by the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backing {
    /// On-demand capacity: billed at the list price, never reclaimed.
    OnDemand,
    /// Spot capacity: billed at the (lower, time-varying) spot price, and
    /// subject to the market's revocation process.
    Spot,
}

/// What the replanner did about a reclaimed worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairAction {
    /// Launch a replacement on spot capacity (cheap, but may itself be
    /// reclaimed later).
    ReplaceWithSpot,
    /// Launch a replacement on on-demand capacity (reliable, full price).
    ReplaceWithOnDemand,
    /// Retire the slot: the surviving fleet still meets the goal per the
    /// Theorem 4.1 band, so paying for a replacement is waste.
    Shrink,
}

/// Fleet composition and repair behaviour under revocations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// Every instance on-demand — the paper's baseline. Nothing is ever
    /// reclaimed, so the replanner never runs.
    OnDemandOnly,
    /// Every worker on spot. Each revocation is replanned: replace with
    /// spot while deadline slack remains, fall back to on-demand when it
    /// runs out, shrink when the surviving fleet already suffices.
    SpotWithFallback {
        /// Replace with spot only while the post-repair slack exceeds
        /// this many repair latencies — i.e. keep enough headroom to
        /// absorb at least this many further outages on-demand.
        fallback_slack_factor: f64,
    },
    /// A fixed fraction of worker slots on spot; the rest are on-demand
    /// anchors. Spot slots repair like [`RepairPolicy::SpotWithFallback`].
    MixedFleet {
        /// Fraction of worker slots backed by spot, in `[0, 1]`.
        spot_fraction: f64,
        /// As in [`RepairPolicy::SpotWithFallback`].
        fallback_slack_factor: f64,
    },
}

impl RepairPolicy {
    /// `SpotWithFallback` with the default slack factor of 2 repair
    /// latencies.
    pub fn spot_with_fallback() -> Self {
        RepairPolicy::SpotWithFallback {
            fallback_slack_factor: 2.0,
        }
    }

    /// `MixedFleet` with the default slack factor.
    pub fn mixed(spot_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&spot_fraction),
            "spot_fraction must lie in [0, 1]"
        );
        RepairPolicy::MixedFleet {
            spot_fraction,
            fallback_slack_factor: 2.0,
        }
    }

    /// Short human-readable label for reports and sweeps.
    pub fn name(&self) -> String {
        match self {
            RepairPolicy::OnDemandOnly => "on-demand-only".to_string(),
            RepairPolicy::SpotWithFallback { .. } => "spot-with-fallback".to_string(),
            RepairPolicy::MixedFleet { spot_fraction, .. } => {
                format!("mixed-fleet-{:.0}%-spot", spot_fraction * 100.0)
            }
        }
    }

    /// Backing of worker slot `slot` (0-based) in a fleet of `n` workers
    /// at provisioning time. For `MixedFleet` the *high*-indexed slots go
    /// to spot, so shrinking retires spot capacity first.
    pub fn initial_backing(&self, slot: usize, n: usize) -> Backing {
        match self {
            RepairPolicy::OnDemandOnly => Backing::OnDemand,
            RepairPolicy::SpotWithFallback { .. } => Backing::Spot,
            RepairPolicy::MixedFleet { spot_fraction, .. } => {
                let n_spot = (spot_fraction * n as f64).round() as usize;
                if slot >= n - n_spot.min(n) {
                    Backing::Spot
                } else {
                    Backing::OnDemand
                }
            }
        }
    }

    /// Slack threshold (in repair latencies) below which repairs fall
    /// back to on-demand capacity.
    pub fn fallback_slack_factor(&self) -> f64 {
        match self {
            RepairPolicy::OnDemandOnly => f64::INFINITY,
            RepairPolicy::SpotWithFallback {
                fallback_slack_factor,
            }
            | RepairPolicy::MixedFleet {
                fallback_slack_factor,
                ..
            } => *fallback_slack_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_demand_only_backs_everything_on_demand() {
        let p = RepairPolicy::OnDemandOnly;
        for slot in 0..8 {
            assert_eq!(p.initial_backing(slot, 8), Backing::OnDemand);
        }
    }

    #[test]
    fn spot_with_fallback_backs_everything_on_spot() {
        let p = RepairPolicy::spot_with_fallback();
        for slot in 0..8 {
            assert_eq!(p.initial_backing(slot, 8), Backing::Spot);
        }
    }

    #[test]
    fn mixed_fleet_splits_by_fraction_spot_on_high_slots() {
        let p = RepairPolicy::mixed(0.5);
        let backings: Vec<Backing> = (0..4).map(|s| p.initial_backing(s, 4)).collect();
        assert_eq!(
            backings,
            vec![
                Backing::OnDemand,
                Backing::OnDemand,
                Backing::Spot,
                Backing::Spot
            ]
        );
    }

    #[test]
    fn mixed_fleet_extremes() {
        let all_od = RepairPolicy::mixed(0.0);
        let all_spot = RepairPolicy::mixed(1.0);
        for slot in 0..5 {
            assert_eq!(all_od.initial_backing(slot, 5), Backing::OnDemand);
            assert_eq!(all_spot.initial_backing(slot, 5), Backing::Spot);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            RepairPolicy::OnDemandOnly.name(),
            RepairPolicy::spot_with_fallback().name(),
            RepairPolicy::mixed(0.5).name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
