//! Property tests: the parallel multi-seed sweep is bit-identical to the
//! serial one — same per-seed reports (costs, timelines, runtimes
//! compared with exact f64 equality) and same aggregate summary.

use cynthia_cloud::{default_catalog, RevocationModel};
use cynthia_core::provisioner::Goal;
use cynthia_elastic::{run_elastic, summarize, summarize_parallel, ElasticConfig, RepairPolicy};
use cynthia_models::Workload;
use proptest::prelude::*;

fn config(seed: u64, rate_per_hour: f64, deadline_secs: f64) -> ElasticConfig {
    let goal = Goal {
        deadline_secs,
        target_loss: 2.2,
    };
    let mut cfg = ElasticConfig::new(goal, RepairPolicy::spot_with_fallback(), seed);
    cfg.market.revocations = RevocationModel::Exponential { rate_per_hour };
    cfg
}

proptest! {
    // Each case runs 2·seeds full elastic simulations, so keep the case
    // count modest; coverage comes from the randomized market and goal.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `summarize_parallel` reproduces `summarize` exactly over random
    /// master seeds, reclaim rates, and deadlines.
    #[test]
    fn parallel_sweep_matches_serial(
        base_seed in 0u64..10_000,
        rate_per_hour in 0.5f64..12.0,
        deadline_secs in 2400.0f64..7200.0,
        n_seeds in 2usize..5,
    ) {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let cfg = config(0, rate_per_hour, deadline_secs);
        let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| base_seed + 31 * i).collect();
        let serial = summarize(&w, &catalog, &cfg, &seeds);
        let parallel = summarize_parallel(&w, &catalog, &cfg, &seeds);
        // ElasticSummary derives PartialEq: every mean compares bit for
        // bit, so even a reordered reduction would fail here.
        prop_assert_eq!(serial, parallel);
    }
}

/// Per-seed scrutiny beyond the aggregate: re-running a single seed yields
/// the same timeline and the same realized numbers, bit for bit — i.e.
/// each seed owns its RNG state and nothing leaks across parallel runs.
#[test]
fn per_seed_reports_are_reproducible() {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    for seed in [1000u64, 1017, 1034] {
        let cfg = config(seed, 6.0, 3600.0);
        let a = run_elastic(&w, &catalog, &cfg).expect("feasible");
        let b = run_elastic(&w, &catalog, &cfg).expect("feasible");
        assert_eq!(a.realized_cost, b.realized_cost);
        assert_eq!(a.on_demand_baseline_cost, b.on_demand_baseline_cost);
        assert_eq!(a.baseline_time, b.baseline_time);
        assert_eq!(a.training.total_time, b.training.total_time);
        assert_eq!(a.timeline.len(), b.timeline.len());
        for (x, y) in a.timeline.iter().zip(&b.timeline) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }
}
