//! Typed metrics: counters, float counters, gauges, fixed-bucket
//! histograms, and the registry that names, renders, and exports them.
//!
//! Handles ([`Counter`], [`Gauge`], …) are cheap `Arc` clones around
//! lock-free atomics, so instrumented hot paths pay one relaxed atomic
//! operation per event. The registry itself is only locked on
//! registration and on export. Exposition order is deterministic (sorted
//! by name, then by label set), so a registry populated with the same
//! values always renders byte-identical output — the golden-snapshot
//! tests under `tests/snapshots/` rely on this.

use parking_lot::Mutex;
use serde::{Number, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically non-decreasing integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (counters only go up).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free add on an `f64` stored as bits in an [`AtomicU64`].
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + delta;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A monotonically non-decreasing `f64` counter (e.g. accumulated
/// seconds). Negative increments are ignored so the monotonicity
/// invariant holds by construction.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// Adds `v` if it is positive and finite; ignores it otherwise.
    #[inline]
    pub fn add(&self, v: f64) {
        if v > 0.0 && v.is_finite() {
            atomic_f64_add(&self.0, v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// An instantaneous `f64` value that may move in either direction.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        atomic_f64_add(&self.0, v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// entries, the last being the `+Inf` bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits.
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Buckets are chosen at registration and never
/// change, so bucket *counts* are deterministic for a deterministic
/// observation stream (the `sum` may differ in final bits when observed
/// from multiple threads, since float addition is order-dependent).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .0
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.0.sum, v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with the `+Inf`
    /// bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.0.counts.len());
        for (i, c) in self.0.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            let bound = self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Wall-clock latency buckets (seconds): 100 µs … 600 s.
pub const TIME_BUCKETS: &[f64] = &[
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
];

/// Power-of-two width buckets for small integer quantities (band widths,
/// fleet sizes).
pub const WIDTH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) | Handle::FloatCounter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// `(name, sorted labels)` — the registry key.
type Key = (String, Vec<(String, String)>);

#[derive(Debug)]
struct Entry {
    help: String,
    handle: Handle,
}

/// A named collection of metrics with deterministic exposition.
///
/// Use [`crate::metrics`] for the process-wide registry; construct local
/// registries in tests that need isolated, byte-stable snapshots.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<Key, Entry>>,
}

/// Formats a metric value the way the text exposition needs it: integers
/// without a decimal point, floats in shortest round-trip form.
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], help: &str, make: Handle) -> Handle {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let key = (name.to_string(), sorted);
        let mut entries = self.entries.lock();
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            handle: make,
        });
        entry.handle.clone()
    }

    /// Gets or registers an integer counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Gets or registers an integer counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(name, labels, help, Handle::Counter(Counter::default())) {
            Handle::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Gets or registers a monotonic `f64` counter (accumulated seconds,
    /// dollars, …).
    pub fn float_counter(&self, name: &str, help: &str) -> FloatCounter {
        match self.register(
            name,
            &[],
            help,
            Handle::FloatCounter(FloatCounter::default()),
        ) {
            Handle::FloatCounter(c) => c,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Gets or registers a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, &[], help, Handle::Gauge(Gauge::default())) {
            Handle::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Gets or registers a fixed-bucket histogram. The bucket bounds of
    /// the first registration win; later calls return the same handle.
    pub fn histogram(&self, name: &str, bounds: &[f64], help: &str) -> Histogram {
        match self.register(
            name,
            &[],
            help,
            Handle::Histogram(Histogram::with_bounds(bounds)),
        ) {
            Handle::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Number of registered metric series.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the Prometheus text exposition format, sorted by metric
    /// name then label set — byte-deterministic for equal contents.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), entry) in entries.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# HELP {name} {}", entry.help);
                let _ = writeln!(out, "# TYPE {name} {}", entry.handle.type_name());
                last_name = Some(name.as_str());
            }
            let lbl = fmt_labels(labels);
            match &entry.handle {
                Handle::Counter(c) => {
                    let _ = writeln!(out, "{name}{lbl} {}", c.get());
                }
                Handle::FloatCounter(c) => {
                    let _ = writeln!(out, "{name}{lbl} {}", fmt_value(c.get()));
                }
                Handle::Gauge(g) => {
                    let _ = writeln!(out, "{name}{lbl} {}", fmt_value(g.get()));
                }
                Handle::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        let mut with_le: Vec<(String, String)> = labels.clone();
                        with_le.push(("le".to_string(), fmt_value(bound)));
                        let _ = writeln!(out, "{name}_bucket{} {cum}", fmt_labels(&with_le));
                    }
                    let _ = writeln!(out, "{name}_sum{lbl} {}", fmt_value(h.sum()));
                    let _ = writeln!(out, "{name}_count{lbl} {}", h.count());
                }
            }
        }
        out
    }

    /// Exports every metric as a JSON value tree (name → series), in the
    /// same deterministic order as the text exposition.
    pub fn to_json(&self) -> Value {
        let entries = self.entries.lock();
        let mut series: Vec<Value> = Vec::with_capacity(entries.len());
        for ((name, labels), entry) in entries.iter() {
            let mut obj: Vec<(String, Value)> = vec![
                ("name".to_string(), Value::Str(name.clone())),
                (
                    "type".to_string(),
                    Value::Str(entry.handle.type_name().to_string()),
                ),
            ];
            if !labels.is_empty() {
                obj.push((
                    "labels".to_string(),
                    Value::Object(
                        labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ));
            }
            match &entry.handle {
                Handle::Counter(c) => {
                    obj.push((
                        "value".to_string(),
                        Value::Number(Number::Int(c.get() as i64)),
                    ));
                }
                Handle::FloatCounter(c) => {
                    obj.push(("value".to_string(), Value::Number(Number::Float(c.get()))));
                }
                Handle::Gauge(g) => {
                    obj.push(("value".to_string(), Value::Number(Number::Float(g.get()))));
                }
                Handle::Histogram(h) => {
                    let buckets: Vec<Value> = h
                        .cumulative_buckets()
                        .into_iter()
                        .map(|(bound, cum)| {
                            Value::Object(vec![
                                ("le".to_string(), Value::Str(fmt_value(bound))),
                                ("count".to_string(), Value::Number(Number::Int(cum as i64))),
                            ])
                        })
                        .collect();
                    obj.push(("buckets".to_string(), Value::Array(buckets)));
                    obj.push(("sum".to_string(), Value::Number(Number::Float(h.sum()))));
                    obj.push((
                        "count".to_string(),
                        Value::Number(Number::Int(h.count() as i64)),
                    ));
                }
            }
            series.push(Value::Object(obj));
        }
        Value::Object(vec![("metrics".to_string(), Value::Array(series))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "handles alias the same series");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn float_counter_ignores_non_positive() {
        let r = MetricsRegistry::new();
        let c = r.float_counter("secs_total", "seconds");
        c.add(1.5);
        c.add(-3.0);
        c.add(f64::NAN);
        c.add(0.0);
        assert_eq!(c.get(), 1.5);
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", &[0.1, 1.0, 10.0], "latency");
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 5, "+Inf bucket is cumulative total");
        assert!((h.sum() - 56.05).abs() < 1e-9);
    }

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let build = || {
            let r = MetricsRegistry::new();
            r.counter("b_total", "second").add(2);
            r.counter("a_total", "first").add(1);
            r.counter_with("c_total", &[("kind", "y"), ("az", "1")], "labeled")
                .add(3);
            r.render_prometheus()
        };
        let text = build();
        assert_eq!(text, build(), "same contents render byte-identically");
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "sorted by name:\n{text}");
        assert!(
            text.contains("c_total{az=\"1\",kind=\"y\"} 3"),
            "labels sorted:\n{text}"
        );
    }

    #[test]
    fn json_export_mirrors_the_registry() {
        let r = MetricsRegistry::new();
        r.counter("n_total", "n").add(7);
        r.gauge("g", "g").set(2.5);
        let json = r.to_json();
        let series = json["metrics"].as_array().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0]["name"], "g");
        assert_eq!(series[1]["value"].as_i64(), Some(7));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("m", "as counter");
        r.gauge("m", "as gauge");
    }
}
