//! # cynthia-obs — observability for the provision–train–recover pipeline
//!
//! Cynthia's premise is *predictability*: the profiler feeds the
//! performance model (Eqs. 2–7), which feeds the provisioner (Alg. 1),
//! which feeds the engine and the recovery layer. This crate gives every
//! stage first-class instrumentation so its hot paths can be observed at
//! runtime instead of trusted blindly:
//!
//! * [`registry::MetricsRegistry`] — typed counters, float counters,
//!   gauges, and fixed-bucket histograms with deterministic
//!   Prometheus-style text exposition and JSON export.
//! * [`span::Tracer`] — hierarchical tracing spans on named tracks, with
//!   a *virtual-clock* backend (the caller supplies simulated timestamps)
//!   and a *wall-clock* backend (RAII guards measured against a process
//!   epoch), exported as JSONL and as a Chrome trace-event file
//!   (`chrome://tracing` / Perfetto).
//! * [`export`] — the one JSON-artifact writer the repo's examples and
//!   bench emitters share.
//!
//! The crate itself is dependency-light (vendored shims only) and
//! `#![forbid(unsafe_code)]`. Instrumentation *call sites* in the other
//! crates are feature-gated behind each crate's `obs` feature (on by
//! default; `--no-default-features` compiles them out entirely), and are
//! required never to perturb simulation results — they only record.
//!
//! ## Globals
//!
//! Process-wide instrumentation writes to [`metrics()`] and [`tracer()`].
//! [`set_enabled`] is a master kill switch (used by the overhead bench to
//! measure the enabled-vs-disabled delta without recompiling); the tracer
//! additionally starts *disabled* and must be switched on per session
//! ([`span::Tracer::set_enabled`]) because span recording is only
//! meaningful while one simulation at a time is being observed. Metric
//! counters, by contrast, aggregate correctly under concurrency.
//!
//! See `docs/OBSERVABILITY.md` for the full metric and span catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod span;

pub use registry::{Counter, FloatCounter, Gauge, Histogram, MetricsRegistry};
pub use span::{SpanRecord, Tracer, WallSpan};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Master kill switch for all instrumentation hooks. Hooks check this
/// before recording; flipping it off makes every hook a near-free atomic
/// load (the overhead bench measures exactly this delta).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation hooks should record (see [`set_enabled`]).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide metrics registry all instrumentation writes to.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// The process-wide tracer. Starts *disabled*; a session that wants spans
/// (e.g. `examples/observe.rs`) enables it, runs, and drains.
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer::new(1 << 18))
}

/// Whether span recording is active right now: the master switch is on
/// *and* the global tracer has been enabled. Engine hot loops cache this
/// at construction so per-event checks stay off the fast path.
#[inline]
pub fn span_recording() -> bool {
    enabled() && tracer().is_enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_round_trips() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        assert!(!span_recording(), "disabled master gates the tracer too");
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn globals_are_singletons() {
        let a = metrics() as *const MetricsRegistry;
        let b = metrics() as *const MetricsRegistry;
        assert_eq!(a, b);
        let t1 = tracer() as *const Tracer;
        let t2 = tracer() as *const Tracer;
        assert_eq!(t1, t2);
    }
}
