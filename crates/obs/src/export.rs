//! Artifact writers shared by examples, benches, and CI.
//!
//! Every JSON artifact the repo emits (`CHAOS_drill.json`, the
//! `BENCH_*.json` reports, `OBS_trace.json`, …) goes through this module
//! so the on-disk format is decided in exactly one place: pretty-printed
//! with 2-space indentation and a trailing newline, which diffs cleanly
//! and round-trips through the vendored `serde_json` shim.

use serde::Serialize;
use std::io;
use std::path::Path;

/// Renders any serializable value as pretty JSON with a trailing newline.
pub fn json_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut s = value.to_value().to_json_pretty();
    s.push('\n');
    s
}

/// Writes `value` to `path` as pretty JSON (see [`json_pretty`]).
pub fn write_json_pretty<T: Serialize + ?Sized>(
    path: impl AsRef<Path>,
    value: &T,
) -> io::Result<()> {
    std::fs::write(path, json_pretty(value))
}

/// Writes an already-rendered artifact (Prometheus text, JSONL) verbatim.
pub fn write_text(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn json_pretty_is_indented_with_trailing_newline() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::Number(serde::Number::Int(1))]),
        )]);
        let s = json_pretty(&v);
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn write_json_pretty_round_trips() {
        let dir = std::env::temp_dir().join("cynthia_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let rows = vec![1.5f64, 2.0];
        write_json_pretty(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back[0].as_f64(), Some(1.5));
        std::fs::remove_file(&path).ok();
    }
}
