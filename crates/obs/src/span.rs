//! Hierarchical tracing spans on named tracks.
//!
//! A *track* is a timeline (one per subsystem: `"provision"`, `"train"`,
//! `"recovery"`, `"slo"`). Spans on a track nest: [`Tracer::begin_at`]
//! pushes onto the track's stack, [`Tracer::end_at`] pops the innermost
//! open span and records it, so recorded span trees are well-nested by
//! construction. Two clock backends share this machinery:
//!
//! * **virtual clock** — the caller supplies simulated timestamps
//!   (`queue.now()` seconds) via `begin_at`/`end_at`/[`Tracer::complete`].
//!   Deterministic: the same simulation produces byte-identical traces.
//! * **wall clock** — [`Tracer::wall_span`] returns a [`WallSpan`] RAII
//!   guard that measures real elapsed time against the tracer's epoch;
//!   used around provisioning searches and benches.
//!
//! Mixing backends on one track would interleave unrelated time bases, so
//! instrumentation keeps wall-clock tracks (`"provision"`) separate from
//! virtual-clock tracks (`"train"`, `"recovery"`, `"slo"`).
//!
//! Finished spans accumulate in a bounded buffer ([`Tracer::drain`] them;
//! overflow increments [`Tracer::dropped`] instead of reallocating without
//! bound) and export as JSONL ([`to_jsonl`]) or a Chrome trace-event
//! document ([`to_chrome_trace`]) loadable in `chrome://tracing` or
//! Perfetto.

use parking_lot::Mutex;
use serde::{Number, Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Timeline this span belongs to (e.g. `"train"`).
    pub track: String,
    /// Span name (e.g. `"train.iteration"`).
    pub name: String,
    /// Start time in seconds (virtual or wall, per the track's backend).
    pub start: f64,
    /// End time in seconds; `end >= start`.
    pub end: f64,
    /// Nesting depth at record time (0 = top level on its track).
    pub depth: usize,
    /// Numeric attachments (e.g. `("comp_secs", 1.2)`).
    pub args: Vec<(String, f64)>,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("track".to_string(), Value::Str(self.track.clone())),
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "start".to_string(),
                Value::Number(Number::Float(self.start)),
            ),
            ("end".to_string(), Value::Number(Number::Float(self.end))),
            (
                "depth".to_string(),
                Value::Number(Number::Int(self.depth as i64)),
            ),
        ];
        if !self.args.is_empty() {
            obj.push((
                "args".to_string(),
                Value::Object(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Number(Number::Float(*v))))
                        .collect(),
                ),
            ));
        }
        Value::Object(obj)
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    start: f64,
}

#[derive(Debug, Default)]
struct TracerInner {
    /// Open-span stack per track, keyed by track name.
    stacks: Vec<(String, Vec<OpenSpan>)>,
    /// Finished spans in completion order.
    finished: Vec<SpanRecord>,
}

impl TracerInner {
    fn stack_mut(&mut self, track: &str) -> &mut Vec<OpenSpan> {
        if let Some(idx) = self.stacks.iter().position(|(t, _)| t == track) {
            &mut self.stacks[idx].1
        } else {
            self.stacks.push((track.to_string(), Vec::new()));
            &mut self.stacks.last_mut().unwrap().1
        }
    }
}

/// Span recorder with a bounded buffer and an enable flag.
///
/// The process-wide instance lives at [`crate::tracer`] and starts
/// disabled; every recording method is a single relaxed atomic load when
/// disabled, which is what keeps always-compiled-in hooks cheap.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    capacity: usize,
    dropped: AtomicU64,
    epoch: Instant,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// A disabled tracer holding at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            capacity,
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// Turns recording on or off. Spans already open stay open.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Seconds since this tracer was created (the wall-clock time base).
    pub fn wall_now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Opens a span on `track` at virtual time `start`.
    pub fn begin_at(&self, track: &str, name: &str, start: f64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.lock().stack_mut(track).push(OpenSpan {
            name: name.to_string(),
            start,
        });
    }

    /// Closes the innermost open span on `track` at virtual time `end`,
    /// attaching `args`. No-op if nothing is open (e.g. the tracer was
    /// enabled mid-run).
    pub fn end_at(&self, track: &str, end: f64, args: &[(&str, f64)]) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        let stack = inner.stack_mut(track);
        let Some(open) = stack.pop() else { return };
        let depth = stack.len();
        let record = SpanRecord {
            track: track.to_string(),
            name: open.name,
            start: open.start,
            end: end.max(open.start),
            depth,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        self.push(&mut inner, record);
    }

    /// Records an already-measured span in one call, nested under
    /// whatever is currently open on `track`.
    pub fn complete(&self, track: &str, name: &str, start: f64, end: f64, args: &[(&str, f64)]) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        let depth = inner.stack_mut(track).len();
        let record = SpanRecord {
            track: track.to_string(),
            name: name.to_string(),
            start,
            end: end.max(start),
            depth,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        self.push(&mut inner, record);
    }

    /// Opens a wall-clock span on `track`; the returned guard records it
    /// when dropped. Returns an inert guard while disabled.
    pub fn wall_span(&self, track: &str, name: &str) -> WallSpan<'_> {
        if !self.is_enabled() {
            return WallSpan {
                tracer: None,
                track: String::new(),
            };
        }
        self.begin_at(track, name, self.wall_now());
        WallSpan {
            tracer: Some(self),
            track: track.to_string(),
        }
    }

    fn push(&self, inner: &mut TracerInner, record: SpanRecord) {
        if inner.finished.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.finished.push(record);
        }
    }

    /// Number of open spans on `track` right now.
    pub fn open_depth(&self, track: &str) -> usize {
        self.inner.lock().stack_mut(track).len()
    }

    /// Takes all finished spans (completion order), leaving open spans
    /// untouched and resetting the drop counter.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.dropped.store(0, Ordering::Relaxed);
        std::mem::take(&mut self.inner.lock().finished)
    }

    /// Spans discarded because the buffer was full since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// RAII guard for a wall-clock span; records on drop.
#[derive(Debug)]
#[must_use = "dropping immediately records a zero-length span"]
pub struct WallSpan<'a> {
    tracer: Option<&'a Tracer>,
    track: String,
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.end_at(&self.track, t.wall_now(), &[]);
        }
    }
}

/// Renders spans as JSON Lines, one compact object per line (trailing
/// newline included when non-empty). Byte-deterministic for equal input.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_value().to_json_compact());
        out.push('\n');
    }
    out
}

/// Builds a Chrome trace-event document (`chrome://tracing`, Perfetto).
///
/// Each track becomes a thread (`tid` in first-seen order, with a
/// `thread_name` metadata event); spans become complete events (`ph:"X"`)
/// with microsecond timestamps.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> Value {
    let mut tracks: Vec<&str> = Vec::new();
    for s in spans {
        if !tracks.iter().any(|t| *t == s.track) {
            tracks.push(&s.track);
        }
    }
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + tracks.len());
    for (i, track) in tracks.iter().enumerate() {
        events.push(Value::Object(vec![
            ("name".to_string(), Value::Str("thread_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::Number(Number::Int(1))),
            ("tid".to_string(), Value::Number(Number::Int(i as i64 + 1))),
            (
                "args".to_string(),
                Value::Object(vec![("name".to_string(), Value::Str((*track).to_string()))]),
            ),
        ]));
    }
    for s in spans {
        let tid = tracks.iter().position(|t| *t == s.track).unwrap() as i64 + 1;
        let mut ev: Vec<(String, Value)> = vec![
            ("name".to_string(), Value::Str(s.name.clone())),
            ("cat".to_string(), Value::Str(s.track.clone())),
            ("ph".to_string(), Value::Str("X".to_string())),
            (
                "ts".to_string(),
                Value::Number(Number::Float(s.start * 1e6)),
            ),
            (
                "dur".to_string(),
                Value::Number(Number::Float(s.duration() * 1e6)),
            ),
            ("pid".to_string(), Value::Number(Number::Int(1))),
            ("tid".to_string(), Value::Number(Number::Int(tid))),
        ];
        if !s.args.is_empty() {
            ev.push((
                "args".to_string(),
                Value::Object(
                    s.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Number(Number::Float(*v))))
                        .collect(),
                ),
            ));
        }
        events.push(Value::Object(ev));
    }
    Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// Checks that every track's spans form a well-nested tree: spans are
/// disjoint or strictly contained, and each recorded `depth` matches the
/// reconstructed nesting. Returns `Err` describing the first violation.
pub fn validate_well_nested(spans: &[SpanRecord]) -> Result<(), String> {
    let mut tracks: Vec<&str> = spans.iter().map(|s| s.track.as_str()).collect();
    tracks.sort();
    tracks.dedup();
    for track in tracks {
        let mut on_track: Vec<&SpanRecord> = spans.iter().filter(|s| s.track == track).collect();
        // Parents sort before children: earlier start first, then longer
        // span first, then shallower depth first.
        on_track.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap()
                .then(b.end.partial_cmp(&a.end).unwrap())
                .then(a.depth.cmp(&b.depth))
        });
        let mut stack: Vec<&SpanRecord> = Vec::new();
        for s in on_track {
            if s.end < s.start {
                return Err(format!("span {}/{} ends before it starts", track, s.name));
            }
            // Unwind ancestors that finished before this span starts; the
            // recorded depth says how many must remain.
            while stack.len() > s.depth {
                let top = stack.last().unwrap();
                if top.end <= s.start {
                    stack.pop();
                } else {
                    return Err(format!(
                        "span {}/{} [{}, {}] at depth {} overlaps still-open {} [{}, {}]",
                        track, s.name, s.start, s.end, s.depth, top.name, top.start, top.end
                    ));
                }
            }
            if stack.len() < s.depth {
                return Err(format!(
                    "span {}/{} recorded depth {} but only {} ancestors are open",
                    track,
                    s.name,
                    s.depth,
                    stack.len()
                ));
            }
            if let Some(top) = stack.last() {
                if s.start < top.start || s.end > top.end {
                    return Err(format!(
                        "span {}/{} [{}, {}] not contained in parent {} [{}, {}]",
                        track, s.name, s.start, s.end, top.name, top.start, top.end
                    ));
                }
            }
            stack.push(s);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_tracer() -> Tracer {
        let t = Tracer::new(64);
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(64);
        t.begin_at("x", "a", 0.0);
        t.end_at("x", 1.0, &[]);
        t.complete("x", "b", 0.0, 1.0, &[]);
        drop(t.wall_span("x", "c"));
        assert!(t.drain().is_empty());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let t = enabled_tracer();
        t.begin_at("sim", "outer", 0.0);
        t.begin_at("sim", "inner", 1.0);
        t.end_at("sim", 2.0, &[("n", 3.0)]);
        t.complete("sim", "leaf", 2.0, 2.5, &[]);
        t.end_at("sim", 4.0, &[]);
        let spans = t.drain();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].args, vec![("n".to_string(), 3.0)]);
        assert_eq!(spans[1].name, "leaf");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "outer");
        assert_eq!(spans[2].depth, 0);
        validate_well_nested(&spans).unwrap();
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let t = Tracer::new(2);
        t.set_enabled(true);
        for i in 0..5 {
            t.complete("x", "s", i as f64, i as f64 + 0.5, &[]);
        }
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.dropped(), 0, "drain resets the drop counter");
    }

    #[test]
    fn wall_span_measures_nonnegative_time() {
        let t = enabled_tracer();
        {
            let _g = t.wall_span("bench", "work");
        }
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].duration() >= 0.0);
        validate_well_nested(&spans).unwrap();
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let t = enabled_tracer();
        t.complete("a", "s1", 0.0, 1.0, &[("k", 2.0)]);
        t.complete("a", "s2", 1.0, 2.0, &[]);
        let text = to_jsonl(&t.drain());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"track":"a","name":"s1","start":0.0,"end":1.0,"depth":0,"args":{"k":2.0}}"#
        );
        assert!(
            !lines[1].contains("args"),
            "empty args omitted: {}",
            lines[1]
        );
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let t = enabled_tracer();
        t.complete("train", "iter", 0.0, 0.5, &[("comp", 0.3)]);
        t.complete("recovery", "restore", 1.0, 2.0, &[]);
        let doc = to_chrome_trace(&t.drain());
        let events = doc["traceEvents"].as_array().unwrap();
        // 2 thread_name metadata + 2 spans.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[2]["ph"], "X");
        assert_eq!(events[2]["dur"].as_f64(), Some(0.5e6));
        assert_eq!(events[3]["tid"].as_i64(), Some(2));
        assert_eq!(doc["displayTimeUnit"], "ms");
    }

    #[test]
    fn validator_rejects_overlap_and_bad_depth() {
        let s = |name: &str, start: f64, end: f64, depth: usize| SpanRecord {
            track: "t".to_string(),
            name: name.to_string(),
            start,
            end,
            depth,
            args: Vec::new(),
        };
        let overlapping = vec![s("a", 0.0, 2.0, 0), s("b", 1.0, 3.0, 1)];
        assert!(validate_well_nested(&overlapping).is_err());
        let bad_depth = vec![s("a", 0.0, 2.0, 0), s("b", 0.5, 1.0, 0)];
        assert!(validate_well_nested(&bad_depth).is_err());
        let good = vec![
            s("a", 0.0, 2.0, 0),
            s("b", 0.5, 1.0, 1),
            s("c", 3.0, 4.0, 0),
        ];
        validate_well_nested(&good).unwrap();
    }
}
