//! Property-based tests of the loss model and the performance model.

use cynthia_cloud::default_catalog;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::ProfileData;
use cynthia_models::SyncMode;
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Loss model

fn synth_curve(
    sync: SyncMode,
    beta0: f64,
    beta1: f64,
    n: u32,
    samples: usize,
    rel_noise: f64,
) -> Vec<(u64, f64)> {
    let stale = match sync {
        SyncMode::Bsp => 1.0,
        SyncMode::Asp => (n as f64).sqrt(),
    };
    (1..=samples as u64)
        .map(|i| {
            let s = i * 23;
            // Deterministic pseudo-noise, alternating sign.
            let wiggle = 1.0 + rel_noise * if i % 2 == 0 { 1.0 } else { -1.0 };
            (s, (beta0 * stale / s as f64 + beta1) * wiggle)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Least squares recovers the generating coefficients of Eq. (1) for
    /// any positive (β0, β1), BSP or ASP, to high precision on clean data
    /// and to ~10% under 2% noise.
    #[test]
    fn fit_recovers_generating_coefficients(
        beta0 in 10.0f64..5000.0,
        beta1 in 0.01f64..2.0,
        n in 1u32..16,
        asp in any::<bool>(),
        noisy in any::<bool>(),
    ) {
        let sync = if asp { SyncMode::Asp } else { SyncMode::Bsp };
        let noise = if noisy { 0.02 } else { 0.0 };
        let curve = synth_curve(sync, beta0, beta1, n, 120, noise);
        let fit = FittedLossModel::fit(sync, &curve, n);
        let tol0 = if noisy { 0.12 * beta0 } else { 1e-6 * beta0 };
        // Multiplicative noise on steep early samples leaks into the
        // intercept proportionally to β0 (leverage), so the noisy
        // tolerance carries a β0 term.
        let tol1 = if noisy {
            0.05 * beta1 + 0.02 + 2e-5 * beta0
        } else {
            1e-9 + 1e-9 * beta1
        };
        prop_assert!((fit.beta0 - beta0).abs() < tol0,
            "beta0 {} vs {beta0}", fit.beta0);
        prop_assert!((fit.beta1 - beta1).abs() < tol1,
            "beta1 {} vs {beta1}", fit.beta1);
    }

    /// Inversion round trip: the iteration count returned for any
    /// reachable target actually achieves it, and one fewer iteration
    /// (scaled) would not.
    #[test]
    fn inversion_round_trip(
        beta0 in 10.0f64..5000.0,
        beta1 in 0.01f64..2.0,
        excess in 0.05f64..3.0,
        n in 1u32..16,
        asp in any::<bool>(),
    ) {
        let sync = if asp { SyncMode::Asp } else { SyncMode::Bsp };
        let m = FittedLossModel { sync, beta0, beta1, r_squared: 1.0 };
        let target = beta1 + excess;
        let total = m.total_updates_for(target, n).expect("reachable");
        prop_assert!(m.predict(total, n) <= target + 1e-9);
        if total > 1 {
            prop_assert!(m.predict(total - 1, n) > target - 1e-9,
                "count should be minimal");
        }
        // Per-worker form is consistent for ASP.
        if asp {
            let per_worker = m.asp_iterations_per_worker(target, n).unwrap();
            prop_assert!(m.predict(per_worker * n as u64, n) <= target + 1e-9);
        }
        // Unreachable targets are refused.
        prop_assert!(m.total_updates_for(beta1, n).is_none());
    }
}

// ----------------------------------------------------------------------
// Performance model

fn synth_profile(
    sync: SyncMode,
    w_iter: f64,
    g_param: f64,
    c_prof: f64,
    b_prof: f64,
) -> ProfileData {
    ProfileData {
        workload_id: "synthetic".into(),
        sync,
        w_iter_gflops: w_iter,
        g_param_mb: g_param,
        c_prof_gflops: c_prof,
        b_prof_mbps: b_prof,
        c_base_gflops: 0.9,
        baseline_type: "m4.xlarge".into(),
        profiling_wallclock: 1.0,
        iterations: 30,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Predictions are positive, finite, and monotone in the work: more
    /// updates never take less time; a faster instance never predicts
    /// slower.
    #[test]
    fn predictions_are_physical(
        w_iter in 0.01f64..100.0,
        g_param in 0.05f64..200.0,
        c_prof in 0.005f64..2.0,
        b_prof in 0.05f64..60.0,
        n in 1u32..24,
        n_ps in 1u32..4,
        asp in any::<bool>(),
    ) {
        let sync = if asp { SyncMode::Asp } else { SyncMode::Bsp };
        let model = CynthiaModel::new(synth_profile(sync, w_iter, g_param, c_prof, b_prof));
        let catalog = default_catalog();
        let m4 = catalog.expect("m4.xlarge");
        let c4 = catalog.expect("c4.xlarge");
        let shape = ClusterShape::homogeneous(m4, n, n_ps);

        let t1 = model.predict_time(&shape, 100);
        let t2 = model.predict_time(&shape, 200);
        prop_assert!(t1.is_finite() && t1 > 0.0);
        prop_assert!(t2 >= t1 * 1.5, "time roughly linear in updates: {t1} vs {t2}");

        // A uniformly faster type (c4 ≥ m4 in CPU; equal-or-less NIC can
        // matter, so compare with the same NIC by scaling only compute):
        // use iter_time components instead.
        prop_assert!(model.t_comp(&ClusterShape::homogeneous(c4, n, n_ps))
            <= model.t_comp(&shape) + 1e-12);

        // Utilization is a fraction and monotonically non-increasing in n.
        let u_small = model.worker_utilization(&ClusterShape::homogeneous(m4, n, n_ps));
        let u_big = model.worker_utilization(&ClusterShape::homogeneous(m4, n + 4, n_ps));
        prop_assert!((0.0..=1.0).contains(&u_small));
        prop_assert!(u_big <= u_small + 1e-12);

        // Busy fraction is a fraction too.
        let busy = model.predicted_worker_busy_fraction(&shape);
        prop_assert!((0.0..=1.0).contains(&busy), "busy {busy}");
    }

    /// More PS supply never slows the prediction down; the ablated
    /// (bottleneck-oblivious) model is always at least as optimistic.
    #[test]
    fn ps_supply_and_ablation_orderings(
        w_iter in 0.01f64..100.0,
        g_param in 0.05f64..200.0,
        c_prof in 0.005f64..2.0,
        b_prof in 0.05f64..60.0,
        n in 1u32..24,
        asp in any::<bool>(),
    ) {
        let sync = if asp { SyncMode::Asp } else { SyncMode::Bsp };
        let full = CynthiaModel::new(synth_profile(sync, w_iter, g_param, c_prof, b_prof));
        let ablated = CynthiaModel { bottleneck_aware: false, ..full.clone() };
        let catalog = default_catalog();
        let m4 = catalog.expect("m4.xlarge");
        let one_ps = ClusterShape::homogeneous(m4, n, 1);
        let two_ps = ClusterShape::homogeneous(m4, n, 2);
        prop_assert!(full.predict_time(&two_ps, 200) <= full.predict_time(&one_ps, 200) + 1e-9);
        prop_assert!(ablated.predict_time(&one_ps, 200) <= full.predict_time(&one_ps, 200) + 1e-9,
            "removing contention modelling must not increase the prediction");
    }
}
