//! Property tests: the parallel band search is bit-identical to the
//! serial Alg. 1 reference — same chosen plan, same predicted numbers
//! (exact f64 equality, no tolerance), same `candidates_evaluated`.

use cynthia_cloud::default_catalog;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::perf_model::CynthiaModel;
use cynthia_core::profiler::{profile_workload, ProfileData};
use cynthia_core::provisioner::{
    plan, plan_parallel, plan_parallel_with_cache, plan_with_model, EvalCache, Goal, PlannerOptions,
};
use cynthia_models::Workload;
use proptest::prelude::*;

fn fixtures(asp: bool) -> (ProfileData, FittedLossModel) {
    let catalog = default_catalog();
    let w = if asp {
        Workload::vgg19_asp()
    } else {
        Workload::cifar10_bsp()
    };
    let profile = profile_workload(&w, catalog.expect("m4.xlarge"), 99);
    let loss = FittedLossModel {
        sync: w.sync,
        beta0: w.convergence.beta0,
        beta1: w.convergence.beta1,
        r_squared: 1.0,
    };
    (profile, loss)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `plan_parallel` reproduces `plan` exactly over random goals and
    /// planner knobs, including infeasible goals (both return `None`).
    #[test]
    fn parallel_band_search_matches_serial(
        deadline_secs in 600.0f64..20000.0,
        target_loss in 0.2f64..3.0,
        asp in any::<bool>(),
        first_feasible in any::<bool>(),
        use_bounds in any::<bool>(),
        max_workers in 4u32..40,
        headroom in 0.5f64..1.0,
        max_ps_escalation in 0u32..4,
    ) {
        let (profile, loss) = fixtures(asp);
        let catalog = default_catalog();
        let goal = Goal { deadline_secs, target_loss };
        let options = PlannerOptions {
            first_feasible,
            use_bounds,
            max_workers,
            headroom,
            max_ps_escalation,
        };
        let serial = plan(&profile, &loss, &catalog, &goal, &options);
        let parallel = plan_parallel(&profile, &loss, &catalog, &goal, &options);
        // Plan derives PartialEq over all fields, so this compares every
        // f64 bit for bit plus candidates_evaluated.
        prop_assert_eq!(serial, parallel);
    }

    /// A shared, warm `EvalCache` never changes the answer: replanning the
    /// same and nearby goals through one cache still matches the serial
    /// path exactly (cached values are the exact f64s the model returns).
    #[test]
    fn shared_cache_stays_bit_identical(
        deadline_secs in 1200.0f64..15000.0,
        target_loss in 0.4f64..2.5,
        asp in any::<bool>(),
    ) {
        let (profile, loss) = fixtures(asp);
        let catalog = default_catalog();
        let model = CynthiaModel::new(profile.clone());
        let options = PlannerOptions::default();
        let cache = EvalCache::new();
        for k in 0..3u32 {
            // Same deadline, progressively tighter loss: heavy key reuse.
            let goal = Goal {
                deadline_secs,
                target_loss: target_loss * (1.0 - 0.05 * k as f64),
            };
            let serial = plan_with_model(&model, &profile, &loss, &catalog, &goal, &options);
            let cached = plan_parallel_with_cache(
                &model, &profile, &loss, &catalog, &goal, &options, &cache,
            );
            prop_assert_eq!(serial, cached);
        }
        // Re-running the very first goal against the now-warm cache (all
        // hits, no misses) still matches.
        let goal = Goal { deadline_secs, target_loss };
        let (h0, _) = (cache.hits(), cache.misses());
        let serial = plan_with_model(&model, &profile, &loss, &catalog, &goal, &options);
        let cached =
            plan_parallel_with_cache(&model, &profile, &loss, &catalog, &goal, &options, &cache);
        prop_assert_eq!(serial, cached);
        // Unreachable loss targets evaluate no candidates at all, so only
        // expect hits when the earlier goals actually populated the cache.
        prop_assert!(
            cache.is_empty() || cache.hits() > h0,
            "warm rerun must hit the cache"
        );
    }
}
