//! Cost-efficient cloud resource provisioning (Sec. 4).
//!
//! Given an objective training time `T_g` and loss value `l_g`, minimize
//! the monetary cost (Eq. 8) subject to the deadline (Eq. 9), the loss
//! target (Eq. 10), and the worker:PS ratio bound (Eqs. 11–12). The
//! problem is a non-convex integer program, so Algorithm 1 searches the
//! band of worker counts bounded by Theorem 4.1 (Eqs. 13–14) for every
//! instance type, starting from the minimum PS count (Eqs. 18/22) — the
//! paper shows empirically that extra PS nodes reduce cost efficiency, so
//! the PS count is escalated only when no feasible plan exists at the
//! minimum (this is how the 2-PS plans of Figs. 12/13 arise).
//!
//! A headroom factor (default 0.9) tightens the deadline the planner
//! aims for: the prototype must *meet* goals despite a few percent of
//! run-to-run variance (the paper "basically meets" its goals; we prefer
//! to clear them).

use crate::loss_model::FittedLossModel;
use crate::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use crate::profiler::ProfileData;
use cynthia_cloud::catalog::Catalog;
use cynthia_cloud::instance::InstanceType;
use cynthia_models::SyncMode;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The user-facing training performance goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Goal {
    /// Objective training time `T_g`, seconds.
    pub deadline_secs: f64,
    /// Objective training loss `l_g`.
    pub target_loss: f64,
}

/// Planner knobs (mostly for ablations; defaults follow the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerOptions {
    /// Stop at the first feasible worker count per type (Alg. 1's
    /// `break`); when `false`, scan the whole Theorem 4.1 band and keep
    /// the cheapest feasible point.
    pub first_feasible: bool,
    /// Use the Theorem 4.1 bounds to narrow the search. When `false`,
    /// scan `1..=max_workers` (the `ablation_bounds` benchmark measures
    /// what the bounds buy).
    pub use_bounds: bool,
    /// Hard cap on workers considered.
    pub max_workers: u32,
    /// Plan against `deadline · headroom` to absorb run-to-run variance.
    pub headroom: f64,
    /// How many extra PS nodes beyond the Theorem 4.1 minimum may be
    /// tried when the minimum is infeasible.
    pub max_ps_escalation: u32,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            // Scan the whole (small) Theorem 4.1 band and keep the
            // cheapest feasible point: Eq. (8) asks for the *minimum*
            // monetary cost, and the band interior (the comp/comm balance
            // point of Fig. 3) is often cheaper than the smallest
            // feasible cluster.
            first_feasible: false,
            use_bounds: true,
            max_workers: 64,
            headroom: 0.9,
            max_ps_escalation: 3,
        }
    }
}

/// A concrete provisioning decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Catalog name of the chosen instance type.
    pub type_name: String,
    /// Worker count `n` of the chosen cluster.
    pub n_workers: u32,
    /// Parameter-server count of the chosen cluster.
    pub n_ps: u32,
    /// Iterations the plan budgets for (total for BSP, per-worker for
    /// ASP — the paper's `s`).
    pub iterations: u64,
    /// Total global updates implied (equals `iterations` for BSP,
    /// `iterations · n_workers` for ASP).
    pub total_updates: u64,
    /// Predicted duration of one iteration (Eqs. 3/7), seconds.
    pub predicted_iter_time: f64,
    /// Predicted end-to-end training time, seconds.
    pub predicted_time: f64,
    /// Eq. (8) cost at the predicted runtime, $.
    pub predicted_cost: f64,
    /// Number of candidate points Alg. 1 evaluated (complexity metric,
    /// Sec. 5.3).
    pub candidates_evaluated: u32,
}

/// Theorem 4.1 quantities for one instance type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerBounds {
    /// Theorem 4.1 lower worker bound (Eq. 13/21).
    pub n_lower: u32,
    /// Theorem 4.1 upper worker bound (Eq. 14/22) at the minimum PS count.
    pub n_upper: u32,
    /// Minimum PS count `ceil(n_upper / r)` (Eq. 18).
    pub n_ps: u32,
    /// Eq. (12) maximum worker:PS provisioning ratio.
    pub r: f64,
    /// Eq. (17)'s updated ratio `u` (BSP) or `r` (ASP), used when
    /// escalating the PS count.
    ratio: f64,
    /// Inputs needed to recompute the upper bound for a larger PS count.
    balance_coeff: f64,
}

impl WorkerBounds {
    /// Eq. (19)/(23): the upper bound for an escalated PS count.
    pub fn upper_for(&self, n_ps: u32) -> u32 {
        let by_ratio = self.ratio * n_ps as f64;
        let upper = if self.balance_coeff.is_finite() {
            by_ratio.min((self.balance_coeff * n_ps as f64).sqrt())
        } else {
            by_ratio
        };
        (upper.ceil() as u32).max(self.n_lower)
    }
}

/// Eq. (12): the maximum worker:PS ratio that keeps the PS un-bottlenecked
/// — `min(c_base·c_ps/(c_prof·c_wk), b_ps·c_base/(b_prof·c_wk))`.
pub fn max_provision_ratio(profile: &ProfileData, ty: &InstanceType) -> f64 {
    let cb = profile.c_base_gflops;
    let cpu = cb * ty.node_gflops / (profile.c_prof_gflops * ty.core_gflops);
    let net = ty.nic_mbps * cb / (profile.b_prof_mbps * ty.core_gflops);
    cpu.min(net).max(1.0)
}

/// Theorem 4.1: worker-count bounds and the minimum PS count for one
/// instance type under the (headroom-adjusted) goal. Returns `None` when
/// the loss target is unreachable (at or below the fitted floor β1).
///
/// ```
/// use cynthia_core::provisioner::{worker_bounds, Goal};
/// use cynthia_core::{profile_workload, FittedLossModel};
/// use cynthia_cloud::default_catalog;
/// use cynthia_models::Workload;
///
/// let catalog = default_catalog();
/// let workload = Workload::cifar10_bsp();
/// let m4 = catalog.expect("m4.xlarge");
/// let profile = profile_workload(&workload, m4, 7);
/// let loss = FittedLossModel {
///     sync: workload.sync,
///     beta0: workload.convergence.beta0,
///     beta1: workload.convergence.beta1,
///     r_squared: 1.0,
/// };
/// let goal = Goal { deadline_secs: 7200.0, target_loss: 0.8 };
/// let b = worker_bounds(&profile, &loss, m4, &goal).expect("reachable");
/// // The Theorem 4.1 band is non-empty and the PS count keeps the
/// // worker:PS ratio within Eq. (12)'s cap.
/// assert!(1 <= b.n_lower && b.n_lower <= b.n_upper);
/// assert!(b.n_upper as f64 <= b.r * b.n_ps as f64 + 1.0);
///
/// // An unreachable loss target (at the fitted floor β1) yields None.
/// let impossible = Goal { deadline_secs: 7200.0, target_loss: loss.beta1 };
/// assert!(worker_bounds(&profile, &loss, m4, &impossible).is_none());
/// ```
pub fn worker_bounds(
    profile: &ProfileData,
    loss: &FittedLossModel,
    ty: &InstanceType,
    goal: &Goal,
) -> Option<WorkerBounds> {
    let r = max_provision_ratio(profile, ty);
    let w = profile.w_iter_gflops;
    let c_wk = ty.core_gflops;
    let g = profile.g_param_mb;
    let tg = goal.deadline_secs;
    match profile.sync {
        SyncMode::Bsp => {
            // Eq. (15): iterations for the target loss.
            let s = loss.bsp_iterations_for(goal.target_loss)? as f64;
            // Eq. (13): the deadline bounds per-worker compute.
            let n_lower = (w * s / (tg * c_wk)).ceil().max(1.0);
            // Eq. (17): updated ratio u = min(r, Tg·b_ps/(2·s·g)).
            let u = r.min(tg * ty.nic_mbps / (2.0 * s * g)).max(1.0);
            // Eq. (18): minimum PS count.
            let n_ps = (n_lower / u).ceil().max(1.0);
            // Eq. (19)'s compute/communication balance coefficient
            // (squared upper bound per PS node).
            let balance_coeff = w * ty.nic_mbps / (2.0 * g * c_wk);
            let mut bounds = WorkerBounds {
                n_lower: n_lower as u32,
                n_upper: 0,
                n_ps: n_ps as u32,
                r,
                ratio: u,
                balance_coeff,
            };
            bounds.n_upper = bounds.upper_for(bounds.n_ps);
            Some(bounds)
        }
        SyncMode::Asp => {
            if goal.target_loss <= loss.beta1 {
                return None;
            }
            // Eq. (21): lower bound from the per-worker iteration share.
            let num = w * (loss.beta0 - loss.beta1);
            let n_lower = (num / (c_wk * tg * goal.target_loss))
                .powi(2)
                .ceil()
                .max(1.0);
            // Eq. (22): minimum PS count; Eq. (23): upper bound.
            let n_ps = (n_lower / r).ceil().max(1.0);
            let mut bounds = WorkerBounds {
                n_lower: n_lower as u32,
                n_upper: 0,
                n_ps: n_ps as u32,
                r,
                ratio: r,
                balance_coeff: f64::INFINITY,
            };
            bounds.n_upper = bounds.upper_for(bounds.n_ps);
            Some(bounds)
        }
    }
}

/// Memoized performance-model evaluations for the band search.
///
/// Alg. 1 (and the elastic replanner built on it) evaluates the Sec. 3
/// model (Eqs. 2–7) at many `(instance type, n_workers, n_ps)` points, and
/// the same points recur across goals, PS-escalation waves, and repeated
/// `plan` calls against one profile. The cache memoizes the *exact* model
/// output keyed on `(type, n_workers, n_ps, total_updates)`, so a hit
/// returns bit-identical numbers to a fresh evaluation — parallel and
/// cached searches stay equivalent to the serial path by construction.
///
/// A cache is only valid for a single `(model, profile)` pairing: create
/// one per fitted profile and share it across goals/threads (all methods
/// take `&self`).
#[derive(Debug, Default)]
pub struct EvalCache {
    times: Mutex<HashMap<(String, u32, u32, u64), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `model.predict_time` for a homogeneous `(ty, n, n_ps)` shape,
    /// memoized on `(ty.name, n, n_ps, total_updates)`.
    pub fn predict_time(
        &self,
        model: &dyn PerfModel,
        ty: &InstanceType,
        n: u32,
        n_ps: u32,
        total_updates: u64,
    ) -> f64 {
        let key = (ty.name.clone(), n, n_ps, total_updates);
        if let Some(&t) = self.times.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::obs::cache_hit();
            return t;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::cache_miss();
        let shape = ClusterShape::homogeneous(ty, n, n_ps);
        let t = model.predict_time(&shape, total_updates);
        self.times.lock().insert(key, t);
        t
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to evaluate the model.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Number of distinct `(type, n, n_ps, updates)` points cached.
    pub fn len(&self) -> usize {
        self.times.lock().len()
    }

    /// Whether the cache holds no evaluations yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated `(n_workers, n_ps)` point of the Alg. 1 band search.
#[derive(Debug, Clone, Copy)]
struct CandidateEval {
    n: u32,
    n_ps: u32,
    /// Eq. 15/20 iteration budget, and the implied global updates.
    s: u64,
    total_updates: u64,
    /// Sec. 3 model's predicted runtime, seconds.
    time: f64,
    /// Eq. (8) cost; only meaningful when `feasible`.
    cost: f64,
    /// Eq. (9): predicted runtime clears the (headroom-adjusted) deadline.
    feasible: bool,
}

/// Evaluates one candidate point. Returns `None` when the loss target is
/// unreachable (which `worker_bounds` already screens, so in practice this
/// mirrors the serial path's unreachable-target early return).
#[allow(clippy::too_many_arguments)]
fn evaluate_candidate(
    model: &dyn PerfModel,
    profile: &ProfileData,
    loss: &FittedLossModel,
    ty: &InstanceType,
    effective: &Goal,
    n: u32,
    n_ps: u32,
    cache: Option<&EvalCache>,
) -> Option<CandidateEval> {
    // Iterations to reach the loss target (Eq. 15 / Eq. 20).
    let (s, total_updates) = match profile.sync {
        SyncMode::Bsp => {
            let s = loss.bsp_iterations_for(effective.target_loss)?;
            (s, s)
        }
        SyncMode::Asp => {
            let s = loss.asp_iterations_per_worker(effective.target_loss, n)?;
            (s, s * n as u64)
        }
    };
    let time = match cache {
        Some(c) => c.predict_time(model, ty, n, n_ps, total_updates),
        None => {
            let shape = ClusterShape::homogeneous(ty, n, n_ps);
            model.predict_time(&shape, total_updates)
        }
    };
    let feasible = time < effective.deadline_secs;
    let cost = if feasible {
        cynthia_cloud::billing::static_cluster_cost(
            ty.price_per_hour,
            n,
            ty.price_per_hour,
            n_ps,
            time,
        )
    } else {
        f64::INFINITY
    };
    Some(CandidateEval {
        n,
        n_ps,
        s,
        total_updates,
        time,
        cost,
        feasible,
    })
}

/// Materializes the chosen candidate as a [`Plan`].
fn plan_from(model: &dyn PerfModel, ty: &InstanceType, c: &CandidateEval) -> Plan {
    let shape = ClusterShape::homogeneous(ty, c.n, c.n_ps);
    Plan {
        type_name: ty.name.clone(),
        n_workers: c.n,
        n_ps: c.n_ps,
        iterations: c.s,
        total_updates: c.total_updates,
        predicted_iter_time: model.iter_time(&shape),
        predicted_time: c.time,
        predicted_cost: c.cost,
        candidates_evaluated: 0,
    }
}

/// Algorithm 1 with the Cynthia performance model.
///
/// ```
/// use cynthia_core::provisioner::{plan, Goal, PlannerOptions};
/// use cynthia_core::{profile_workload, FittedLossModel};
/// use cynthia_cloud::default_catalog;
/// use cynthia_models::Workload;
///
/// let catalog = default_catalog();
/// let workload = Workload::cifar10_bsp();
/// let profile = profile_workload(&workload, catalog.expect("m4.xlarge"), 7);
/// let loss = FittedLossModel {
///     sync: workload.sync,
///     beta0: workload.convergence.beta0,
///     beta1: workload.convergence.beta1,
///     r_squared: 1.0,
/// };
/// let goal = Goal { deadline_secs: 7200.0, target_loss: 0.8 };
/// let plan = plan(&profile, &loss, &catalog, &goal, &PlannerOptions::default())
///     .expect("a 2-hour cifar-10 goal is feasible");
/// assert!(plan.predicted_time < goal.deadline_secs);
/// assert!(plan.n_workers >= 1 && plan.n_ps >= 1);
/// ```
pub fn plan(
    profile: &ProfileData,
    loss: &FittedLossModel,
    catalog: &Catalog,
    goal: &Goal,
    options: &PlannerOptions,
) -> Option<Plan> {
    let model = CynthiaModel::new(profile.clone());
    plan_with_model(&model, profile, loss, catalog, goal, options)
}

/// [`plan`], with the band search fanned out across instance types and
/// candidate `(n_workers, n_ps)` points (and model evaluations memoized in
/// a fresh [`EvalCache`]). Bit-identical to [`plan`] — see
/// `tests/parallel_equivalence.rs`.
pub fn plan_parallel(
    profile: &ProfileData,
    loss: &FittedLossModel,
    catalog: &Catalog,
    goal: &Goal,
    options: &PlannerOptions,
) -> Option<Plan> {
    let model = CynthiaModel::new(profile.clone());
    let cache = EvalCache::new();
    plan_parallel_with_cache(&model, profile, loss, catalog, goal, options, &cache)
}

fn check_goal(
    profile: &ProfileData,
    loss: &FittedLossModel,
    goal: &Goal,
    options: &PlannerOptions,
) {
    assert!(goal.deadline_secs > 0.0, "deadline must be positive");
    assert_eq!(profile.sync, loss.sync, "profile/loss sync mismatch");
    assert!(
        options.headroom > 0.0 && options.headroom <= 1.0,
        "headroom must be in (0, 1]"
    );
}

/// Algorithm 1 driven by an arbitrary performance model (the "modified
/// Optimus" comparison of footnote 4 substitutes the baseline model
/// here). Returns the cheapest feasible plan, or `None`.
///
/// This is the serial reference implementation; [`plan_parallel`] and
/// [`plan_parallel_with_cache`] reproduce its output bit for bit.
pub fn plan_with_model(
    model: &dyn PerfModel,
    profile: &ProfileData,
    loss: &FittedLossModel,
    catalog: &Catalog,
    goal: &Goal,
    options: &PlannerOptions,
) -> Option<Plan> {
    check_goal(profile, loss, goal, options);
    let _plan_guard = crate::obs::plan_started("provision.plan");
    let effective = Goal {
        deadline_secs: goal.deadline_secs * options.headroom,
        target_loss: goal.target_loss,
    };
    let mut best: Option<Plan> = None;
    let mut evaluated = 0u32;

    for ty in catalog.types() {
        let bounds = match worker_bounds(profile, loss, ty, &effective) {
            Some(b) => b,
            None => continue,
        };
        let _type_span = crate::obs::type_span(&ty.name);
        crate::obs::band_computed(bounds.n_lower, bounds.upper_for(bounds.n_ps));
        let mut found_for_type = false;
        for extra_ps in 0..=options.max_ps_escalation {
            if found_for_type {
                break; // prefer the minimum PS count (Sec. 5.1).
            }
            let n_ps = bounds.n_ps + extra_ps;
            let (lo, hi) = if options.use_bounds {
                (bounds.n_lower, bounds.upper_for(n_ps))
            } else {
                (1, options.max_workers)
            };
            for n in lo..=hi.min(options.max_workers) {
                evaluated += 1;
                let c = evaluate_candidate(model, profile, loss, ty, &effective, n, n_ps, None)?;
                if !c.feasible {
                    continue;
                }
                found_for_type = true;
                let better = best
                    .as_ref()
                    .map(|b| c.cost < b.predicted_cost)
                    .unwrap_or(true);
                if better {
                    best = Some(plan_from(model, ty, &c));
                }
                if options.first_feasible {
                    break; // Alg. 1 line 11: smallest feasible n per type.
                }
            }
        }
    }
    crate::obs::plan_finished(evaluated, best.is_some());
    best.map(|mut p| {
        p.candidates_evaluated = evaluated;
        p
    })
}

/// The parallel band search behind [`plan_parallel`], against an arbitrary
/// (`Sync`) performance model and a caller-owned [`EvalCache`].
///
/// The search proceeds in PS-escalation waves, mirroring Alg. 1's "extra
/// PS only when the minimum is infeasible" rule: in each wave, the
/// still-unresolved instance types contribute their whole Theorem 4.1
/// worker band as a flat candidate list, the list is evaluated in parallel
/// (through the cache), and the *serial* selection logic is then replayed
/// over the evaluated results — so the chosen plan, its predicted numbers,
/// and even `candidates_evaluated` match the serial path bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn plan_parallel_with_cache(
    model: &(dyn PerfModel + Sync),
    profile: &ProfileData,
    loss: &FittedLossModel,
    catalog: &Catalog,
    goal: &Goal,
    options: &PlannerOptions,
    cache: &EvalCache,
) -> Option<Plan> {
    check_goal(profile, loss, goal, options);
    let _plan_guard = crate::obs::plan_started("provision.plan_parallel");
    let effective = Goal {
        deadline_secs: goal.deadline_secs * options.headroom,
        target_loss: goal.target_loss,
    };

    let types: Vec<&InstanceType> = catalog.types().iter().collect();
    let bounds: Vec<Option<WorkerBounds>> = types
        .par_iter()
        .map(|ty| worker_bounds(profile, loss, ty, &effective))
        .collect();
    for b in bounds.iter().flatten() {
        crate::obs::band_computed(b.n_lower, b.upper_for(b.n_ps));
    }

    // Per type: the serial algorithm's outcome, filled in over the waves.
    struct TypeState {
        resolved: bool,
        evaluated: u32,
        best: Option<CandidateEval>,
    }
    let mut states: Vec<TypeState> = types
        .iter()
        .map(|_| TypeState {
            resolved: false,
            evaluated: 0,
            best: None,
        })
        .collect();

    let mut unreachable = false;
    for extra_ps in 0..=options.max_ps_escalation {
        // Wave candidate list: every unresolved type's full worker band at
        // this PS level, flattened for the parallel fan-out.
        let mut wave: Vec<(usize, u32, u32)> = Vec::new();
        for (ti, b) in bounds.iter().enumerate() {
            let Some(b) = b else { continue };
            if states[ti].resolved {
                continue;
            }
            let n_ps = b.n_ps + extra_ps;
            let (lo, hi) = if options.use_bounds {
                (b.n_lower, b.upper_for(n_ps))
            } else {
                (1, options.max_workers)
            };
            for n in lo..=hi.min(options.max_workers) {
                wave.push((ti, n, n_ps));
            }
        }
        if wave.is_empty() {
            break;
        }
        let evals: Vec<Option<CandidateEval>> = wave
            .par_iter()
            .map(|&(ti, n, n_ps)| {
                evaluate_candidate(
                    model,
                    profile,
                    loss,
                    types[ti],
                    &effective,
                    n,
                    n_ps,
                    Some(cache),
                )
            })
            .collect();

        // Replay the serial control flow over the evaluated wave: count
        // candidates up to (and including) the serial break point, keep
        // the within-type best under the same strict-< rule.
        let mut i = 0;
        while i < wave.len() {
            let ti = wave[i].0;
            let mut stopped = false;
            while i < wave.len() && wave[i].0 == ti {
                let eval = &evals[i];
                i += 1;
                if stopped {
                    continue; // serial would have broken out already
                }
                states[ti].evaluated += 1;
                let Some(c) = eval else {
                    unreachable = true;
                    stopped = true;
                    continue;
                };
                if !c.feasible {
                    continue;
                }
                states[ti].resolved = true;
                let better = states[ti]
                    .best
                    .as_ref()
                    .map(|b| c.cost < b.cost)
                    .unwrap_or(true);
                if better {
                    states[ti].best = Some(*c);
                }
                if options.first_feasible {
                    stopped = true;
                }
            }
        }
        if unreachable {
            // Serial `plan_with_model` returns `None` outright when the
            // loss target is unreachable mid-scan.
            return None;
        }
    }

    // Merge per-type bests in catalog order under strict < — identical to
    // the serial scan's running global best.
    let evaluated: u32 = states.iter().map(|s| s.evaluated).sum();
    let mut best: Option<(usize, CandidateEval)> = None;
    for (ti, s) in states.iter().enumerate() {
        if let Some(c) = &s.best {
            let better = best.as_ref().map(|(_, b)| c.cost < b.cost).unwrap_or(true);
            if better {
                best = Some((ti, *c));
            }
        }
    }
    crate::obs::plan_finished(evaluated, best.is_some());
    best.map(|(ti, c)| {
        let mut p = plan_from(model, types[ti], &c);
        p.candidates_evaluated = evaluated;
        p
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_workload;
    use cynthia_cloud::default_catalog;
    use cynthia_models::Workload;

    fn setup(w: &Workload) -> (ProfileData, FittedLossModel) {
        let cat = default_catalog();
        let profile = profile_workload(w, cat.expect("m4.xlarge"), 5);
        let c = w.convergence;
        let loss = FittedLossModel {
            sync: w.sync,
            beta0: c.beta0,
            beta1: c.beta1,
            r_squared: 1.0,
        };
        (profile, loss)
    }

    #[test]
    fn bounds_are_ordered_and_ratio_sane() {
        let w = Workload::cifar10_bsp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let goal = Goal {
            deadline_secs: 7200.0,
            target_loss: 0.8,
        };
        let b = worker_bounds(&p, &l, cat.expect("m4.xlarge"), &goal).unwrap();
        assert!(b.n_lower >= 1);
        assert!(b.n_upper >= b.n_lower, "{b:?}");
        assert!(b.n_ps >= 1);
        assert!(b.r >= 1.0);
        // Escalating PS count relaxes the upper bound.
        assert!(b.upper_for(b.n_ps + 1) >= b.n_upper);
    }

    #[test]
    fn unreachable_loss_yields_no_bounds() {
        let w = Workload::cifar10_bsp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let goal = Goal {
            deadline_secs: 7200.0,
            target_loss: 0.1, // below β1 = 0.45
        };
        assert!(worker_bounds(&p, &l, cat.expect("m4.xlarge"), &goal).is_none());
        assert!(plan(&p, &l, &cat, &goal, &PlannerOptions::default()).is_none());
    }

    #[test]
    fn tighter_deadline_needs_more_workers() {
        let w = Workload::cifar10_bsp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let opts = PlannerOptions::default();
        let relaxed = plan(
            &p,
            &l,
            &cat,
            &Goal {
                deadline_secs: 10800.0,
                target_loss: 0.8,
            },
            &opts,
        )
        .unwrap();
        let tight = plan(
            &p,
            &l,
            &cat,
            &Goal {
                deadline_secs: 5400.0,
                target_loss: 0.8,
            },
            &opts,
        )
        .unwrap();
        assert!(
            tight.n_workers >= relaxed.n_workers,
            "tight {tight:?} vs relaxed {relaxed:?}"
        );
        assert!(tight.predicted_time < 5400.0 * opts.headroom);
        assert!(relaxed.predicted_time < 10800.0 * opts.headroom);
    }

    #[test]
    fn plan_meets_deadline_by_construction() {
        for w in [Workload::cifar10_bsp(), Workload::vgg19_asp()] {
            let (p, l) = setup(&w);
            let cat = default_catalog();
            let goal = Goal {
                deadline_secs: 5400.0,
                target_loss: 0.8,
            };
            let plan = plan(&p, &l, &cat, &goal, &PlannerOptions::default())
                .unwrap_or_else(|| panic!("no plan for {}", w.id()));
            assert!(plan.predicted_time < goal.deadline_secs);
            assert!(plan.predicted_cost > 0.0);
            assert!(plan.n_workers >= 1 && plan.n_ps >= 1);
        }
    }

    #[test]
    fn asp_total_updates_account_for_staleness() {
        let w = Workload::vgg19_asp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let goal = Goal {
            deadline_secs: 5400.0,
            target_loss: 0.8,
        };
        let plan = plan(&p, &l, &cat, &goal, &PlannerOptions::default()).unwrap();
        assert_eq!(plan.total_updates, plan.iterations * plan.n_workers as u64);
    }

    #[test]
    fn tight_asp_goal_escalates_the_ps_count() {
        // A 30-minute VGG-19 goal cannot clear the single-PS NIC
        // saturation: the planner must provision a second PS (Fig. 13's
        // "2ps" plans).
        let w = Workload::vgg19_asp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let goal = Goal {
            deadline_secs: 1800.0,
            target_loss: 0.8,
        };
        let plan = plan(&p, &l, &cat, &goal, &PlannerOptions::default())
            .expect("tight goal should be feasible with PS escalation");
        assert!(
            plan.n_ps >= 2 || plan.n_workers <= 7,
            "tight goal should either escalate PS or stay clear of saturation: {plan:?}"
        );
        assert!(plan.predicted_time < 1800.0 * 0.9);
    }

    #[test]
    fn full_scan_never_beats_itself_with_bounds_on_cost_feasibility() {
        // The bounds prune the space; the best full-scan plan must be at
        // least as cheap, and both must be feasible.
        let w = Workload::cifar10_bsp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let goal = Goal {
            deadline_secs: 7200.0,
            target_loss: 0.8,
        };
        let bounded = plan(&p, &l, &cat, &goal, &PlannerOptions::default()).unwrap();
        let full = plan(
            &p,
            &l,
            &cat,
            &goal,
            &PlannerOptions {
                first_feasible: false,
                use_bounds: false,
                max_workers: 40,
                ..PlannerOptions::default()
            },
        )
        .unwrap();
        assert!(full.predicted_cost <= bounded.predicted_cost * 1.001);
        // And the bounded search evaluates far fewer candidates.
        assert!(
            bounded.candidates_evaluated * 3 < full.candidates_evaluated,
            "bounded {} vs full {}",
            bounded.candidates_evaluated,
            full.candidates_evaluated
        );
    }

    #[test]
    fn ratio_prevents_ps_bottleneck_in_plans() {
        let w = Workload::mnist_bsp();
        let (p, l) = setup(&w);
        let cat = default_catalog();
        let goal = Goal {
            deadline_secs: 600.0,
            target_loss: 0.1,
        };
        if let Some(plan) = plan(&p, &l, &cat, &goal, &PlannerOptions::default()) {
            let ty = cat.expect(&plan.type_name);
            let r = max_provision_ratio(&p, ty);
            assert!(
                (plan.n_workers as f64) <= r * plan.n_ps as f64 + 1.0,
                "plan violates Eq. (11): {plan:?}, r={r}"
            );
        }
    }
}
