//! The empirical DDNN loss model (Eq. 1) and its calibration.
//!
//! Summary 2 of the paper: under SGD, training loss is inversely
//! proportional to the iteration count — `β0/s + β1` for BSP — and ASP's
//! parameter staleness scales the numerator by `√n`:
//! `β0·√n/s + β1`. The coefficients are obtained by ordinary least squares
//! on the loss curve of one training run (the paper: "the loss function can
//! be obtained by executing the DDNN training job once, as the DDNN
//! workloads are repeatedly executed in production clusters").

use cynthia_models::SyncMode;
use serde::{Deserialize, Serialize};

/// A fitted instance of Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedLossModel {
    /// Synchronization mode the curve was fitted under (β0's staleness
    /// scaling differs between BSP and ASP).
    pub sync: SyncMode,
    /// Convergence-speed coefficient `β0` of Eq. (1).
    pub beta0: f64,
    /// Asymptotic loss floor `β1` of Eq. (1).
    pub beta1: f64,
    /// Coefficient of determination of the fit (diagnostic).
    pub r_squared: f64,
}

impl FittedLossModel {
    /// Fits Eq. (1) to a single loss curve recorded with `n_workers`.
    /// `curve` holds `(global update count, loss)` samples.
    ///
    /// Early-training samples sitting on the initial-loss plateau (real
    /// curves are bounded by the loss at initialization, so the hyperbola
    /// only describes the post-warm-up regime) are excluded: any sample
    /// within 3% of the maximum observed loss is treated as warm-up.
    ///
    /// # Panics
    /// Panics if fewer than two usable samples are provided.
    ///
    /// ```
    /// use cynthia_core::FittedLossModel;
    /// use cynthia_models::SyncMode;
    ///
    /// // A clean Eq. (1) curve: l(s) = 120/s + 0.35.
    /// let curve: Vec<(u64, f64)> = (1..=60)
    ///     .map(|i| (10 * i, 120.0 / (10.0 * i as f64) + 0.35))
    ///     .collect();
    /// let fit = FittedLossModel::fit(SyncMode::Bsp, &curve, 4);
    /// assert!((fit.beta0 - 120.0).abs() < 1e-6);
    /// assert!((fit.beta1 - 0.35).abs() < 1e-9);
    /// assert!(fit.r_squared > 0.9999);
    /// ```
    pub fn fit(sync: SyncMode, curve: &[(u64, f64)], n_workers: u32) -> FittedLossModel {
        let pairs = Self::usable(sync, curve, n_workers);
        Self::fit_pairs(sync, &pairs)
    }

    fn usable(sync: SyncMode, curve: &[(u64, f64)], n_workers: u32) -> Vec<(f64, f64)> {
        // The plateau is a *prefix* of the curve: drop everything up to
        // (and including) the last sample still within 7% of the maximum.
        // Samples there have extreme leverage in 1/s space — a handful of
        // capped points would otherwise dominate the slope.
        let max_loss = curve
            .iter()
            .map(|(_, l)| *l)
            .fold(f64::NEG_INFINITY, f64::max);
        let cutoff = max_loss * 0.93;
        let first_good = curve
            .iter()
            .rposition(|(_, l)| *l >= cutoff)
            .map(|p| p + 1)
            .unwrap_or(0);
        let filtered: Vec<(f64, f64)> = curve[first_good..]
            .iter()
            .filter(|(s, _)| *s > 0)
            .map(|(s, l)| (basis(sync, *s as f64, n_workers), *l))
            .collect();
        if filtered.len() >= 2 {
            filtered
        } else {
            curve
                .iter()
                .filter(|(s, _)| *s > 0)
                .map(|(s, l)| (basis(sync, *s as f64, n_workers), *l))
                .collect()
        }
    }

    /// Joint fit over curves from runs with different worker counts
    /// (useful for ASP, where the √n factor is shared — Fig. 4(b) fits).
    pub fn fit_multi(sync: SyncMode, curves: &[(u32, &[(u64, f64)])]) -> FittedLossModel {
        let pairs: Vec<(f64, f64)> = curves
            .iter()
            .flat_map(|(n, curve)| Self::usable(sync, curve, *n))
            .collect();
        Self::fit_pairs(sync, &pairs)
    }

    fn fit_pairs(sync: SyncMode, pairs: &[(f64, f64)]) -> FittedLossModel {
        assert!(
            pairs.len() >= 2,
            "loss fit needs at least two samples, got {}",
            pairs.len()
        );
        let n = pairs.len() as f64;
        let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = pairs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
        let sxy: f64 = pairs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
        assert!(sxx > 0.0, "degenerate loss curve (constant basis)");
        let beta0 = sxy / sxx;
        let beta1 = mean_y - beta0 * mean_x;
        let ss_tot: f64 = pairs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = pairs
            .iter()
            .map(|(x, y)| (y - (beta0 * x + beta1)).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        FittedLossModel {
            sync,
            beta0,
            beta1,
            r_squared,
        }
    }

    /// Predicted loss after `s` global updates with `n` workers.
    pub fn predict(&self, s: u64, n_workers: u32) -> f64 {
        if s == 0 {
            return f64::INFINITY;
        }
        self.beta0 * basis(self.sync, s as f64, n_workers) + self.beta1
    }

    /// BSP: Eq. (15) — iterations needed for the target loss:
    /// `s = ⌈β0 / (l_g − β1)⌉`. Returns `None` if the target is at or
    /// below the fitted floor β1.
    pub fn bsp_iterations_for(&self, target_loss: f64) -> Option<u64> {
        assert_eq!(self.sync, SyncMode::Bsp, "BSP inversion on an ASP model");
        if target_loss <= self.beta1 {
            return None;
        }
        Some((self.beta0 / (target_loss - self.beta1)).ceil().max(1.0) as u64)
    }

    /// ASP — *per-worker* iterations with `n` workers to reach the
    /// target: the exact inversion of Eq. (1),
    /// `s = ⌈β0 / (√n · (l_g − β1))⌉`.
    ///
    /// The paper's printed Eq. (20), `β0/(l_g·√n) − β1/n`, is a
    /// first-order approximation that under-budgets iterations by up to
    /// 2× when β1 is a sizable fraction of `l_g` — enough to miss the
    /// loss goal outright — so this implementation inverts exactly (the
    /// predicted loss at the returned count always meets the target;
    /// see the round-trip tests).
    pub fn asp_iterations_per_worker(&self, target_loss: f64, n_workers: u32) -> Option<u64> {
        assert_eq!(self.sync, SyncMode::Asp, "ASP inversion on a BSP model");
        if target_loss <= self.beta1 {
            return None;
        }
        let n = n_workers as f64;
        let s = self.beta0 / (n.sqrt() * (target_loss - self.beta1));
        Some(s.ceil().max(1.0) as u64)
    }

    /// Exact inversion of Eq. (1): *total* updates to reach the target.
    pub fn total_updates_for(&self, target_loss: f64, n_workers: u32) -> Option<u64> {
        if target_loss <= self.beta1 {
            return None;
        }
        let stale = match self.sync {
            SyncMode::Bsp => 1.0,
            SyncMode::Asp => (n_workers as f64).sqrt(),
        };
        Some(
            (self.beta0 * stale / (target_loss - self.beta1))
                .ceil()
                .max(1.0) as u64,
        )
    }
}

fn basis(sync: SyncMode, s: f64, n_workers: u32) -> f64 {
    match sync {
        SyncMode::Bsp => 1.0 / s,
        SyncMode::Asp => (n_workers as f64).sqrt() / s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_curve(sync: SyncMode, beta0: f64, beta1: f64, n: u32, count: u64) -> Vec<(u64, f64)> {
        (1..=count)
            .step_by(7)
            .map(|s| {
                let stale = match sync {
                    SyncMode::Bsp => 1.0,
                    SyncMode::Asp => (n as f64).sqrt(),
                };
                (s * 10, beta0 * stale / (s as f64 * 10.0) + beta1)
            })
            .collect()
    }

    #[test]
    fn recovers_bsp_coefficients_exactly_on_clean_data() {
        let curve = synth_curve(SyncMode::Bsp, 700.0, 0.45, 1, 500);
        let m = FittedLossModel::fit(SyncMode::Bsp, &curve, 1);
        assert!((m.beta0 - 700.0).abs() < 1e-6, "beta0 {}", m.beta0);
        assert!((m.beta1 - 0.45).abs() < 1e-9, "beta1 {}", m.beta1);
        assert!(m.r_squared > 0.999_999);
    }

    #[test]
    fn recovers_asp_coefficients_with_staleness_basis() {
        let curve = synth_curve(SyncMode::Asp, 450.0, 0.45, 9, 300);
        let m = FittedLossModel::fit(SyncMode::Asp, &curve, 9);
        assert!((m.beta0 - 450.0).abs() < 1e-6);
        assert!((m.beta1 - 0.45).abs() < 1e-9);
    }

    #[test]
    fn multi_curve_asp_fit_shares_coefficients() {
        let c4 = synth_curve(SyncMode::Asp, 450.0, 0.45, 4, 300);
        let c9 = synth_curve(SyncMode::Asp, 450.0, 0.45, 9, 300);
        let m =
            FittedLossModel::fit_multi(SyncMode::Asp, &[(4, c4.as_slice()), (9, c9.as_slice())]);
        assert!((m.beta0 - 450.0).abs() < 1e-6);
    }

    #[test]
    fn fit_tolerates_noise() {
        let mut curve = synth_curve(SyncMode::Bsp, 700.0, 0.45, 1, 500);
        for (i, (_, l)) in curve.iter_mut().enumerate() {
            *l *= 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let m = FittedLossModel::fit(SyncMode::Bsp, &curve, 1);
        assert!((m.beta0 - 700.0).abs() / 700.0 < 0.1);
        assert!((m.beta1 - 0.45).abs() < 0.05);
    }

    #[test]
    fn bsp_inversion_matches_eq15() {
        let m = FittedLossModel {
            sync: SyncMode::Bsp,
            beta0: 700.0,
            beta1: 0.45,
            r_squared: 1.0,
        };
        assert_eq!(m.bsp_iterations_for(0.8), Some(2000));
        assert_eq!(m.bsp_iterations_for(0.45), None);
        assert_eq!(m.bsp_iterations_for(0.2), None);
        // Round trip: predicted loss at the returned count meets the target.
        let s = m.bsp_iterations_for(0.7).unwrap();
        assert!(m.predict(s, 1) <= 0.7 + 1e-9);
    }

    #[test]
    fn asp_per_worker_iterations_shrink_with_more_workers() {
        let m = FittedLossModel {
            sync: SyncMode::Asp,
            beta0: 450.0,
            beta1: 0.45,
            r_squared: 1.0,
        };
        let s4 = m.asp_iterations_per_worker(0.6, 4).unwrap();
        let s9 = m.asp_iterations_per_worker(0.6, 9).unwrap();
        assert!(s9 < s4, "per-worker share shrinks: {s4} vs {s9}");
        // But the total grows with n (staleness penalty).
        let t4 = m.total_updates_for(0.6, 4).unwrap();
        let t9 = m.total_updates_for(0.6, 9).unwrap();
        assert!(t9 > t4);
        // Per-worker count is consistent with the exact total.
        assert_eq!(s4, t4.div_ceil(4));
        // Round trip: the loss at the implied total meets the target.
        assert!(m.predict(s9 * 9, 9) <= 0.6 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn fit_rejects_tiny_curves() {
        FittedLossModel::fit(SyncMode::Bsp, &[(10, 1.0)], 1);
    }
}
