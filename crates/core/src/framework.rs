//! The end-to-end Cynthia prototype (Sec. 5, "Cynthia prototype").
//!
//! Mirrors the paper's deployment: the *performance predictor* and
//! *resource provisioner* modules live on the master node; a submitted job
//! is profiled once on a baseline worker, the expected iteration count for
//! the objective loss is computed from the fitted loss function, a
//! cost-efficient plan is chosen, instances are provisioned through the
//! (simulated) cloud API, join the cluster with a kubeadm-style token, and
//! the job trains to completion while the billing meter runs.

use crate::loss_model::FittedLossModel;
use crate::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use crate::profiler::{profile_workload, ProfileData};
use crate::provisioner::{plan, Goal, Plan, PlannerOptions};
use cynthia_cloud::catalog::Catalog;
use cynthia_cloud::provisioner::{CloudProvider, ProvisionRequest};
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob, TrainingReport};
use serde::{Deserialize, Serialize};

/// Outcome of one submitted job, end to end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// The provisioning decision Alg. 1 produced for the goal.
    pub plan: Plan,
    /// The goal the job was submitted with.
    pub goal: Goal,
    /// Ground-truth training outcome on the provisioned cluster.
    pub training: TrainingReport,
    /// Eq. (8) monetary cost at the *actual* runtime, $.
    pub actual_cost: f64,
    /// Whether the actual training time met the deadline.
    pub met_deadline: bool,
    /// Whether the final loss met the target.
    pub met_loss: bool,
    /// kubeadm-style join token the cluster was assembled with.
    pub join_token: String,
    /// Wall-clock the planner itself took, seconds (Sec. 5.3 overhead).
    pub planning_seconds: f64,
}

/// The Cynthia scheduler: a catalog, a baseline type for profiling, and
/// simulation knobs.
#[derive(Debug, Clone)]
pub struct Cynthia {
    /// Instance types available to the planner.
    pub catalog: Catalog,
    /// Catalog name of the baseline type used for profiling.
    pub baseline_type: String,
    /// Master seed for profiling jitter and the training simulation.
    pub seed: u64,
    /// Simulation config used for the full training run.
    pub run_config: SimConfig,
    /// Knobs forwarded to Alg. 1.
    pub planner: PlannerOptions,
}

impl Cynthia {
    /// A scheduler over `catalog`, profiling on m4.xlarge like the paper.
    pub fn new(catalog: Catalog) -> Self {
        Cynthia {
            catalog,
            baseline_type: "m4.xlarge".into(),
            seed: 42,
            run_config: SimConfig::fast(42),
            planner: PlannerOptions::default(),
        }
    }

    /// Step 1: one-shot profiling on the baseline worker.
    pub fn profile(&self, workload: &Workload) -> ProfileData {
        let ty = self.catalog.expect(&self.baseline_type);
        profile_workload(workload, ty, self.seed)
    }

    /// Step 2: fit the loss model from one prior execution of the job
    /// ("the DDNN workloads are repeatedly executed in production
    /// clusters"): here, a reference run on a small cluster.
    pub fn fit_loss(&self, workload: &Workload, reference_workers: u32) -> FittedLossModel {
        let ty = self.catalog.expect(&self.baseline_type);
        let job = TrainJob {
            workload,
            cluster: ClusterSpec::homogeneous(ty, reference_workers, 1),
            config: SimConfig::fast(self.seed ^ 0x0010_55ff),
        };
        let report = simulate(&job);
        FittedLossModel::fit(workload.sync, &report.loss_curve, reference_workers)
    }

    /// Step 3: the provisioning plan for a goal.
    pub fn plan(&self, profile: &ProfileData, loss: &FittedLossModel, goal: &Goal) -> Option<Plan> {
        plan(profile, loss, &self.catalog, goal, &self.planner)
    }

    /// Steps 4–5: provision the plan, run the job, settle the bill.
    pub fn execute(
        &self,
        workload: &Workload,
        the_plan: &Plan,
        goal: &Goal,
        planning_seconds: f64,
    ) -> ExecutionReport {
        let mut provider = CloudProvider::new(self.catalog.clone());
        let cluster = provider
            .provision(
                0.0,
                &ProvisionRequest {
                    type_name: the_plan.type_name.clone(),
                    n_workers: the_plan.n_workers,
                    n_ps: the_plan.n_ps,
                },
            )
            .expect("plan references a catalog type");

        let ty = self.catalog.expect(&the_plan.type_name);
        let mut configured = workload.clone();
        configured.iterations = the_plan.total_updates;
        let job = TrainJob {
            workload: &configured,
            cluster: ClusterSpec::homogeneous(ty, the_plan.n_workers, the_plan.n_ps),
            config: self.run_config,
        };
        let training = simulate(&job);

        // Bill for the training span (the paper's Eq. 8 cost metric:
        // instance-hours of the training itself).
        let actual_cost = cynthia_cloud::billing::static_cluster_cost(
            ty.price_per_hour,
            the_plan.n_workers,
            ty.price_per_hour,
            the_plan.n_ps,
            training.total_time,
        );
        provider.teardown(cluster.ready_at + training.total_time, &cluster);

        ExecutionReport {
            plan: the_plan.clone(),
            goal: *goal,
            met_deadline: training.total_time <= goal.deadline_secs,
            met_loss: training.final_loss <= goal.target_loss * 1.05,
            actual_cost,
            training,
            join_token: cluster.join_token,
            planning_seconds,
        }
    }

    /// The whole pipeline for one job submission.
    pub fn run_end_to_end(&self, workload: &Workload, goal: &Goal) -> Option<ExecutionReport> {
        let profile = self.profile(workload);
        let loss = self.fit_loss(workload, 4);
        let t0 = std::time::Instant::now();
        let plan = self.plan(&profile, &loss, goal)?;
        let planning_seconds = t0.elapsed().as_secs_f64();
        Some(self.execute(workload, &plan, goal, planning_seconds))
    }

    /// Convenience: the full performance model for a profile.
    pub fn model(&self, profile: &ProfileData) -> CynthiaModel {
        CynthiaModel::new(profile.clone())
    }

    /// Predicted time on an arbitrary shape (used by the validation
    /// experiments of Sec. 5.1).
    pub fn predict(&self, profile: &ProfileData, shape: &ClusterShape, updates: u64) -> f64 {
        CynthiaModel::new(profile.clone()).predict_time(shape, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;

    #[test]
    fn end_to_end_meets_goals_for_cifar10() {
        let cynthia = Cynthia::new(default_catalog());
        let w = Workload::cifar10_bsp();
        let goal = Goal {
            deadline_secs: 7200.0,
            target_loss: 0.8,
        };
        let report = cynthia.run_end_to_end(&w, &goal).expect("feasible goal");
        assert!(
            report.met_deadline,
            "actual {} vs deadline {}",
            report.training.total_time, goal.deadline_secs
        );
        assert!(report.met_loss, "final loss {}", report.training.final_loss);
        assert!(report.actual_cost > 0.0);
        assert!(!report.join_token.is_empty());
    }

    #[test]
    fn infeasible_goal_returns_none() {
        let cynthia = Cynthia::new(default_catalog());
        let w = Workload::cifar10_bsp();
        let goal = Goal {
            deadline_secs: 7200.0,
            target_loss: 0.01,
        };
        assert!(cynthia.run_end_to_end(&w, &goal).is_none());
    }

    #[test]
    fn planning_is_fast() {
        // Sec. 5.3: plan computation in tens of milliseconds.
        let cynthia = Cynthia::new(default_catalog());
        let w = Workload::cifar10_bsp();
        let profile = cynthia.profile(&w);
        let loss = cynthia.fit_loss(&w, 4);
        let goal = Goal {
            deadline_secs: 5400.0,
            target_loss: 0.8,
        };
        let t0 = std::time::Instant::now();
        let _ = cynthia.plan(&profile, &loss, &goal);
        assert!(t0.elapsed().as_millis() < 200, "planning too slow");
    }
}
