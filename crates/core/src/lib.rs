//! # cynthia-core — the Cynthia framework (ICPP 2019)
//!
//! The paper's contribution, implemented against the simulated substrates:
//!
//! * [`profiler`] — one-shot 30-iteration profiling of a workload on a
//!   baseline worker, producing the Table 4 quantities (`w_iter`,
//!   `g_param`, `c_prof`, `b_prof`).
//! * [`loss_model`] — least-squares fitting of the empirical loss model
//!   (Eq. 1) and its inversion to iteration counts (Eqs. 15 and 20).
//! * [`perf_model`] — the analytical DDNN training-time model of Sec. 3
//!   (Eqs. 2–7): computation from worker CPU rates, communication from the
//!   PS's *effective service bandwidth* (NIC and CPU-ingest, both derived
//!   from the profiled demand/supply ratios), `max()` composition for BSP's
//!   compute/communication overlap, additive for ASP, with bottleneck and
//!   heterogeneity awareness. Includes the predicted worker-utilization
//!   throttle of Sec. 3 and ablation toggles.
//! * [`provisioner`] — Theorem 4.1's worker-count bounds (Eqs. 12–14) and
//!   Algorithm 1's cost-minimizing search over instance types.
//! * [`framework`] — the prototype glue of Sec. 5: profile → fit → plan →
//!   provision (via `cynthia-cloud`) → train (via `cynthia-train`) →
//!   settle the bill.

#![warn(missing_docs)]

pub mod advisor;
pub mod framework;
pub mod loss_model;
pub mod obs;
pub mod perf_model;
pub mod profiler;
pub mod provisioner;

pub use advisor::fastest_within_budget;
pub use framework::{Cynthia, ExecutionReport};
pub use loss_model::FittedLossModel;
pub use perf_model::{ClusterShape, CynthiaModel, PerfModel};
pub use profiler::{profile_workload, ProfileData};
pub use provisioner::{plan, plan_parallel, EvalCache, Goal, Plan, PlannerOptions};
