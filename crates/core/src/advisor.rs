//! The dual provisioning problem: *minimize training time subject to a
//! monetary budget*.
//!
//! The paper minimizes cost under a deadline (Eq. 8); practitioners just
//! as often hold the budget and want the fastest training it buys. The
//! same Theorem 4.1 band and performance model answer that query: scan
//! the candidates, keep the fastest plan whose Eq. (8) cost fits the
//! budget.

use crate::loss_model::FittedLossModel;
use crate::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use crate::profiler::ProfileData;
use crate::provisioner::{worker_bounds, Goal, Plan, PlannerOptions};
use cynthia_cloud::catalog::Catalog;
use cynthia_models::SyncMode;

/// Finds the minimum-time plan reaching `target_loss` with predicted cost
/// at most `budget_usd`. Returns `None` when no candidate fits (loss
/// unreachable or budget too small).
pub fn fastest_within_budget(
    profile: &ProfileData,
    loss: &FittedLossModel,
    catalog: &Catalog,
    target_loss: f64,
    budget_usd: f64,
    options: &PlannerOptions,
) -> Option<Plan> {
    assert!(budget_usd > 0.0, "budget must be positive");
    // Bounds need *some* deadline; use a generous one so the band is wide
    // (the budget, not the deadline, does the pruning here).
    let wide_goal = Goal {
        deadline_secs: 7.0 * 24.0 * 3600.0,
        target_loss,
    };
    let model = CynthiaModel::new(profile.clone());
    let mut best: Option<Plan> = None;
    let mut evaluated = 0u32;
    for ty in catalog.types() {
        let bounds = worker_bounds(profile, loss, ty, &wide_goal)?;
        for extra_ps in 0..=options.max_ps_escalation {
            let n_ps = bounds.n_ps + extra_ps;
            let hi = bounds.upper_for(n_ps).min(options.max_workers);
            for n in bounds.n_lower..=hi {
                evaluated += 1;
                let (s, total_updates) = match profile.sync {
                    SyncMode::Bsp => {
                        let s = loss.bsp_iterations_for(target_loss)?;
                        (s, s)
                    }
                    SyncMode::Asp => {
                        let s = loss.asp_iterations_per_worker(target_loss, n)?;
                        (s, s * n as u64)
                    }
                };
                let shape = ClusterShape::homogeneous(ty, n, n_ps);
                let time = model.predict_time(&shape, total_updates);
                let cost = cynthia_cloud::billing::static_cluster_cost(
                    ty.price_per_hour,
                    n,
                    ty.price_per_hour,
                    n_ps,
                    time,
                );
                if cost > budget_usd {
                    continue;
                }
                let faster = best
                    .as_ref()
                    .map(|b| time < b.predicted_time)
                    .unwrap_or(true);
                if faster {
                    best = Some(Plan {
                        type_name: ty.name.clone(),
                        n_workers: n,
                        n_ps,
                        iterations: s,
                        total_updates,
                        predicted_iter_time: model.iter_time(&shape),
                        predicted_time: time,
                        predicted_cost: cost,
                        candidates_evaluated: 0,
                    });
                }
            }
        }
    }
    best.map(|mut p| {
        p.candidates_evaluated = evaluated;
        p
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_workload;
    use cynthia_cloud::default_catalog;
    use cynthia_models::Workload;

    fn fixture() -> (ProfileData, FittedLossModel, Catalog) {
        let catalog = default_catalog();
        let w = Workload::cifar10_bsp();
        let profile = profile_workload(&w, catalog.expect("m4.xlarge"), 12);
        let loss = FittedLossModel {
            sync: w.sync,
            beta0: w.convergence.beta0,
            beta1: w.convergence.beta1,
            r_squared: 1.0,
        };
        (profile, loss, catalog)
    }

    #[test]
    fn plans_fit_the_budget_and_more_budget_is_never_slower() {
        let (profile, loss, catalog) = fixture();
        let opts = PlannerOptions::default();
        // Reaching loss 0.7 needs ~2 800 iterations ≈ 5 core-hours of
        // compute, so ~$1.1 is the physical cost floor; budgets below it
        // are covered by `starvation_budget_is_infeasible`.
        let mut last_time = f64::INFINITY;
        for budget in [1.2, 1.5, 2.5, 5.0] {
            let p = fastest_within_budget(&profile, &loss, &catalog, 0.7, budget, &opts)
                .unwrap_or_else(|| panic!("budget {budget} should be feasible"));
            assert!(
                p.predicted_cost <= budget + 1e-9,
                "${} plan for ${budget} budget",
                p.predicted_cost
            );
            assert!(
                p.predicted_time <= last_time + 1e-9,
                "more budget must not slow training: {} vs {last_time}",
                p.predicted_time
            );
            last_time = p.predicted_time;
        }
    }

    #[test]
    fn starvation_budget_is_infeasible() {
        let (profile, loss, catalog) = fixture();
        assert!(fastest_within_budget(
            &profile,
            &loss,
            &catalog,
            0.7,
            0.5,
            &PlannerOptions::default()
        )
        .is_none());
    }

    #[test]
    fn unreachable_loss_is_refused() {
        let (profile, loss, catalog) = fixture();
        assert!(fastest_within_budget(
            &profile,
            &loss,
            &catalog,
            0.1,
            100.0,
            &PlannerOptions::default()
        )
        .is_none());
    }

    #[test]
    fn budget_and_deadline_views_agree() {
        // The fastest plan within budget B, fed back as a deadline, costs
        // at most B under the cost-minimizing planner.
        let (profile, loss, catalog) = fixture();
        let opts = PlannerOptions::default();
        let by_budget = fastest_within_budget(&profile, &loss, &catalog, 0.7, 1.5, &opts).unwrap();
        let goal = Goal {
            deadline_secs: by_budget.predicted_time / opts.headroom + 1.0,
            target_loss: 0.7,
        };
        let by_deadline =
            crate::provisioner::plan(&profile, &loss, &catalog, &goal, &opts).unwrap();
        assert!(
            by_deadline.predicted_cost <= 1.5 + 1e-6,
            "dual solutions disagree: {by_deadline:?}"
        );
    }
}
