//! The analytical DDNN training performance model (Sec. 3, Eqs. 2–7).
//!
//! The model consumes only (a) the one-shot profile of the workload
//! ([`crate::profiler::ProfileData`]) and (b) static per-instance-type
//! capabilities, and predicts iteration/training time for any cluster
//! shape.
//!
//! ## Composition
//!
//! * Computation (Eq. 4): `t_comp = w_iter / (n · min_j c_j)` for BSP (the
//!   global batch splits across workers and the slowest one paces the
//!   barrier) and `w_iter / c_j` per worker for ASP.
//! * Communication (Eq. 5): one iteration moves `2·g_param` per worker
//!   through the parameter servers. The divisor is the PS tier's
//!   *effective service bandwidth*: the NIC supply `Σ b_ps` **and** the
//!   CPU-ingest supply `Σ c_ps / κ`, where `κ = c_prof / b_prof` is the
//!   profiled CPU cost per MB of PS traffic. This is Sec. 3's
//!   demand/supply reasoning applied to the PS data path: whichever PS
//!   resource exhausts first bounds the achievable transfer rate — exactly
//!   the CPU-and-bandwidth hotspot behaviour of Table 2/Fig. 2.
//! * Iteration time (Eq. 3): `max(t_comp, t_comm)` for BSP (TensorFlow's
//!   `SyncReplicasOptimizer` overlaps the two; footnote 2), serial
//!   `t_comp + t_comm` for ASP.
//! * ASP cluster throughput: workers cycle independently, so the global
//!   update rate is `Σ_j 1/t_iter_j`, floored by the PS service bandwidth
//!   once aggregate demand saturates it.
//!
//! The paper-literal worker-utilization throttle (the `u_wk` formula of
//! Sec. 3) is exposed via [`CynthiaModel::worker_utilization`] and is what
//! the provisioner's Eq. (12) ratio uses; ablation toggles let benchmarks
//! degrade the model into the bottleneck-oblivious / non-overlapping
//! baselines to quantify each ingredient's contribution.

use crate::profiler::ProfileData;
use cynthia_cloud::instance::InstanceType;
use cynthia_models::SyncMode;
use cynthia_train::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The capability summary of a candidate cluster, as the model sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterShape {
    /// Per-worker CPU capability, GFLOPS.
    pub worker_gflops: Vec<f64>,
    /// Aggregate PS CPU supply `Σ c_ps`, GFLOPS.
    pub ps_total_gflops: f64,
    /// Aggregate PS NIC supply `Σ b_ps`, MB/s.
    pub ps_total_bw: f64,
    /// Number of parameter servers the aggregates are spread over.
    pub n_ps: u32,
}

impl ClusterShape {
    /// A homogeneous shape of `n` workers and `n_ps` PS nodes of one type.
    pub fn homogeneous(ty: &InstanceType, n: u32, n_ps: u32) -> Self {
        assert!(n > 0 && n_ps > 0, "degenerate shape");
        ClusterShape {
            worker_gflops: vec![ty.core_gflops; n as usize],
            ps_total_gflops: ty.node_gflops * n_ps as f64,
            ps_total_bw: ty.nic_mbps * n_ps as f64,
            n_ps,
        }
    }

    /// The shape of an explicit (possibly heterogeneous) cluster spec.
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        ClusterShape {
            worker_gflops: spec.worker_gflops(),
            ps_total_gflops: spec.ps.iter().map(|t| t.node_gflops).sum(),
            ps_total_bw: spec.ps.iter().map(|t| t.nic_mbps).sum(),
            n_ps: spec.n_ps(),
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> u32 {
        self.worker_gflops.len() as u32
    }

    /// The slowest worker's capability (Eq. 4's `min_j`).
    pub fn min_worker_gflops(&self) -> f64 {
        self.worker_gflops
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }
}

/// A DDNN training-time predictor.
pub trait PerfModel {
    /// Human-readable model name.
    fn name(&self) -> &str;

    /// Predicted duration of one iteration on the shape. For ASP this is a
    /// single worker's cycle time on the slowest worker (reported for
    /// Fig. 6-style comparisons); use [`PerfModel::predict_time`] for
    /// whole-run time.
    fn iter_time(&self, shape: &ClusterShape) -> f64;

    /// Predicted wall-clock time to complete `total_updates` global
    /// updates.
    fn predict_time(&self, shape: &ClusterShape, total_updates: u64) -> f64;
}

/// The Cynthia performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CynthiaModel {
    /// The one-shot profile (Table 4 quantities) the predictions scale from.
    pub profile: ProfileData,
    /// Model BSP's computation/communication overlap (Eq. 3's `max`).
    /// Disabled in ablations to emulate additive baselines.
    pub overlap: bool,
    /// Account for the PS CPU-ingest bound in the communication term.
    /// Disabled in ablations (bandwidth-only Eq. 5).
    pub bottleneck_aware: bool,
}

impl CynthiaModel {
    /// The full model as evaluated in Sec. 5.
    pub fn new(profile: ProfileData) -> Self {
        CynthiaModel {
            profile,
            overlap: true,
            bottleneck_aware: true,
        }
    }

    /// The PS tier's effective service bandwidth for parameter traffic,
    /// MB/s (see module docs).
    pub fn service_bandwidth(&self, shape: &ClusterShape) -> f64 {
        if self.bottleneck_aware {
            let kappa = self.profile.kappa();
            let ingest = if kappa > 0.0 {
                shape.ps_total_gflops / kappa
            } else {
                f64::INFINITY
            };
            shape.ps_total_bw.min(ingest)
        } else {
            shape.ps_total_bw
        }
    }

    /// Eq. (4) computation time for one iteration (BSP: slowest worker on
    /// a 1/n share of the batch; ASP: full batch on the slowest worker).
    pub fn t_comp(&self, shape: &ClusterShape) -> f64 {
        let w = self.profile.w_iter_gflops;
        match self.profile.sync {
            SyncMode::Bsp => w / (shape.n_workers() as f64 * shape.min_worker_gflops()),
            SyncMode::Asp => w / shape.min_worker_gflops(),
        }
    }

    /// Eq. (5) communication time for one iteration.
    pub fn t_comm(&self, shape: &ClusterShape) -> f64 {
        let g2 = 2.0 * self.profile.g_param_mb;
        let bw = self.service_bandwidth(shape);
        match self.profile.sync {
            SyncMode::Bsp => g2 * shape.n_workers() as f64 / bw,
            SyncMode::Asp => {
                if self.bottleneck_aware {
                    // Serial per-update path: transfer on the NIC, then
                    // CPU ingest (the two are not pipelined within one
                    // worker's update).
                    let kappa = self.profile.kappa();
                    g2 / shape.ps_total_bw + g2 * kappa / shape.ps_total_gflops
                } else {
                    g2 / shape.ps_total_bw
                }
            }
        }
    }

    /// Eq. (3) iteration time.
    fn t_iter(&self, shape: &ClusterShape) -> f64 {
        let comp = self.t_comp(shape);
        let comm = self.t_comm(shape);
        match self.profile.sync {
            SyncMode::Bsp => {
                if self.overlap {
                    comp.max(comm)
                } else {
                    comp + comm
                }
            }
            SyncMode::Asp => comp + comm,
        }
    }

    /// The resource-scaling ratio of Eq. (7).
    pub fn r_scale(&self, shape: &ClusterShape) -> f64 {
        let cb = self.profile.c_base_gflops;
        match self.profile.sync {
            SyncMode::Bsp => shape.n_workers() as f64 * shape.min_worker_gflops() / cb,
            SyncMode::Asp => shape.worker_gflops.iter().sum::<f64>() / cb,
        }
    }

    /// The paper's predicted worker CPU utilization under PS bottleneck
    /// (Sec. 3, demand/supply ratio): `min(b_sup/b_dem, c_sup/c_dem, 1)`.
    pub fn worker_utilization(&self, shape: &ClusterShape) -> f64 {
        let r = self.r_scale(shape);
        let c_demand = self.profile.c_prof_gflops * r;
        let b_demand = self.profile.b_prof_mbps * r;
        let mut u: f64 = 1.0;
        if c_demand > shape.ps_total_gflops {
            u = u.min(shape.ps_total_gflops / c_demand);
        }
        if b_demand > shape.ps_total_bw {
            u = u.min(shape.ps_total_bw / b_demand);
        }
        u
    }

    /// Whether the PS tier bottlenecks for this shape (Sec. 3's condition
    /// `c_demand > c_supply || b_demand > b_supply`).
    pub fn bottleneck_occurs(&self, shape: &ClusterShape) -> bool {
        self.worker_utilization(shape) < 1.0
    }

    /// Predicted fraction of time a worker spends computing — the model's
    /// own estimate of Table 2's worker CPU utilization. For BSP this is
    /// `t_comp / t_iter` (communication on the critical path idles the
    /// workers); for ASP it is the compute share of the MVA cycle. More
    /// faithful than the coarse demand/supply `u` of
    /// [`CynthiaModel::worker_utilization`], which scales demand linearly
    /// with workers while a BSP cluster's PS demand per second actually
    /// grows quadratically (iterations also get faster).
    pub fn predicted_worker_busy_fraction(&self, shape: &ClusterShape) -> f64 {
        match self.profile.sync {
            SyncMode::Bsp => {
                let t = self.t_iter(shape);
                if t <= 0.0 {
                    0.0
                } else {
                    (self.t_comp(shape) / t).min(1.0)
                }
            }
            SyncMode::Asp => {
                let cycle = shape.n_workers() as f64 / self.asp_throughput(shape);
                let comp = self.profile.w_iter_gflops / shape.min_worker_gflops();
                (comp / cycle).min(1.0)
            }
        }
    }

    /// ASP cluster throughput (global updates per second) from exact
    /// mean-value analysis of the closed queueing network each ASP worker
    /// forms: gradient computation is a *delay* station (dedicated core,
    /// think time `w_iter/c_j`), while the PS NIC and the PS CPU are
    /// *queueing* stations with per-update service demands `2·g/Σb` and
    /// `2·g·κ/Σc` (κ from the one-shot profile). MVA captures both the
    /// saturation floor and the queueing inflation near the knee that a
    /// fluid model misses — this is how "leveraging the resource
    /// consumption of workers and PS nodes" (Sec. 3) becomes a predictor
    /// that stays within a few percent across Figs. 6/8/9/10.
    ///
    /// Heterogeneous workers are folded into a single class with the
    /// harmonic-mean think time, which preserves the aggregate compute
    /// throughput `Σ 1/Z_j`.
    pub fn asp_throughput(&self, shape: &ClusterShape) -> f64 {
        let n = shape.n_workers();
        let g2 = 2.0 * self.profile.g_param_mb;
        let inv_z_sum: f64 = shape
            .worker_gflops
            .iter()
            .map(|c| c / self.profile.w_iter_gflops)
            .sum();
        let z_mean = n as f64 / inv_z_sum;
        let demands = [
            g2 / shape.ps_total_bw,
            g2 * self.profile.kappa() / shape.ps_total_gflops,
        ];
        mva_throughput(z_mean, n, &demands)
    }
}

/// Exact single-class MVA: `n` customers, one delay station with think
/// time `z`, and queueing stations with the given service demands.
/// Returns the steady-state throughput.
fn mva_throughput(z: f64, n: u32, demands: &[f64]) -> f64 {
    assert!(n >= 1, "MVA needs at least one customer");
    let mut queue = vec![0.0f64; demands.len()];
    let mut x = 0.0;
    for k in 1..=n {
        let residence: Vec<f64> = demands
            .iter()
            .zip(&queue)
            .map(|(d, q)| d * (1.0 + q))
            .collect();
        let total: f64 = residence.iter().sum();
        x = k as f64 / (z + total);
        for (q, r) in queue.iter_mut().zip(&residence) {
            *q = x * r;
        }
    }
    x
}

impl PerfModel for CynthiaModel {
    fn name(&self) -> &str {
        if self.overlap && self.bottleneck_aware {
            "Cynthia"
        } else {
            "Cynthia(ablated)"
        }
    }

    fn iter_time(&self, shape: &ClusterShape) -> f64 {
        match self.profile.sync {
            SyncMode::Bsp => self.t_iter(shape),
            SyncMode::Asp => {
                if self.bottleneck_aware {
                    // Mean per-worker cycle time in the closed network.
                    shape.n_workers() as f64 / self.asp_throughput(shape)
                } else {
                    self.t_iter(shape)
                }
            }
        }
    }

    fn predict_time(&self, shape: &ClusterShape, total_updates: u64) -> f64 {
        let s = total_updates as f64;
        match self.profile.sync {
            SyncMode::Bsp => s * self.t_iter(shape),
            SyncMode::Asp => {
                if !self.bottleneck_aware {
                    // Ablated: independent worker cycles, no PS contention.
                    let comm = self.t_comm(shape);
                    let rate: f64 = shape
                        .worker_gflops
                        .iter()
                        .map(|c| 1.0 / (self.profile.w_iter_gflops / c + comm))
                        .sum();
                    return s / rate;
                }
                s / self.asp_throughput(shape)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_workload;
    use cynthia_cloud::default_catalog;
    use cynthia_models::Workload;

    fn m4_profile(w: &Workload) -> ProfileData {
        let cat = default_catalog();
        profile_workload(w, cat.expect("m4.xlarge"), 7)
    }

    fn m4_shape(n: u32, n_ps: u32) -> ClusterShape {
        let cat = default_catalog();
        ClusterShape::homogeneous(cat.expect("m4.xlarge"), n, n_ps)
    }

    #[test]
    fn bsp_compute_shrinks_with_workers() {
        let m = CynthiaModel::new(m4_profile(&Workload::cifar10_bsp()));
        assert!(m.t_comp(&m4_shape(8, 1)) < m.t_comp(&m4_shape(4, 1)));
        let t4 = m.t_comp(&m4_shape(4, 1));
        let t8 = m.t_comp(&m4_shape(8, 1));
        assert!((t4 / t8 - 2.0).abs() < 1e-9, "perfect 1/n split");
    }

    #[test]
    fn bsp_comm_grows_with_workers_and_shrinks_with_ps() {
        let m = CynthiaModel::new(m4_profile(&Workload::cifar10_bsp()));
        assert!(m.t_comm(&m4_shape(16, 1)) > m.t_comm(&m4_shape(8, 1)));
        assert!(m.t_comm(&m4_shape(8, 2)) < m.t_comm(&m4_shape(8, 1)));
    }

    #[test]
    fn mnist_service_bandwidth_is_cpu_bound() {
        // mnist's PS CPU ingest exhausts before the NIC (Table 2's CPU
        // hotspot): effective service bandwidth < NIC bandwidth.
        let m = CynthiaModel::new(m4_profile(&Workload::mnist_bsp()));
        let shape = m4_shape(8, 1);
        assert!(
            m.service_bandwidth(&shape) < 0.8 * shape.ps_total_bw,
            "service bw {} vs nic {}",
            m.service_bandwidth(&shape),
            shape.ps_total_bw
        );
    }

    #[test]
    fn vgg_service_bandwidth_is_nic_bound() {
        let m = CynthiaModel::new(m4_profile(&Workload::vgg19_asp()));
        let shape = m4_shape(9, 1);
        assert!((m.service_bandwidth(&shape) - shape.ps_total_bw).abs() < 1e-9);
    }

    #[test]
    fn utilization_throttles_past_the_knee() {
        let m = CynthiaModel::new(m4_profile(&Workload::mnist_bsp()));
        assert_eq!(m.worker_utilization(&m4_shape(1, 1)), 1.0);
        assert!(!m.bottleneck_occurs(&m4_shape(1, 1)));
        let u8 = m.worker_utilization(&m4_shape(8, 1));
        assert!(u8 < 0.7, "8 workers should throttle: u={u8}");
        assert!(m.bottleneck_occurs(&m4_shape(8, 1)));
        // More PS supply restores utilization.
        assert!(m.worker_utilization(&m4_shape(8, 4)) > u8);
    }

    #[test]
    fn overlap_ablation_is_additive() {
        let full = CynthiaModel::new(m4_profile(&Workload::cifar10_bsp()));
        let mut add = full.clone();
        add.overlap = false;
        let shape = m4_shape(9, 1);
        let comp = full.t_comp(&shape);
        let comm = full.t_comm(&shape);
        assert!((full.iter_time(&shape) - comp.max(comm)).abs() < 1e-12);
        assert!((add.iter_time(&shape) - (comp + comm)).abs() < 1e-12);
        assert!(add.iter_time(&shape) > full.iter_time(&shape));
    }

    #[test]
    fn asp_prediction_saturates_at_high_worker_counts() {
        let m = CynthiaModel::new(m4_profile(&Workload::vgg19_asp()));
        let updates = 300;
        let t9 = m.predict_time(&m4_shape(9, 1), updates);
        let t20 = m.predict_time(&m4_shape(20, 1), updates);
        // Past NIC saturation, extra workers yield almost nothing: the
        // prediction approaches the service asymptote instead of scaling
        // linearly (which would give t9·9/20).
        let asymptote =
            updates as f64 * 2.0 * m.profile.g_param_mb / m.service_bandwidth(&m4_shape(9, 1));
        assert!(
            t20 > 0.95 * asymptote,
            "t20 {t20} should sit at the asymptote {asymptote}"
        );
        assert!(
            t20 > 1.3 * t9 * 9.0 / 20.0,
            "t20 {t20} must not scale linearly from t9 {t9}"
        );
        // But the floor lifts with a second PS.
        let t20_2ps = m.predict_time(&m4_shape(20, 2), updates);
        assert!(
            t20_2ps < t20 * 0.7,
            "2 PS should relieve: {t20_2ps} vs {t20}"
        );
    }

    #[test]
    fn heterogeneous_bsp_paced_by_straggler() {
        let cat = default_catalog();
        let m = CynthiaModel::new(m4_profile(&Workload::mnist_bsp()));
        let homo = ClusterShape::homogeneous(cat.expect("m4.xlarge"), 2, 1);
        let spec =
            ClusterSpec::heterogeneous(cat.expect("m4.xlarge"), cat.expect("m1.xlarge"), 2, 1);
        let hetero = ClusterShape::from_spec(&spec);
        assert!(m.t_comp(&hetero) > m.t_comp(&homo) * 1.5);
    }

    #[test]
    fn predicts_the_ground_truth_simulator_within_10pct() {
        use cynthia_train::{simulate, SimConfig, TrainJob};
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        for (w, counts) in [
            (Workload::mnist_bsp(), vec![1u32, 2, 4, 8]),
            (Workload::cifar10_bsp(), vec![4, 9, 12]),
        ] {
            let model = CynthiaModel::new(m4_profile(&w));
            let mut short = w.clone();
            short.iterations = 400;
            for n in counts {
                let job = TrainJob {
                    workload: &short,
                    cluster: ClusterSpec::homogeneous(m4, n, 1),
                    config: SimConfig::fast(33),
                };
                let observed = simulate(&job).total_time;
                let predicted =
                    model.predict_time(&ClusterShape::homogeneous(m4, n, 1), short.iterations);
                let err = (predicted - observed).abs() / observed;
                assert!(
                    err < 0.12,
                    "{} n={n}: predicted {predicted:.1}, observed {observed:.1}, err {:.1}%",
                    w.id(),
                    err * 100.0
                );
            }
        }
    }
}
