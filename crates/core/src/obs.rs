//! Instrumentation hooks for the Alg. 1 provisioner (feature `obs`).
//!
//! Call sites invoke these unconditionally; with the feature off they are
//! empty inline bodies. With it on, planning runs are wrapped in
//! wall-clock spans on the `"provision"` track (the band search is a real
//! search over instance types, so its per-type child spans nest under the
//! plan span) and counters/histograms land in the process-wide registry.
//! Hooks never influence which plan is chosen.

#[cfg(feature = "obs")]
mod real {
    use cynthia_obs::{metrics, tracer, Counter, Histogram, WallSpan};
    use std::sync::OnceLock;
    use std::time::Instant;

    const TRACK: &str = "provision";

    fn plans() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_provision_plans_total",
                "Alg. 1 planning runs started",
            )
        })
    }

    fn infeasible() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_provision_infeasible_total",
                "Planning runs that found no feasible plan",
            )
        })
    }

    fn candidates() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_provision_candidates_total",
                "Candidate (type, n, n_ps) points evaluated by the band search",
            )
        })
    }

    fn cache_hits() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_provision_cache_hits_total",
                "EvalCache lookups answered without re-evaluating the model",
            )
        })
    }

    fn cache_misses() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_provision_cache_misses_total",
                "EvalCache lookups that evaluated the performance model",
            )
        })
    }

    fn band_width() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| {
            metrics().histogram(
                "cynthia_provision_band_width",
                cynthia_obs::registry::WIDTH_BUCKETS,
                "Theorem 4.1 worker-band width (n_upper - n_lower + 1) per instance type",
            )
        })
    }

    fn plan_seconds() -> &'static Histogram {
        static H: OnceLock<Histogram> = OnceLock::new();
        H.get_or_init(|| {
            metrics().histogram(
                "cynthia_provision_plan_seconds",
                cynthia_obs::registry::TIME_BUCKETS,
                "Wall-clock seconds per Alg. 1 planning run (Sec. 5.3 milliseconds claim)",
            )
        })
    }

    /// Guard wrapping one planning run: a wall span plus the latency
    /// histogram observation on drop.
    pub struct PlanGuard {
        started: Instant,
        _span: WallSpan<'static>,
    }

    impl Drop for PlanGuard {
        fn drop(&mut self) {
            if cynthia_obs::enabled() {
                plan_seconds().observe(self.started.elapsed().as_secs_f64());
            }
        }
    }

    /// Marks the start of a planning run; drop the guard when it returns.
    pub fn plan_started(name: &str) -> PlanGuard {
        if cynthia_obs::enabled() {
            plans().inc();
        }
        PlanGuard {
            started: Instant::now(),
            _span: tracer().wall_span(TRACK, name),
        }
    }

    /// Wall span for one instance type's band scan, nested in the plan span.
    pub fn type_span(ty_name: &str) -> WallSpan<'static> {
        tracer().wall_span(TRACK, &format!("provision.band.{ty_name}"))
    }

    /// Records one instance type's Theorem 4.1 band width.
    pub fn band_computed(lo: u32, hi: u32) {
        if cynthia_obs::enabled() && hi >= lo {
            band_width().observe((hi - lo + 1) as f64);
        }
    }

    /// Records the run's candidate count and outcome.
    pub fn plan_finished(evaluated: u32, feasible: bool) {
        if !cynthia_obs::enabled() {
            return;
        }
        candidates().add(evaluated as u64);
        if !feasible {
            infeasible().inc();
        }
    }

    /// Records an EvalCache hit.
    #[inline]
    pub fn cache_hit() {
        if cynthia_obs::enabled() {
            cache_hits().inc();
        }
    }

    /// Records an EvalCache miss.
    #[inline]
    pub fn cache_miss() {
        if cynthia_obs::enabled() {
            cache_misses().inc();
        }
    }
}

#[cfg(feature = "obs")]
pub use real::*;

/// No-op hook bodies compiled when the `obs` feature is off.
#[cfg(not(feature = "obs"))]
mod stub {
    /// Inert stand-in for the plan-run guard.
    pub struct PlanGuard;

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn plan_started(_name: &str) -> PlanGuard {
        PlanGuard
    }

    /// Inert stand-in for the per-type band-scan span.
    pub struct TypeSpan;

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn type_span(_ty_name: &str) -> TypeSpan {
        TypeSpan
    }

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn band_computed(_lo: u32, _hi: u32) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn plan_finished(_evaluated: u32, _feasible: bool) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn cache_hit() {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn cache_miss() {}
}

#[cfg(not(feature = "obs"))]
pub use stub::*;
