//! One-shot workload profiling (Sec. 3, "Obtaining model parameters").
//!
//! The workload is trained for a small, fixed number of iterations (the
//! paper uses 30) on a single baseline worker with one PS node. Four
//! quantities fall out:
//!
//! * `w_iter` — FLOPs per iteration, computed as `t_base · c_base` where
//!   `t_base` is the measured per-iteration *computation* time and
//!   `c_base` the baseline worker's capability from the capability table.
//! * `g_param` — parameter payload, measured as the PS's network volume
//!   divided by `2 · iterations` (each iteration moves one push and one
//!   pull).
//! * `c_prof` — the PS node's CPU consumption rate during profiling.
//! * `b_prof` — the PS node's network throughput during profiling.
//!
//! Profiling happens once per workload, on one instance type; predictions
//! for other types reuse the same profile via the capability table
//! (validated by the Fig. 8 experiment).

use cynthia_cloud::instance::InstanceType;
use cynthia_models::{SyncMode, Workload};
use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};
use serde::{Deserialize, Serialize};

/// Number of profiling iterations used by the paper.
pub const PROFILE_ITERATIONS: u64 = 30;

/// The Table 4 quantities for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileData {
    /// Identifier of the profiled workload (model × dataset × sync mode).
    pub workload_id: String,
    /// Synchronization mode the profiling run used.
    pub sync: SyncMode,
    /// FLOPs of one training iteration, GFLOP (capability-table units).
    pub w_iter_gflops: f64,
    /// Parameter payload per push/pull, MB.
    pub g_param_mb: f64,
    /// PS CPU consumption rate during profiling, GFLOPS.
    pub c_prof_gflops: f64,
    /// PS network throughput during profiling, MB/s.
    pub b_prof_mbps: f64,
    /// Baseline worker capability used for `w_iter`, GFLOPS.
    pub c_base_gflops: f64,
    /// Instance type profiled on.
    pub baseline_type: String,
    /// Wall-clock duration of the profiling run, seconds (Sec. 5.3
    /// overhead accounting).
    pub profiling_wallclock: f64,
    /// Iterations profiled.
    pub iterations: u64,
}

impl ProfileData {
    /// PS CPU cost per MB of PS traffic, GFLOP/MB — the demand/supply
    /// coupling between the two PS resources (`c_prof / b_prof`). Drives
    /// the effective service-bandwidth term of the performance model.
    pub fn kappa(&self) -> f64 {
        self.c_prof_gflops / self.b_prof_mbps
    }

    /// Single-iteration computation time on the baseline worker, seconds.
    pub fn t_base(&self) -> f64 {
        self.w_iter_gflops / self.c_base_gflops
    }
}

/// Profiles `workload` on one `baseline` worker plus one PS of the same
/// type, exactly as the prototype does (Sec. 5.3).
pub fn profile_workload(workload: &Workload, baseline: &InstanceType, seed: u64) -> ProfileData {
    let mut probe = workload.clone();
    probe.iterations = PROFILE_ITERATIONS;
    let job = TrainJob {
        workload: &probe,
        cluster: ClusterSpec::homogeneous(baseline, 1, 1),
        config: SimConfig::exact(seed),
    };
    let report = simulate(&job);

    let c_base = baseline.core_gflops;
    let w_iter = report.comp_time.mean * c_base;
    // Total PS traffic over the run: pushes + pulls.
    let volume: f64 = report.ps_nic_mean_mbps.iter().sum::<f64>() * report.simulated_time;
    let g_param = volume / (2.0 * PROFILE_ITERATIONS as f64);
    let c_prof = report.mean_ps_util() * baseline.node_gflops;
    let b_prof = report.total_ps_nic_mbps();

    ProfileData {
        workload_id: workload.id(),
        sync: workload.sync,
        w_iter_gflops: w_iter,
        g_param_mb: g_param,
        c_prof_gflops: c_prof,
        b_prof_mbps: b_prof,
        c_base_gflops: c_base,
        baseline_type: baseline.name.clone(),
        profiling_wallclock: report.total_time,
        iterations: PROFILE_ITERATIONS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;

    fn profile(w: &Workload) -> ProfileData {
        let cat = default_catalog();
        profile_workload(w, cat.expect("m4.xlarge"), 42)
    }

    #[test]
    fn recovers_w_iter_within_jitter() {
        let w = Workload::mnist_bsp();
        let p = profile(&w);
        let err = (p.w_iter_gflops - w.w_iter_gflops).abs() / w.w_iter_gflops;
        assert!(
            err < 0.05,
            "w_iter {} vs true {}",
            p.w_iter_gflops,
            w.w_iter_gflops
        );
    }

    #[test]
    fn recovers_g_param_approximately() {
        let w = Workload::cifar10_bsp();
        let p = profile(&w);
        let truth = w.param_mb();
        let err = (p.g_param_mb - truth).abs() / truth;
        // The last iteration's pulls are cut off at completion -> small
        // systematic underestimate, same as measuring a real PS.
        assert!(err < 0.10, "g_param {} vs true {truth}", p.g_param_mb);
    }

    #[test]
    fn table4_ordering_reproduced() {
        // w_iter: VGG ≈ ResNet > cifar10 > mnist; g_param: VGG dominates.
        let profiles: Vec<ProfileData> = Workload::table1().iter().map(profile).collect();
        let (resnet, mnist, vgg, cifar) = (&profiles[0], &profiles[1], &profiles[2], &profiles[3]);
        assert!(vgg.g_param_mb > 20.0 * cifar.g_param_mb);
        assert!(mnist.w_iter_gflops < 0.1);
        assert!(resnet.w_iter_gflops > 10.0);
        assert!(cifar.w_iter_gflops > mnist.w_iter_gflops);
        // mnist has the highest PS CPU rate relative to traffic among the
        // BSP workloads in the paper; sanity: all rates positive and below
        // the node capability.
        for p in &profiles {
            assert!(
                p.c_prof_gflops > 0.0 && p.c_prof_gflops < 3.6,
                "{:?}",
                p.workload_id
            );
            assert!(p.b_prof_mbps > 0.0 && p.b_prof_mbps < 118.0);
        }
    }

    #[test]
    fn profiling_wallclock_is_t_base_scale() {
        let w = Workload::vgg19_asp();
        let p = profile(&w);
        // 30 iterations of ~20-25 s each (ASP: compute + serial comm).
        assert!(
            (500.0..1000.0).contains(&p.profiling_wallclock),
            "wallclock {}",
            p.profiling_wallclock
        );
        assert!((p.t_base() - 20.1).abs() / 20.1 < 0.1);
    }

    #[test]
    fn kappa_is_cpu_cost_per_traffic_mb() {
        let w = Workload::mnist_bsp();
        let p = profile(&w);
        // Ground truth: apply cost 0.10 GFLOP/MB on pushes only; traffic
        // counts pushes + pulls, so kappa ≈ 0.05.
        assert!((p.kappa() - 0.05).abs() < 0.01, "kappa {}", p.kappa());
    }
}
