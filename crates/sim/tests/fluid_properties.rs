//! Property-based tests of the max-min fair fluid allocator.

use cynthia_sim::fluid::{FlowSpec, FluidSystem, ResourceId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    /// For each flow: (link indices, volume, weight, optional cap)
    flows: Vec<(Vec<usize>, f64, f64, Option<f64>)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..5);
    caps.prop_flat_map(|capacities| {
        let n_res = capacities.len();
        let flow = (
            prop::collection::vec(0..n_res, 1..=n_res.min(3)),
            0.1f64..500.0,
            0.25f64..4.0,
            prop::option::of(0.5f64..200.0),
        );
        let flows = prop::collection::vec(flow, 1..12);
        (Just(capacities), flows).prop_map(|(capacities, flows)| Scenario { capacities, flows })
    })
}

fn build(
    s: &Scenario,
) -> (
    FluidSystem,
    Vec<ResourceId>,
    Vec<cynthia_sim::fluid::FlowId>,
) {
    let mut sys = FluidSystem::new();
    let rids: Vec<ResourceId> = s
        .capacities
        .iter()
        .enumerate()
        .map(|(i, c)| sys.add_resource(*c, format!("r{i}")))
        .collect();
    let fids = s
        .flows
        .iter()
        .enumerate()
        .map(|(i, (links, vol, w, cap))| {
            sys.start_flow(FlowSpec {
                links: links.iter().map(|l| rids[*l]).collect(),
                volume: *vol,
                weight: *w,
                max_rate: cap.unwrap_or(f64::INFINITY),
                tag: i as u64,
            })
        })
        .collect();
    (sys, rids, fids)
}

proptest! {
    /// No resource is ever oversubscribed.
    #[test]
    fn capacity_never_exceeded(s in scenario()) {
        let (mut sys, rids, _) = build(&s);
        for (i, r) in rids.iter().enumerate() {
            let used = sys.total_rate_on(*r);
            prop_assert!(
                used <= s.capacities[i] * (1.0 + 1e-9) + 1e-9,
                "resource {i}: used {used} > cap {}", s.capacities[i]
            );
        }
    }

    /// Every flow makes progress: positive rate (capacities are positive and
    /// every flow has at least one link).
    #[test]
    fn all_flows_progress(s in scenario()) {
        let (mut sys, _, fids) = build(&s);
        for f in &fids {
            let rate = sys.flow_rate(*f).unwrap();
            prop_assert!(rate > 0.0, "flow stuck at rate {rate}");
        }
    }

    /// Per-flow caps are honored.
    #[test]
    fn caps_respected(s in scenario()) {
        let (mut sys, _, fids) = build(&s);
        for (f, (_, _, _, cap)) in fids.iter().zip(&s.flows) {
            if let Some(c) = cap {
                let rate = sys.flow_rate(*f).unwrap();
                prop_assert!(rate <= c * (1.0 + 1e-9), "rate {rate} > cap {c}");
            }
        }
    }

    /// Max-min optimality certificate: each uncapped flow traverses at least
    /// one saturated resource on which no other flow has a higher
    /// weight-normalized rate.
    #[test]
    fn max_min_certificate(s in scenario()) {
        let (mut sys, rids, fids) = build(&s);
        let rates: Vec<f64> = fids.iter().map(|f| sys.flow_rate(*f).unwrap()).collect();
        let tol = 1e-6;
        for (i, (links, _, w, cap)) in s.flows.iter().enumerate() {
            let norm = rates[i] / w;
            if let Some(c) = cap {
                if rates[i] >= c * (1.0 - tol) {
                    continue; // flow is bound by its own cap: certificate holds
                }
            }
            let mut certified = false;
            for l in links {
                let used = sys.total_rate_on(rids[*l]);
                let saturated = used >= s.capacities[*l] * (1.0 - 1e-6);
                if !saturated {
                    continue;
                }
                // No co-located flow has a strictly higher normalized rate
                // unless it is frozen lower by another bottleneck: the
                // certificate only requires that *this* flow's normalized
                // rate is maximal among flows on `l` that are not bound
                // elsewhere below it. A simpler sound check: this flow's
                // normalized rate is >= the minimum share it would get if
                // the link were split by weight among its flows.
                let on_link: Vec<usize> = s
                    .flows
                    .iter()
                    .enumerate()
                    .filter(|(_, (ls, _, _, _))| ls.contains(l))
                    .map(|(j, _)| j)
                    .collect();
                let max_other_norm = on_link
                    .iter()
                    .filter(|j| **j != i)
                    .map(|j| rates[*j] / s.flows[*j].2)
                    .fold(0.0f64, f64::max);
                if norm + tol >= max_other_norm {
                    certified = true;
                    break;
                }
            }
            prop_assert!(certified, "flow {i} has no bottleneck certificate");
        }
    }

    /// Advancing by the next-completion time completes at least one flow and
    /// conserves volume (drained = rate * dt for every flow).
    #[test]
    fn advance_conserves_volume(s in scenario()) {
        let (mut sys, _, fids) = build(&s);
        let before: Vec<f64> = fids.iter().map(|f| sys.flow_remaining(*f).unwrap()).collect();
        let rates: Vec<f64> = fids.iter().map(|f| sys.flow_rate(*f).unwrap()).collect();
        if let Some((_, dt)) = sys.next_completion() {
            let done = sys.advance(dt);
            prop_assert!(!done.is_empty(), "advance(next_completion) completed nothing");
            for (i, f) in fids.iter().enumerate() {
                if let Some(rem) = sys.flow_remaining(*f) {
                    let expect = (before[i] - rates[i] * dt).max(0.0);
                    prop_assert!((rem - expect).abs() < 1e-6 * (1.0 + before[i]),
                        "flow {i}: remaining {rem}, expected {expect}");
                }
            }
        }
    }

    /// Mid-flight capacity shrink re-shares immediately: even below the
    /// current aggregate rate, usage drops under the new cap on every
    /// resource, and `advance` stays monotone (no flow's remaining volume
    /// grows) afterwards.
    #[test]
    fn set_capacity_shrink_reshares_mid_flight(s in scenario(), frac in 0.05f64..0.9) {
        let (mut sys, rids, fids) = build(&s);
        let (ri, used) = rids
            .iter()
            .enumerate()
            .map(|(i, r)| (i, sys.total_rate_on(*r)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        prop_assert!(used > 0.0, "generator guarantees every flow progresses");
        let new_cap = used * frac;
        sys.set_capacity(rids[ri], new_cap).unwrap();
        for (i, r) in rids.iter().enumerate() {
            let u = sys.total_rate_on(*r);
            let cap = if i == ri { new_cap } else { s.capacities[i] };
            prop_assert!(
                u <= cap * (1.0 + 1e-9) + 1e-9,
                "resource {i}: used {u} > cap {cap} after shrink"
            );
        }
        let before: Vec<f64> = fids.iter().map(|f| sys.flow_remaining(*f).unwrap()).collect();
        if let Some((_, dt)) = sys.next_completion() {
            sys.advance(dt);
            for (i, f) in fids.iter().enumerate() {
                if let Some(rem) = sys.flow_remaining(*f) {
                    prop_assert!(rem <= before[i] + 1e-9, "flow {i} remaining grew: {rem} > {}", before[i]);
                }
            }
        }
    }

    /// A zero-capacity outage stalls exactly the flows crossing the dead
    /// resource; restoring the capacity lets the system drain to empty.
    #[test]
    fn zero_capacity_outage_then_recovery_drains(s in scenario()) {
        let (mut sys, rids, fids) = build(&s);
        sys.set_capacity(rids[0], 0.0).unwrap();
        for (f, (links, _, _, _)) in fids.iter().zip(&s.flows) {
            let rate = sys.flow_rate(*f).unwrap();
            if links.contains(&0) {
                prop_assert!(rate == 0.0, "flow through dead resource runs at {rate}");
            } else {
                prop_assert!(rate > 0.0, "unaffected flow stalled");
            }
        }
        sys.set_capacity(rids[0], s.capacities[0]).unwrap();
        let mut guard = 0;
        while let Some((_, dt)) = sys.next_completion() {
            sys.advance(dt);
            guard += 1;
            prop_assert!(guard < 10_000, "did not terminate after recovery");
        }
        prop_assert_eq!(sys.active_flows(), 0);
    }

    /// Running the system to completion terminates and delivers every flow
    /// exactly once.
    #[test]
    fn drains_to_empty(s in scenario()) {
        let (mut sys, _, _) = build(&s);
        let mut completed = Vec::new();
        let mut guard = 0;
        while let Some((_, dt)) = sys.next_completion() {
            completed.extend(sys.advance(dt).into_iter().map(|(_, tag)| tag));
            guard += 1;
            prop_assert!(guard < 10_000, "did not terminate");
        }
        prop_assert_eq!(sys.active_flows(), 0);
        completed.sort_unstable();
        let expect: Vec<u64> = (0..s.flows.len() as u64).collect();
        prop_assert_eq!(completed, expect);
    }
}
