//! Virtual-time event queue.
//!
//! A minimal, allocation-friendly priority queue of `(Time, E)` pairs. Events
//! scheduled for the same instant fire in the order they were scheduled
//! (FIFO), which keeps simulations deterministic without requiring the event
//! payload itself to be ordered.

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue. Ordered by `(time, seq)` ascending; `BinaryHeap` is
/// a max-heap, so the `Ord` implementation is reversed.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the entry with the *smallest* (time, seq) must be the
        // heap maximum so that `pop` yields events in chronological order.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue advancing a virtual clock.
///
/// ```
/// use cynthia_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(2.0, "b");
/// q.schedule_at(1.0, "a");
/// q.schedule_after(1.0, "a2"); // also at t=1.0, but after "a"
/// assert_eq!(q.pop(), Some((1.0, "a")));
/// assert_eq!(q.pop(), Some((1.0, "a2")));
/// assert_eq!(q.now(), 1.0);
/// assert_eq!(q.pop(), Some((2.0, "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Time,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `0.0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN or earlier than the current clock.
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(!at.is_nan(), "cannot schedule an event at NaN");
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` `delay` seconds from now.
    pub fn schedule_after(&mut self, delay: Time, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock holds).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        crate::obs::event_popped();
        Some((entry.at, entry.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advances the clock to `t` without firing anything. Used by fluid-flow
    /// integration when the next state change is not queue-driven.
    ///
    /// # Panics
    /// Panics if `t` is in the past or beyond the next pending event.
    pub fn advance_to(&mut self, t: Time) {
        assert!(
            t >= self.now,
            "advance_to into the past: {t} < {}",
            self.now
        );
        if let Some(next) = self.peek_time() {
            assert!(
                t <= next + crate::EPS,
                "advance_to({t}) would skip a pending event at {next}"
            );
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_chronological_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, 3);
        q.schedule_at(1.0, 1);
        q.schedule_at(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(1.5, ());
        q.schedule_at(4.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, "first");
        q.pop();
        q.schedule_after(3.0, "second");
        assert_eq!(q.pop(), Some((5.0, "second")));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    fn advance_to_moves_clock_without_firing() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(10.0, ());
        q.advance_to(7.0);
        assert_eq!(q.now(), 7.0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(1.0, ());
        q.advance_to(2.0);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 7u8);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((1.0, 7u8)));
        assert!(q.is_empty());
    }
}
