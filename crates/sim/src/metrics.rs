//! Measurement plumbing for simulations: time-weighted utilization,
//! throughput time series, and summary statistics.

use crate::Time;
use serde::{Deserialize, Serialize};

/// Errors from the measurement trackers (same non-panicking convention as
/// `cynthia_cloud::BillingError`: callers decide whether a violation is a
/// bug or recoverable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricsError {
    /// An update arrived with a timestamp before the previous one.
    OutOfOrder {
        /// Timestamp of the rejected update.
        t: Time,
        /// Timestamp of the latest accepted update.
        since: Time,
    },
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::OutOfOrder { t, since } => {
                write!(f, "utilization update out of order: {t} < {since}")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// Integrates a piecewise-constant utilization level over virtual time.
///
/// The Cynthia paper reports *average CPU utilization* of PS nodes and
/// workers (Table 2): the time integral of the instantaneous utilization
/// divided by elapsed time. `UtilizationTracker` records level changes and
/// produces that average for any observation window.
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    /// Time at which the current level became active.
    since: Time,
    level: f64,
    /// Accumulated integral of level over [start, since].
    integral: f64,
    start: Time,
}

impl UtilizationTracker {
    /// Starts tracking at `t0` with utilization 0.
    pub fn new(t0: Time) -> Self {
        UtilizationTracker {
            since: t0,
            level: 0.0,
            integral: 0.0,
            start: t0,
        }
    }

    /// Records that the utilization level changed to `level` at time `t`.
    ///
    /// # Errors
    /// [`MetricsError::OutOfOrder`] when `t` precedes the previous update
    /// (beyond the simulator's `EPS` slack); the tracker state is left
    /// untouched, matching the non-panicking `BillingMeter` convention.
    pub fn set_level(&mut self, t: Time, level: f64) -> Result<(), MetricsError> {
        if t < self.since - crate::EPS {
            return Err(MetricsError::OutOfOrder {
                t,
                since: self.since,
            });
        }
        let dt = (t - self.since).max(0.0);
        self.integral += self.level * dt;
        self.since = t;
        self.level = level;
        Ok(())
    }

    /// The current instantaneous level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Average utilization over `[start, t]`.
    pub fn average_until(&self, t: Time) -> f64 {
        let total = t - self.start;
        if total <= 0.0 {
            return 0.0;
        }
        let tail = self.level * (t - self.since).max(0.0);
        (self.integral + tail) / total
    }
}

/// Accumulates transferred volume and buckets it into a rate time series.
///
/// Used to reproduce Figs. 2 and 7 (PS network throughput over time).
#[derive(Debug, Clone, Default)]
pub struct ThroughputRecorder {
    /// `(time, volume)` increments in non-decreasing time order.
    samples: Vec<(Time, f64)>,
}

impl ThroughputRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `volume` (MB) finished transferring during the interval
    /// ending at `t` with duration `dt`; the volume is spread uniformly over
    /// the interval when bucketing.
    pub fn record_interval(&mut self, t_end: Time, dt: Time, volume: f64) {
        if volume <= 0.0 {
            return;
        }
        if dt <= 0.0 {
            self.samples.push((t_end, volume));
        } else {
            // Spread as two endpoints; bucketing interpolates by midpoint.
            self.samples.push((t_end - dt * 0.5, volume));
        }
    }

    /// Total recorded volume.
    pub fn total_volume(&self) -> f64 {
        self.samples.iter().map(|(_, v)| v).sum()
    }

    /// Buckets the recorded volume into windows of `window` seconds over
    /// `[0, horizon]`, returning `(window_center_time, rate)` pairs where
    /// rate = volume in window / window length.
    pub fn series(&self, window: Time, horizon: Time) -> Vec<(Time, f64)> {
        assert!(window > 0.0, "window must be positive");
        let n = (horizon / window).ceil().max(1.0) as usize;
        let mut buckets = vec![0.0f64; n];
        for &(t, v) in &self.samples {
            let i = ((t / window) as usize).min(n - 1);
            buckets[i] += v;
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, v)| ((i as f64 + 0.5) * window, v / window))
            .collect()
    }

    /// Mean rate over the busy portion `[0, horizon]`.
    pub fn mean_rate(&self, horizon: Time) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            self.total_volume() / horizon
        }
    }

    /// Peak bucketed rate for the given window size.
    pub fn peak_rate(&self, window: Time, horizon: Time) -> f64 {
        self.series(window, horizon)
            .into_iter()
            .map(|(_, r)| r)
            .fold(0.0, f64::max)
    }
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    pub n: usize,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    /// Computes count/mean/sample-std/min/max of `xs`. Empty input yields
    /// zeros.
    pub fn of(xs: &[f64]) -> Stats {
        let n = xs.len();
        if n == 0 {
            return Stats {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Stats {
            n,
            mean,
            std: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Mean absolute percentage error between predictions and observations,
/// the accuracy metric used throughout Sec. 5.1 of the paper.
///
/// # Panics
/// Panics if the slices differ in length or an observation is zero.
pub fn mape(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len(), "length mismatch");
    assert!(!predicted.is_empty(), "mape of empty sample");
    let total: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| {
            assert!(*o != 0.0, "observation must be nonzero");
            ((p - o) / o).abs()
        })
        .sum();
    total / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_integrates_levels() {
        let mut u = UtilizationTracker::new(0.0);
        u.set_level(0.0, 1.0).unwrap(); // busy on [0,4)
        u.set_level(4.0, 0.0).unwrap(); // idle on [4,8)
        assert!((u.average_until(8.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_partial_levels() {
        let mut u = UtilizationTracker::new(10.0);
        u.set_level(10.0, 0.25).unwrap();
        u.set_level(14.0, 0.75).unwrap();
        // [10,14): 0.25, [14,18): 0.75 -> average 0.5
        assert!((u.average_until(18.0) - 0.5).abs() < 1e-12);
        assert_eq!(u.level(), 0.75);
    }

    #[test]
    fn out_of_order_update_is_rejected_and_state_preserved() {
        let mut u = UtilizationTracker::new(0.0);
        u.set_level(5.0, 1.0).unwrap();
        let err = u.set_level(2.0, 0.5).unwrap_err();
        assert_eq!(err, MetricsError::OutOfOrder { t: 2.0, since: 5.0 });
        // The rejected update left the tracker untouched.
        assert_eq!(u.level(), 1.0);
        assert!((u.average_until(10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_before_any_time_elapsed_is_zero() {
        let u = UtilizationTracker::new(5.0);
        assert_eq!(u.average_until(5.0), 0.0);
    }

    #[test]
    fn throughput_buckets_volume() {
        let mut r = ThroughputRecorder::new();
        r.record_interval(1.0, 1.0, 10.0); // midpoint 0.5 -> bucket 0
        r.record_interval(3.0, 1.0, 30.0); // midpoint 2.5 -> bucket 2
        let s = r.series(1.0, 4.0);
        assert_eq!(s.len(), 4);
        assert!((s[0].1 - 10.0).abs() < 1e-12);
        assert!((s[2].1 - 30.0).abs() < 1e-12);
        assert_eq!(s[1].1, 0.0);
        assert!((r.total_volume() - 40.0).abs() < 1e-12);
        assert!((r.mean_rate(4.0) - 10.0).abs() < 1e-12);
        assert!((r.peak_rate(1.0, 4.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_sample() {
        let s = Stats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample variance of 1..4 = 5/3.
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_and_singleton() {
        assert_eq!(Stats::of(&[]).n, 0);
        let s = Stats::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn mape_basic() {
        let e = mape(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((e - 0.1).abs() < 1e-12);
    }
}
