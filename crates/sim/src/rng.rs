//! Deterministic randomness plumbing.
//!
//! Every stochastic element of the simulation (compute-time jitter, loss
//! noise) draws from an RNG derived from a single master seed plus a stable
//! string tag and index, so that (a) whole experiments replay bit-for-bit
//! and (b) changing the number of workers does not perturb the random
//! streams of unrelated components.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives a child seed from `(master, tag, index)` using an FNV-1a style
/// mix. Stable across platforms and releases (unlike `std`'s `DefaultHasher`,
/// whose algorithm is unspecified).
pub fn sub_seed(master: u64, tag: &str, index: u64) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET ^ master;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    for b in index.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so similar inputs diverge.
    let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Creates a fast deterministic RNG for the component `(tag, index)`.
pub fn component_rng(master: u64, tag: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(sub_seed(master, tag, index))
}

/// A multiplicative log-normal jitter source with a given coefficient of
/// variation. Used to perturb compute durations the way real iterations
/// vary (the paper repeats each workload three times and reports error
/// bars).
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: SmallRng,
    /// log-space standard deviation.
    sigma: f64,
    /// log-space mean chosen so that E[factor] = 1.
    mu: f64,
}

impl Jitter {
    /// `cv` is the coefficient of variation of the multiplicative factor;
    /// `cv = 0` disables jitter entirely.
    pub fn new(master: u64, tag: &str, index: u64, cv: f64) -> Self {
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        let sigma2 = (1.0 + cv * cv).ln();
        Jitter {
            rng: component_rng(master, tag, index),
            sigma: sigma2.sqrt(),
            mu: -0.5 * sigma2,
        }
    }

    /// Draws a factor with mean 1. With `cv = 0` always returns exactly 1.
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        // Box-Muller from two uniforms; SmallRng is fine for simulation use.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Applies the jitter to a duration.
    pub fn perturb(&mut self, duration: f64) -> f64 {
        duration * self.factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seed_is_deterministic_and_tag_sensitive() {
        assert_eq!(sub_seed(1, "worker", 0), sub_seed(1, "worker", 0));
        assert_ne!(sub_seed(1, "worker", 0), sub_seed(1, "worker", 1));
        assert_ne!(sub_seed(1, "worker", 0), sub_seed(1, "ps", 0));
        assert_ne!(sub_seed(1, "worker", 0), sub_seed(2, "worker", 0));
    }

    #[test]
    fn zero_cv_is_exactly_one() {
        let mut j = Jitter::new(42, "t", 0, 0.0);
        for _ in 0..10 {
            assert_eq!(j.factor(), 1.0);
        }
    }

    #[test]
    fn jitter_mean_is_close_to_one() {
        let mut j = Jitter::new(7, "t", 0, 0.05);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| j.factor()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "jitter mean drifted: {mean}");
    }

    #[test]
    fn jitter_cv_matches_request() {
        let mut j = Jitter::new(7, "t", 1, 0.10);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| j.factor()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.10).abs() < 0.02, "cv drifted: {cv}");
    }

    #[test]
    fn identical_streams_replay() {
        let mut a = Jitter::new(9, "w", 3, 0.03);
        let mut b = Jitter::new(9, "w", 3, 0.03);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }
}
