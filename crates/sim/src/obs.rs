//! Instrumentation hooks for the simulation core (feature `obs`).
//!
//! Call sites in `events`/`fluid` invoke these thin functions
//! unconditionally; with the `obs` feature off they compile to empty
//! inline bodies, so the hot paths carry zero instrumentation cost and —
//! by construction — identical behavior. With the feature on, each hook
//! is one relaxed atomic check plus a relaxed counter bump against
//! process-wide metrics cached in `OnceLock`s (no registry lookup per
//! event). Hooks only ever *read* simulation state; they never perturb it.

#[cfg(feature = "obs")]
mod real {
    use cynthia_obs::{metrics, Counter};
    use std::sync::OnceLock;

    fn events() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_sim_events_total",
                "Events popped from the discrete-event queue",
            )
        })
    }

    fn flows_started() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_sim_flows_started_total",
                "Flows admitted to the fluid max-min solver",
            )
        })
    }

    fn flows_completed() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_sim_flows_completed_total",
                "Flows that drained to zero remaining volume",
            )
        })
    }

    fn flows_cancelled() -> &'static Counter {
        static C: OnceLock<Counter> = OnceLock::new();
        C.get_or_init(|| {
            metrics().counter(
                "cynthia_sim_flows_cancelled_total",
                "Flows cancelled before completion (revocations, resets)",
            )
        })
    }

    #[inline]
    pub fn event_popped() {
        if cynthia_obs::enabled() {
            events().inc();
        }
    }

    #[inline]
    pub fn flow_started() {
        if cynthia_obs::enabled() {
            flows_started().inc();
        }
    }

    #[inline]
    pub fn flows_finished(n: usize) {
        if n > 0 && cynthia_obs::enabled() {
            flows_completed().add(n as u64);
        }
    }

    #[inline]
    pub fn flows_dropped(n: usize) {
        if n > 0 && cynthia_obs::enabled() {
            flows_cancelled().add(n as u64);
        }
    }
}

#[cfg(feature = "obs")]
pub use real::*;

/// No-op hook bodies compiled when the `obs` feature is off.
#[cfg(not(feature = "obs"))]
mod stub {
    #[inline(always)]
    pub fn event_popped() {}
    #[inline(always)]
    pub fn flow_started() {}
    #[inline(always)]
    pub fn flows_finished(_n: usize) {}
    #[inline(always)]
    pub fn flows_dropped(_n: usize) {}
}

#[cfg(not(feature = "obs"))]
pub use stub::*;
