//! # cynthia-sim — discrete-event simulation core
//!
//! Foundation for the Cynthia reproduction's ground-truth cluster simulator:
//!
//! * [`events::EventQueue`] — a virtual-time event queue with deterministic
//!   FIFO tie-breaking for simultaneous events.
//! * [`fluid::FluidSystem`] — weighted max-min fair sharing of capacitated
//!   resources (NIC links, processor-sharing CPUs) among concurrent flows,
//!   solved by progressive filling (water-filling).
//! * [`metrics`] — busy-time utilization tracking, throughput time series,
//!   and summary statistics.
//! * [`rng`] — deterministic seed derivation and log-normal jitter so every
//!   simulation is reproducible from a single master seed.
//!
//! Time is represented as `f64` seconds ([`Time`]). All components are
//! deterministic: two runs with the same inputs produce bit-identical event
//! orderings and metrics.

pub mod events;
pub mod fluid;
pub mod metrics;
pub mod obs;
pub mod rng;

/// Virtual time, in seconds since the start of the simulation.
pub type Time = f64;

/// Tolerance used when comparing remaining work/bytes against zero.
pub const EPS: f64 = 1e-9;
