//! Weighted max-min fair fluid resource sharing.
//!
//! Network links (a parameter server's NIC, a worker's NIC) and
//! processor-sharing CPUs are modelled as capacitated *resources*. Work in
//! progress (a gradient push, a parameter pull, a PS update application) is a
//! *flow* with a volume (MB, or GFLOP for CPU work) traversing one or more
//! resources. At any instant the rate of every active flow is the weighted
//! max-min fair allocation computed by progressive filling: all flows grow
//! proportionally to their weight until a resource saturates, the flows
//! crossing it freeze, and the rest keep growing.
//!
//! This is the classical fluid approximation used by flow-level network
//! simulators; it captures exactly the contention effects the Cynthia paper
//! measures (PS NIC saturation in Figs. 2 and 7, PS CPU saturation in
//! Table 2) without packet-level detail.

use crate::{Time, EPS};

/// Rates below this are treated as stalled when searching for the next flow
/// completion.
const RATE_EPS: f64 = 1e-12;

/// Identifies a resource within a [`FluidSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) u32);

/// Why a [`FluidSystem`] mutation was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FluidError {
    /// The [`ResourceId`] does not belong to this system.
    UnknownResource {
        /// Offending resource index.
        index: u32,
        /// Number of registered resources.
        n_resources: usize,
    },
    /// A capacity was negative, NaN, or infinite.
    BadCapacity {
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for FluidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FluidError::UnknownResource { index, n_resources } => {
                write!(f, "unknown resource {index} (system has {n_resources})")
            }
            FluidError::BadCapacity { value } => {
                write!(f, "capacity must be finite and non-negative, got {value}")
            }
        }
    }
}

impl std::error::Error for FluidError {}

/// Identifies a flow within a [`FluidSystem`]. Ids are generational: once a
/// flow completes or is cancelled its id is never valid again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    idx: u32,
    gen: u32,
}

/// A capacitated resource (link bandwidth in MB/s, CPU rate in GFLOPS, ...).
#[derive(Debug, Clone)]
struct Resource {
    capacity: f64,
    name: String,
}

#[derive(Debug, Clone)]
struct Flow {
    links: Vec<ResourceId>,
    remaining: f64,
    rate: f64,
    weight: f64,
    max_rate: f64,
    /// Opaque caller payload, returned on completion.
    tag: u64,
}

#[derive(Debug, Clone)]
enum Slot {
    Occupied { gen: u32, flow: Flow },
    Vacant { gen: u32 },
}

/// Parameters for starting a flow. See [`FluidSystem::start_flow`].
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Resources the flow traverses; its rate is constrained by all of them.
    pub links: Vec<ResourceId>,
    /// Total volume to transfer/process (same unit as the link capacities
    /// per second).
    pub volume: f64,
    /// Max-min weight (1.0 = equal share).
    pub weight: f64,
    /// Optional hard rate cap (e.g. an application-level throttle).
    pub max_rate: f64,
    /// Opaque payload handed back on completion.
    pub tag: u64,
}

impl FlowSpec {
    /// A unit-weight, uncapped flow.
    pub fn new(links: Vec<ResourceId>, volume: f64, tag: u64) -> Self {
        FlowSpec {
            links,
            volume,
            weight: 1.0,
            max_rate: f64::INFINITY,
            tag,
        }
    }
}

/// A set of resources and the flows currently sharing them.
///
/// Typical driving loop (see `cynthia-train` for the real one):
///
/// ```
/// use cynthia_sim::fluid::{FluidSystem, FlowSpec};
///
/// let mut sys = FluidSystem::new();
/// let link = sys.add_resource(100.0, "ps-nic");
/// let a = sys.start_flow(FlowSpec::new(vec![link], 50.0, 1));
/// let _b = sys.start_flow(FlowSpec::new(vec![link], 200.0, 2));
/// // Two equal flows share 100 MB/s -> 50 each.
/// assert!((sys.flow_rate(a).unwrap() - 50.0).abs() < 1e-9);
/// let (first, dt) = sys.next_completion().unwrap();
/// assert_eq!(first, a);             // 50 MB at 50 MB/s
/// assert!((dt - 1.0).abs() < 1e-9);
/// let done = sys.advance(dt);
/// assert_eq!(done, vec![(a, 1)]);
/// // The survivor now gets the full link.
/// assert!((sys.total_rate_on(link) - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default)]
pub struct FluidSystem {
    resources: Vec<Resource>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    active: usize,
    dirty: bool,
}

impl FluidSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with the given capacity (per-second units).
    pub fn add_resource(&mut self, capacity: f64, name: impl Into<String>) -> ResourceId {
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "capacity must be finite and non-negative"
        );
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            capacity,
            name: name.into(),
        });
        self.dirty = true;
        id
    }

    /// Changes a resource's capacity (modelling background interference, a
    /// degraded link, or a downed node). In-flight flows re-share on the
    /// next query; shrinking below the current total rate is legal and
    /// simply slows the flows crossing `r`.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) -> Result<(), FluidError> {
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(FluidError::BadCapacity { value: capacity });
        }
        let n_resources = self.resources.len();
        let res = self
            .resources
            .get_mut(r.0 as usize)
            .ok_or(FluidError::UnknownResource {
                index: r.0,
                n_resources,
            })?;
        res.capacity = capacity;
        self.dirty = true;
        Ok(())
    }

    /// The configured capacity of `r` (0 for a foreign id).
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources.get(r.0 as usize).map_or(0.0, |x| x.capacity)
    }

    /// The resource's diagnostic name, or `None` for a foreign id.
    pub fn resource_name(&self, r: ResourceId) -> Option<&str> {
        self.resources.get(r.0 as usize).map(|x| x.name.as_str())
    }

    /// Number of flows currently in the system.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Starts a flow and returns its id. Rates of all flows are recomputed
    /// lazily on the next query.
    ///
    /// A zero-volume flow is legal and completes on the next [`advance`] of
    /// any duration (including 0).
    ///
    /// [`advance`]: FluidSystem::advance
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.volume >= 0.0, "flow volume must be non-negative");
        assert!(spec.weight > 0.0, "flow weight must be positive");
        assert!(
            !spec.links.is_empty() || spec.max_rate.is_finite(),
            "a flow needs at least one link or a finite max_rate"
        );
        crate::obs::flow_started();
        let mut links = spec.links;
        links.sort_by_key(|r| r.0);
        links.dedup();
        for l in &links {
            assert!(
                (l.0 as usize) < self.resources.len(),
                "unknown resource {l:?}"
            );
        }
        let flow = Flow {
            links,
            remaining: spec.volume,
            rate: 0.0,
            weight: spec.weight,
            max_rate: spec.max_rate,
            tag: spec.tag,
        };
        self.active += 1;
        self.dirty = true;
        if let Some(idx) = self.free.pop() {
            let gen = match self.slots[idx as usize] {
                Slot::Vacant { gen } => gen,
                Slot::Occupied { .. } => unreachable!("free list held an occupied slot"),
            };
            self.slots[idx as usize] = Slot::Occupied { gen, flow };
            FlowId { idx, gen }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot::Occupied { gen: 0, flow });
            FlowId { idx, gen: 0 }
        }
    }

    fn get(&self, id: FlowId) -> Option<&Flow> {
        match self.slots.get(id.idx as usize)? {
            Slot::Occupied { gen, flow } if *gen == id.gen => Some(flow),
            _ => None,
        }
    }

    /// Removes a flow before completion. Returns its remaining volume, or
    /// `None` if the id is stale.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<f64> {
        let remaining = self.get(id)?.remaining;
        self.release(id.idx);
        crate::obs::flows_dropped(1);
        Some(remaining)
    }

    /// Cancels every active flow whose tag satisfies `pred` (the revocation
    /// path: a revoked worker's in-flight pushes and pulls vanish with the
    /// instance). Returns the `(tag, remaining volume)` of cancelled flows
    /// in slot order, which is deterministic.
    pub fn cancel_flows_where(&mut self, mut pred: impl FnMut(u64) -> bool) -> Vec<(u64, f64)> {
        let victims: Vec<(u32, u64, f64)> = self
            .iter_flows()
            .filter(|(_, f)| pred(f.tag))
            .map(|(idx, f)| (idx, f.tag, f.remaining))
            .collect();
        let cancelled: Vec<(u64, f64)> = victims
            .into_iter()
            .map(|(idx, tag, remaining)| {
                self.release(idx);
                (tag, remaining)
            })
            .collect();
        crate::obs::flows_dropped(cancelled.len());
        cancelled
    }

    fn release(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        if let Slot::Occupied { gen, .. } = slot {
            *slot = Slot::Vacant {
                gen: gen.wrapping_add(1),
            };
            self.free.push(idx);
            self.active -= 1;
            self.dirty = true;
        }
    }

    /// Current max-min rate of `id`, or `None` if the flow is gone.
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        self.ensure_rates();
        self.get(id).map(|f| f.rate)
    }

    /// Remaining volume of `id`, or `None` if the flow is gone.
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.get(id).map(|f| f.remaining)
    }

    /// Sum of current flow rates through `r` (≤ capacity).
    pub fn total_rate_on(&mut self, r: ResourceId) -> f64 {
        self.ensure_rates();
        self.iter_flows()
            .filter(|(_, f)| f.links.contains(&r))
            .map(|(_, f)| f.rate)
            .sum()
    }

    /// Instantaneous utilization of `r` in `[0, 1]` (0 for zero-capacity
    /// resources).
    pub fn utilization(&mut self, r: ResourceId) -> f64 {
        let cap = self.capacity(r);
        if cap <= 0.0 {
            0.0
        } else {
            (self.total_rate_on(r) / cap).min(1.0)
        }
    }

    fn iter_flows(&self) -> impl Iterator<Item = (u32, &Flow)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { flow, .. } => Some((i as u32, flow)),
            Slot::Vacant { .. } => None,
        })
    }

    fn iter_flows_with_id(&self) -> impl Iterator<Item = (FlowId, &Flow)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { gen, flow } => Some((
                FlowId {
                    idx: i as u32,
                    gen: *gen,
                },
                flow,
            )),
            Slot::Vacant { .. } => None,
        })
    }

    fn flow_by_idx(&self, idx: u32) -> Option<&Flow> {
        match self.slots.get(idx as usize)? {
            Slot::Occupied { flow, .. } => Some(flow),
            Slot::Vacant { .. } => None,
        }
    }

    fn set_rate_by_idx(&mut self, idx: u32, rate: f64) {
        if let Some(Slot::Occupied { flow, .. }) = self.slots.get_mut(idx as usize) {
            flow.rate = rate;
        }
    }

    /// Recomputes all flow rates by weighted progressive filling.
    ///
    /// Each round, every unfrozen flow `f` grows at rate `weight_f · λ`. The
    /// smallest `λ` at which either (a) a resource saturates or (b) a flow
    /// hits its `max_rate` freezes the affected flows, and the remaining
    /// flows keep growing. Terminates in at most `resources + flows` rounds.
    fn ensure_rates(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;

        let n_res = self.resources.len();
        let mut used = vec![0.0f64; n_res]; // rate already frozen on each resource
        let mut frozen: Vec<bool> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            frozen.push(!matches!(slot, Slot::Occupied { .. }));
        }
        // Zero-rate init.
        for slot in self.slots.iter_mut() {
            if let Slot::Occupied { flow, .. } = slot {
                flow.rate = 0.0;
            }
        }

        loop {
            // Aggregate unfrozen weight per resource.
            let mut weight_on = vec![0.0f64; n_res];
            let mut any_unfrozen = false;
            for (i, f) in self.iter_flows() {
                if frozen[i as usize] {
                    continue;
                }
                any_unfrozen = true;
                for l in &f.links {
                    weight_on[l.0 as usize] += f.weight;
                }
            }
            if !any_unfrozen {
                break;
            }

            // Bottleneck level over resources and flow caps.
            let mut lambda = f64::INFINITY;
            for r in 0..n_res {
                if weight_on[r] > 0.0 {
                    let level = (self.resources[r].capacity - used[r]).max(0.0) / weight_on[r];
                    lambda = lambda.min(level);
                }
            }
            for (i, f) in self.iter_flows() {
                if !frozen[i as usize] && f.max_rate.is_finite() {
                    lambda = lambda.min(f.max_rate / f.weight);
                }
            }
            assert!(
                lambda.is_finite(),
                "unfrozen flow with no binding constraint (flow without links?)"
            );

            // Freeze every flow touching a resource saturated at `lambda`,
            // and every flow whose cap equals `lambda`.
            let tol = 1e-12 + lambda * 1e-12;
            let mut saturated = vec![false; n_res];
            for r in 0..n_res {
                if weight_on[r] > 0.0 {
                    let level = (self.resources[r].capacity - used[r]).max(0.0) / weight_on[r];
                    saturated[r] = level <= lambda + tol;
                }
            }
            let mut froze_any = false;
            let ids: Vec<u32> = self.iter_flows().map(|(i, _)| i).collect();
            for i in ids {
                if frozen[i as usize] {
                    continue;
                }
                let Some(f) = self.flow_by_idx(i) else {
                    continue;
                };
                let (hits_saturated, capped, weight, max_rate, links) = (
                    f.links.iter().any(|l| saturated[l.0 as usize]),
                    f.max_rate.is_finite() && f.max_rate / f.weight <= lambda + tol,
                    f.weight,
                    f.max_rate,
                    f.links.clone(),
                );
                if hits_saturated || capped {
                    let rate = if capped && !hits_saturated {
                        max_rate
                    } else {
                        weight * lambda
                    };
                    self.set_rate_by_idx(i, rate);
                    for l in &links {
                        used[l.0 as usize] += rate;
                    }
                    frozen[i as usize] = true;
                    froze_any = true;
                }
            }
            assert!(froze_any, "progressive filling failed to make progress");
        }
    }

    /// Time until the next flow completes at current rates, as
    /// `(flow, dt)`, or `None` if no flow can make progress (either the
    /// system is empty or every active flow is stalled at rate ≈ 0; use
    /// [`FluidSystem::is_stalled`] to distinguish).
    pub fn next_completion(&mut self) -> Option<(FlowId, Time)> {
        self.ensure_rates();
        let mut best: Option<(FlowId, Time)> = None;
        for (id, f) in self.iter_flows_with_id() {
            let dt = if f.remaining <= EPS {
                0.0
            } else if f.rate > RATE_EPS {
                f.remaining / f.rate
            } else {
                continue;
            };
            match best {
                Some((_, bdt)) if bdt <= dt => {}
                _ => best = Some((id, dt)),
            }
        }
        best
    }

    /// True if there are active flows but none can progress.
    pub fn is_stalled(&mut self) -> bool {
        self.active > 0 && self.next_completion().is_none()
    }

    /// Advances time by `dt`, draining every flow at its current rate.
    /// Returns the `(id, tag)` of flows that completed, in slot order
    /// (deterministic).
    pub fn advance(&mut self, dt: Time) -> Vec<(FlowId, u64)> {
        assert!(dt >= 0.0, "cannot advance by negative time");
        self.ensure_rates();
        let mut done = Vec::new();
        for idx in 0..self.slots.len() as u32 {
            let (finished, gen, tag) = match &mut self.slots[idx as usize] {
                Slot::Occupied { gen, flow } => {
                    flow.remaining = (flow.remaining - flow.rate * dt).max(0.0);
                    (flow.remaining <= EPS, *gen, flow.tag)
                }
                Slot::Vacant { .. } => continue,
            };
            if finished {
                done.push((FlowId { idx, gen }, tag));
            }
        }
        for (id, _) in &done {
            self.release(id.idx);
        }
        crate::obs::flows_finished(done.len());
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(10.0, "link");
        let f = sys.start_flow(FlowSpec::new(vec![r], 100.0, 0));
        assert!(approx(sys.flow_rate(f).unwrap(), 10.0));
        let (id, dt) = sys.next_completion().unwrap();
        assert_eq!(id, f);
        assert!(approx(dt, 10.0));
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(90.0, "link");
        let flows: Vec<_> = (0..3)
            .map(|i| sys.start_flow(FlowSpec::new(vec![r], 100.0, i)))
            .collect();
        for f in &flows {
            assert!(approx(sys.flow_rate(*f).unwrap(), 30.0));
        }
    }

    #[test]
    fn weights_bias_the_shares() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(90.0, "link");
        let heavy = sys.start_flow(FlowSpec {
            links: vec![r],
            volume: 1.0,
            weight: 2.0,
            max_rate: f64::INFINITY,
            tag: 0,
        });
        let light = sys.start_flow(FlowSpec::new(vec![r], 1.0, 1));
        assert!(approx(sys.flow_rate(heavy).unwrap(), 60.0));
        assert!(approx(sys.flow_rate(light).unwrap(), 30.0));
    }

    #[test]
    fn max_rate_caps_redistribute_to_others() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(100.0, "link");
        let capped = sys.start_flow(FlowSpec {
            links: vec![r],
            volume: 1.0,
            weight: 1.0,
            max_rate: 10.0,
            tag: 0,
        });
        let free = sys.start_flow(FlowSpec::new(vec![r], 1.0, 1));
        assert!(approx(sys.flow_rate(capped).unwrap(), 10.0));
        assert!(approx(sys.flow_rate(free).unwrap(), 90.0));
    }

    #[test]
    fn two_link_flow_limited_by_narrow_link() {
        let mut sys = FluidSystem::new();
        let wide = sys.add_resource(100.0, "worker-nic");
        let narrow = sys.add_resource(10.0, "ps-nic");
        let f = sys.start_flow(FlowSpec::new(vec![wide, narrow], 1.0, 0));
        assert!(approx(sys.flow_rate(f).unwrap(), 10.0));
    }

    #[test]
    fn classic_max_min_example() {
        // Three flows: A on link1 only, B on link1+link2, C on link2 only.
        // link1 cap 10, link2 cap 4. Progressive filling: B and C freeze at
        // 2 when link2 saturates; A then takes the rest of link1 (8).
        let mut sys = FluidSystem::new();
        let l1 = sys.add_resource(10.0, "l1");
        let l2 = sys.add_resource(4.0, "l2");
        let a = sys.start_flow(FlowSpec::new(vec![l1], 1.0, 0));
        let b = sys.start_flow(FlowSpec::new(vec![l1, l2], 1.0, 1));
        let c = sys.start_flow(FlowSpec::new(vec![l2], 1.0, 2));
        assert!(approx(sys.flow_rate(b).unwrap(), 2.0));
        assert!(approx(sys.flow_rate(c).unwrap(), 2.0));
        assert!(approx(sys.flow_rate(a).unwrap(), 8.0));
    }

    #[test]
    fn completion_frees_capacity_for_survivors() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(100.0, "link");
        let short = sys.start_flow(FlowSpec::new(vec![r], 50.0, 7));
        let long = sys.start_flow(FlowSpec::new(vec![r], 500.0, 8));
        let (id, dt) = sys.next_completion().unwrap();
        assert_eq!(id, short);
        assert!(approx(dt, 1.0));
        let done = sys.advance(dt);
        assert_eq!(done, vec![(short, 7)]);
        assert!(approx(sys.flow_rate(long).unwrap(), 100.0));
        // 500 - 50 already moved = 450 left at 100/s.
        let (_, dt2) = sys.next_completion().unwrap();
        assert!(approx(dt2, 4.5));
    }

    #[test]
    fn zero_volume_flow_completes_immediately() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(1.0, "link");
        let f = sys.start_flow(FlowSpec::new(vec![r], 0.0, 3));
        let (id, dt) = sys.next_completion().unwrap();
        assert_eq!(id, f);
        assert_eq!(dt, 0.0);
        let done = sys.advance(0.0);
        assert_eq!(done, vec![(f, 3)]);
    }

    #[test]
    fn cancel_returns_remaining() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(10.0, "link");
        let f = sys.start_flow(FlowSpec::new(vec![r], 30.0, 0));
        sys.advance(1.0);
        let rem = sys.cancel_flow(f).unwrap();
        assert!(approx(rem, 20.0));
        assert_eq!(sys.active_flows(), 0);
        assert_eq!(sys.cancel_flow(f), None, "stale id must not resolve");
    }

    #[test]
    fn cancel_where_takes_matching_flows_only() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(10.0, "link");
        sys.start_flow(FlowSpec::new(vec![r], 30.0, 10));
        sys.start_flow(FlowSpec::new(vec![r], 30.0, 21));
        sys.start_flow(FlowSpec::new(vec![r], 30.0, 12));
        sys.advance(1.0);
        // Even tags belong to the "revoked worker".
        let gone = sys.cancel_flows_where(|t| t % 2 == 0);
        let tags: Vec<u64> = gone.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec![10, 12], "slot order, matching only");
        for (_, rem) in &gone {
            assert!((rem - (30.0 - 10.0 / 3.0)).abs() < 1e-9);
        }
        assert_eq!(sys.active_flows(), 1);
        // The survivor now gets the whole link.
        let (_, dt) = sys.next_completion().unwrap();
        assert!((dt - (30.0 - 10.0 / 3.0) / 10.0).abs() < 1e-9);
    }

    #[test]
    fn stale_ids_after_slot_reuse_do_not_resolve() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(10.0, "link");
        let f1 = sys.start_flow(FlowSpec::new(vec![r], 1.0, 0));
        sys.cancel_flow(f1);
        let f2 = sys.start_flow(FlowSpec::new(vec![r], 1.0, 1));
        assert_eq!(f1.idx, f2.idx, "slot should be reused");
        assert!(sys.flow_rate(f1).is_none());
        assert!(sys.flow_rate(f2).is_some());
    }

    #[test]
    fn utilization_reflects_load() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(100.0, "link");
        assert_eq!(sys.utilization(r), 0.0);
        sys.start_flow(FlowSpec {
            links: vec![r],
            volume: 1.0,
            weight: 1.0,
            max_rate: 25.0,
            tag: 0,
        });
        assert!(approx(sys.utilization(r), 0.25));
    }

    #[test]
    fn set_capacity_reshapes_rates_mid_flight() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(100.0, "link");
        let f = sys.start_flow(FlowSpec::new(vec![r], 100.0, 0));
        sys.advance(0.5); // 50 MB left at 100 MB/s
        sys.set_capacity(r, 25.0).unwrap();
        assert!(approx(sys.flow_rate(f).unwrap(), 25.0));
        let (_, dt) = sys.next_completion().unwrap();
        assert!(approx(dt, 2.0));
        // Capacity 0 stalls the flow without dropping it.
        sys.set_capacity(r, 0.0).unwrap();
        assert!(sys.is_stalled());
        sys.set_capacity(r, 50.0).unwrap();
        assert!(approx(sys.flow_rate(f).unwrap(), 50.0));
    }

    #[test]
    fn set_capacity_rejects_bad_inputs() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(10.0, "link");
        assert_eq!(
            sys.set_capacity(r, -1.0),
            Err(FluidError::BadCapacity { value: -1.0 })
        );
        assert!(matches!(
            sys.set_capacity(r, f64::NAN),
            Err(FluidError::BadCapacity { .. })
        ));
        let foreign = ResourceId(7);
        assert_eq!(
            sys.set_capacity(foreign, 5.0),
            Err(FluidError::UnknownResource {
                index: 7,
                n_resources: 1
            })
        );
        // Failed mutations leave the capacity untouched.
        assert!(approx(sys.capacity(r), 10.0));
        assert_eq!(sys.capacity(foreign), 0.0);
        assert_eq!(sys.resource_name(foreign), None);
        assert_eq!(sys.resource_name(r), Some("link"));
    }

    #[test]
    fn stall_detection() {
        let mut sys = FluidSystem::new();
        let r = sys.add_resource(0.0, "dead-link");
        sys.start_flow(FlowSpec::new(vec![r], 1.0, 0));
        assert!(sys.is_stalled());
    }
}
