//! Offline shim for `proptest`.
//!
//! Implements the macro/strategy surface this workspace's property tests
//! use: the `proptest!` test-definition macro (with optional
//! `#![proptest_config(...)]`), `prop_assert*!`, range strategies over
//! ints/floats, tuple strategies, `Just`, `any::<bool>()`,
//! `prop::collection::vec`, `prop::option::of`, `prop_map`, and
//! `prop_flat_map`.
//!
//! Unlike real proptest there is no shrinking and no failure-persistence
//! file; generation is **fully deterministic** — the RNG is seeded from the
//! test function's name, so every run explores the same cases (a feature
//! for this repo, whose whole test philosophy is bit-for-bit replay).
//! `.proptest-regressions` files are ignored.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by the harness (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a stable FNV-1a hash of `tag` (the test name).
    pub fn deterministic(tag: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Mirrors proptest's `Strategy` at the interface level
/// (sans shrinking): `sample` draws one value.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.dyn_sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- Range strategies ------------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.uniform_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.uniform_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

// --- Tuple strategies ------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
);

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- prop:: namespace ------------------------------------------------------

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Match real proptest's default: None with probability 1/4.
                if rng.next_u64() % 4 == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    pub mod num {
        // Placeholder module for API parity; range strategies cover usage.
    }
}

/// Collection-size specification accepted by `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

// --- Config and failure plumbing ------------------------------------------

/// Per-test configuration (`cases` = number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error carried out of a failing property body by `prop_assert*!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", msg.into()))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

// --- Macros ----------------------------------------------------------------

/// Defines deterministic property tests. Supported grammar (the subset the
/// workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0..5usize, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let repro = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, repro
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// One-value convenience used by some proptest codebases.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        compile_error!("prop_oneof! is not implemented by the offline proptest shim")
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_collections(
            x in 1u32..10,
            f in 0.5f64..2.0,
            v in prop::collection::vec(0usize..4, 1..=5),
            o in prop::option::of(0i64..3),
            b in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|e| *e < 4));
            if let Some(i) = o { prop_assert!((0..3).contains(&i)); }
            prop_assert!(b || !b);
        }

        #[test]
        fn flat_map_dependent(s in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0..n, 1..=n))
        })) {
            let (n, v) = s;
            prop_assert!(v.iter().all(|e| *e < n));
            prop_assert!(v.len() <= n);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic("tag");
        let mut b = TestRng::deterministic("tag");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
