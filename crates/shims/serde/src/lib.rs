//! Offline shim for `serde`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of serde: enough
//! for `#[derive(Serialize, Deserialize)]` on the structs and enums this
//! repo defines, plus the `serde_json` entry points it calls
//! (`to_string`, `to_string_pretty`, `from_str`, `Value`).
//!
//! Design: instead of serde's visitor architecture, [`Serialize`] lowers a
//! value into a self-describing [`Value`] tree and [`Deserialize`] lifts a
//! value back out of one. This is slower than real serde but is only used
//! for experiment-result dumps and Chrome-trace export, which are not hot
//! paths. The derive macros live in the sibling `serde_derive` shim and
//! understand the `#[serde(rename = "...")]` and
//! `#[serde(rename_all = "snake_case")]` attributes used in this repo.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Number, Value};

/// Error produced when lifting a [`Value`] into a typed structure fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

/// Serialization: lower `self` into a JSON-like [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization: lift `Self` out of a JSON-like [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::Int(i)) => Ok(*i as $t),
                    Value::Number(Number::Float(f)) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => Ok(($($t::from_value(
                        items.get($n).ok_or_else(|| {
                            DeError::custom("tuple too short")
                        })?,
                    )?,)+)),
                    other => Err(DeError::custom(format!(
                        "expected tuple array, found {other:?}"
                    ))),
                }
            }
        }
    )+};
}
de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
