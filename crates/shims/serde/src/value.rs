//! A self-describing JSON-like value tree, shared by the `serde` and
//! `serde_json` shims. Object entries preserve insertion order (like
//! `serde_json`'s `preserve_order` feature) so serialized output is stable.

/// A JSON number: integers and floats kept distinct so `u64` timestamps
/// round-trip without a `.0` suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }
}

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact JSON rendering.
    pub fn to_json_compact(&self) -> String {
        write_json(self, None)
    }

    /// Pretty JSON rendering with 2-space indentation (serde_json style).
    pub fn to_json_pretty(&self) -> String {
        write_json(self, Some(2))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::Int(i)) => *i == *other as i64,
                    Value::Number(Number::Float(f)) => *f == *other as f64,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", write_json(self, None))
    }
}

/// Renders `v` as JSON. `indent = None` is compact; `Some(n)` pretty-prints
/// with `n`-space indentation (serde_json uses 2).
pub fn write_json(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_into(v, indent, 0, &mut out);
    out
}

fn write_into(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::Int(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::Float(f)) => {
            if f.is_finite() {
                // Keep float-ness visible like serde_json does: `1.0`, not `1`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_into(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_into(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
