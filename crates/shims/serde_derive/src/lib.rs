//! Offline shim for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` built
//! directly on `proc_macro` (the build environment cannot fetch `syn` /
//! `quote`). It parses the subset of Rust item grammar this workspace
//! actually uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple/newtype, and struct variants;
//! * lifetime/type generic parameters (bounds are stripped for the impl
//!   target);
//! * container attribute `#[serde(rename_all = "snake_case")]` and field
//!   attribute `#[serde(rename = "...")]`.
//!
//! Generated impls target the shim `serde`'s value-tree traits
//! (`Serialize::to_value` / `Deserialize::from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// A tiny item model.
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    rename: Option<String>,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    rename: Option<String>,
    body: Body,
}

enum Kind {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Generic parameter list with bounds, e.g. `<'a, T: Clone>`, or "".
    generics_decl: String,
    /// Generic arguments for the impl target, e.g. `<'a, T>`, or "".
    generics_use: String,
    rename_all: Option<String>,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Extracts `rename`/`rename_all` from a `#[serde(...)]` attribute body.
/// Returns `(key, value)` pairs of string-literal assignments.
fn parse_serde_attr(tokens: &[TokenTree]) -> Vec<(String, String)> {
    // Expect: Ident("serde") Group(Paren: key = "value", ...)
    let mut out = Vec::new();
    if tokens.len() != 2 {
        return out;
    }
    let is_serde = matches!(&tokens[0], TokenTree::Ident(i) if i.to_string() == "serde");
    if !is_serde {
        return out;
    }
    if let TokenTree::Group(g) = &tokens[1] {
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let mut i = 0;
        while i < inner.len() {
            if let (Some(TokenTree::Ident(key)), Some(TokenTree::Punct(eq)), Some(lit)) =
                (inner.get(i), inner.get(i + 1), inner.get(i + 2))
            {
                if eq.as_char() == '=' {
                    let raw = lit.to_string();
                    let val = raw.trim_matches('"').to_string();
                    out.push((key.to_string(), val));
                    i += 3;
                    // Skip a trailing comma if present.
                    if matches!(inner.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        i += 1;
                    }
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// Consumes leading attributes starting at `*i`; returns serde key/values.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, String)> {
    let mut kv = Vec::new();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                kv.extend(parse_serde_attr(&inner));
                *i += 2;
            }
            _ => break,
        }
    }
    kv
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn eat_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Renders a token slice back to source text (TokenStream's Display
/// produces valid Rust, including lifetimes).
fn render(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// Parses `<...>` generics at `*i` (if any) into (decl, use) strings.
fn eat_generics(tokens: &[TokenTree], i: &mut usize) -> (String, String) {
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (String::new(), String::new());
    }
    *i += 1; // consume '<'
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(t.clone());
        *i += 1;
    }
    // Split params on top-level commas.
    let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut d = 0usize;
    for t in &inner {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => d += 1,
                '>' => d = d.saturating_sub(1),
                ',' if d == 0 => {
                    params.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        params.last_mut().unwrap().push(t.clone());
    }
    params.retain(|p| !p.is_empty());

    let mut uses = Vec::new();
    for p in &params {
        match p.first() {
            // Lifetime: `'a ...` — take the quote and the ident.
            Some(TokenTree::Punct(q)) if q.as_char() == '\'' => {
                if let Some(TokenTree::Ident(id)) = p.get(1) {
                    uses.push(format!("'{id}"));
                }
            }
            // `const N: usize` — name is the second token.
            Some(TokenTree::Ident(kw)) if kw.to_string() == "const" => {
                if let Some(TokenTree::Ident(id)) = p.get(1) {
                    uses.push(id.to_string());
                }
            }
            // Plain type parameter, possibly with bounds/defaults.
            Some(TokenTree::Ident(id)) => uses.push(id.to_string()),
            _ => {}
        }
    }
    (
        format!("<{}>", render(&inner)),
        format!("<{}>", uses.join(", ")),
    )
}

/// Parses named fields from the token stream of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let kv = eat_attrs(&tokens, &mut i);
        eat_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // Expect ':'; then skip the type until a top-level ','.
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            break;
        }
        i += 1;
        let mut depth = 0usize;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        let rename = kv
            .iter()
            .find(|(k, _)| k == "rename")
            .map(|(_, v)| v.clone());
        fields.push(Field { name, rename });
    }
    fields
}

/// Counts the top-level comma-separated elements of a paren group
/// (tuple-struct / tuple-variant arity).
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    n += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        n -= 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let kv = eat_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let b = Body::Named(parse_named_fields(g.stream()));
                i += 1;
                b
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let b = Body::Tuple(tuple_arity(g.stream()));
                i += 1;
                b
            }
            _ => Body::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        let rename = kv
            .iter()
            .find(|(k, _)| k == "rename")
            .map(|(_, v)| v.clone());
        variants.push(Variant { name, rename, body });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_kv = eat_attrs(&tokens, &mut i);
    eat_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;
    let (generics_decl, generics_use) = eat_generics(&tokens, &mut i);
    // Skip a `where` clause if one appears before the body.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Body::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Body::Tuple(tuple_arity(g.stream())))
            }
            _ => Kind::Struct(Body::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    };
    let rename_all = container_kv
        .iter()
        .find(|(k, _)| k == "rename_all")
        .map(|(_, v)| v.clone());
    Input {
        name,
        generics_decl,
        generics_use,
        rename_all,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Name mangling for rename_all.
// ---------------------------------------------------------------------------

fn apply_rename_all(style: &str, name: &str) -> String {
    match style {
        "snake_case" => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        "lowercase" => name.to_ascii_lowercase(),
        "UPPERCASE" => name.to_ascii_uppercase(),
        "camelCase" => {
            let mut cs = name.chars();
            match cs.next() {
                Some(f) => f.to_ascii_lowercase().to_string() + cs.as_str(),
                None => String::new(),
            }
        }
        _ => name.to_string(),
    }
}

fn effective_name(rename: &Option<String>, rename_all: &Option<String>, name: &str) -> String {
    if let Some(r) = rename {
        return r.clone();
    }
    if let Some(style) = rename_all {
        return apply_rename_all(style, name);
    }
    name.to_string()
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let Input {
        name,
        generics_decl,
        generics_use,
        rename_all,
        kind,
    } = &item;

    let body = match kind {
        Kind::Struct(Body::Named(fields)) => {
            let mut pushes = String::new();
            for f in fields {
                let key = effective_name(&f.rename, &None, &f.name);
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{key}\"), \
                     ::serde::Serialize::to_value(&self.{})));\n",
                    f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Kind::Struct(Body::Tuple(1)) => {
            // Newtype struct: transparent, like serde.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = effective_name(&v.rename, rename_all, &v.name);
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{} => ::serde::Value::Str(::std::string::String::from(\"{key}\")),\n",
                        v.name
                    )),
                    Body::Tuple(1) => arms.push_str(&format!(
                        "{name}::{}(v0) => ::serde::Value::Object(vec![(\
                         ::std::string::String::from(\"{key}\"), \
                         ::serde::Serialize::to_value(v0))]),\n",
                        v.name
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{}({}) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{key}\"), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            v.name,
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fk = effective_name(&f.rename, &None, &f.name);
                                format!(
                                    "(::std::string::String::from(\"{fk}\"), \
                                     ::serde::Serialize::to_value({}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{} {{ {} }} => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{key}\"), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            v.name,
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl{generics_decl} ::serde::Serialize for {name}{generics_use} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let Input {
        name,
        generics_decl,
        generics_use,
        rename_all,
        kind,
    } = &item;

    let body = match kind {
        Kind::Struct(Body::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let key = effective_name(&f.rename, &None, &f.name);
                    format!(
                        "{}: ::serde::Deserialize::from_value(\
                         v.get(\"{key}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| ::serde::DeError::custom(format!(\
                         \"field `{key}` of `{name}`: {{}}\", e.0)))?",
                        f.name
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Struct(Body::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         arr.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Body::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let key = effective_name(&v.rename, rename_all, &v.name);
                match &v.body {
                    Body::Unit => unit_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{}),\n",
                        v.name
                    )),
                    Body::Tuple(1) => data_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{}(\
                         ::serde::Deserialize::from_value(inner)?)),\n",
                        v.name
                    )),
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(\
                                     arr.get({i}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array variant\"))?;\n\
                             ::std::result::Result::Ok({name}::{}({}))\n}}\n",
                            v.name,
                            items.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fk = effective_name(&f.rename, &None, &f.name);
                                format!(
                                    "{}: ::serde::Deserialize::from_value(\
                                     inner.get(\"{fk}\").unwrap_or(&::serde::Value::Null))?",
                                    f.name
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{} {{ {} }}),\n",
                            v.name,
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (k, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match k.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"expected variant of `{name}`, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl{generics_decl} ::serde::Deserialize for {name}{generics_use} {{\n\
             fn from_value(v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::DeError> {{\n\
             let _ = v;\n{body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated Deserialize impl parses")
}
