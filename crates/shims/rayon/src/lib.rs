//! Offline shim for `rayon`.
//!
//! Implements the parallel-iterator surface this workspace uses —
//! `par_iter()` / `into_par_iter()` over slices, `Vec`s, and integer
//! ranges, with the `map` / `filter` / `filter_map` / `flat_map` /
//! `collect` / `sum` / `count` / `for_each` / `min_by` / `max_by`
//! adapters — on top of `std::thread::scope`.
//!
//! Work is split into one contiguous chunk per thread, and chunk results
//! are re-concatenated in input order, so every adapter is
//! **order-preserving**: `v.into_par_iter().map(f).collect::<Vec<_>>()`
//! equals the serial `v.into_iter().map(f).collect()` element for
//! element. The workspace's bit-identical-replay tests rely on this.
//!
//! The thread count is `RAYON_NUM_THREADS` when set, otherwise
//! `std::thread::available_parallelism()`; with one thread every adapter
//! degrades to the plain serial loop (no spawn overhead).

use std::sync::OnceLock;

/// Number of worker threads the shim fans out to.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Applies `f` to every item on `threads` scoped threads, preserving input
/// order in the output.
fn par_apply_with<I, O, F>(items: Vec<I>, f: &F, threads: usize) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let nested: Vec<Vec<O>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    nested.into_iter().flatten().collect()
}

fn par_apply<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    par_apply_with(items, f, current_num_threads())
}

/// A parallel iterator: a lazily composed pipeline evaluated by
/// [`ParallelIterator::drive`] across worker threads.
pub trait ParallelIterator: Sized + Send {
    /// Element type produced by the pipeline.
    type Item: Send;

    /// Evaluates the pipeline, returning the items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Parallel `map`.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Parallel `filter`.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Parallel `filter_map`.
    fn filter_map<O, F>(self, f: F) -> FilterMap<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> Option<O> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Parallel `flat_map` (each produced iterator is drained serially
    /// within its item's slot, keeping the overall order).
    fn flat_map<It, F>(self, f: F) -> FlatMap<Self, F>
    where
        It: IntoIterator,
        It::Item: Send,
        F: Fn(Self::Item) -> It + Sync + Send,
    {
        FlatMap { base: self, f }
    }

    /// Evaluates and collects into any `FromIterator` container.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter_vec(self.drive())
    }

    /// Evaluates and sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Evaluates and counts the items.
    fn count(self) -> usize {
        self.drive().len()
    }

    /// Evaluates the pipeline for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _: Vec<()> = Map { base: self, f: &f }.drive();
    }

    /// Minimum by comparator; first minimum wins on ties (serial
    /// semantics).
    fn min_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync + Send,
    {
        self.drive()
            .into_iter()
            .reduce(|a, b| if cmp(&b, &a).is_lt() { b } else { a })
    }

    /// Maximum by comparator; last maximum wins on ties (serial
    /// semantics).
    fn max_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> std::cmp::Ordering + Sync + Send,
    {
        self.drive()
            .into_iter()
            .reduce(|a, b| if cmp(&b, &a).is_lt() { a } else { b })
    }
}

/// Conversion into a [`ParallelIterator`] (mirror of rayon's trait).
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` — by-reference parallel iteration (rayon's blanket form).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send + 'data;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterates over `&self` in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Item = <&'data I as IntoParallelIterator>::Item;
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection from a parallel iterator (shim: via the materialized `Vec`).
pub trait FromParallelIterator<T> {
    /// Builds the container from the evaluated items.
    fn from_par_iter_vec(items: Vec<T>) -> Self;
}

impl<T, C: FromIterator<T>> FromParallelIterator<T> for C {
    fn from_par_iter_vec(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

/// Base iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = VecParIter<$t>;
            fn into_par_iter(self) -> VecParIter<$t> {
                VecParIter { items: self.collect() }
            }
        }
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            type Iter = VecParIter<$t>;
            fn into_par_iter(self) -> VecParIter<$t> {
                VecParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par_iter!(u32, u64, usize, i32, i64);

/// `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, O, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    O: Send,
    F: Fn(P::Item) -> O + Sync + Send,
{
    type Item = O;
    fn drive(self) -> Vec<O> {
        par_apply(self.base.drive(), &self.f)
    }
}

/// `filter` adapter.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;
    fn drive(self) -> Vec<P::Item> {
        let f = &self.f;
        par_apply(self.base.drive(), &|x| if f(&x) { Some(x) } else { None })
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `filter_map` adapter.
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, O, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    O: Send,
    F: Fn(P::Item) -> Option<O> + Sync + Send,
{
    type Item = O;
    fn drive(self) -> Vec<O> {
        par_apply(self.base.drive(), &self.f)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `flat_map` adapter.
pub struct FlatMap<P, F> {
    base: P,
    f: F,
}

impl<P, It, F> ParallelIterator for FlatMap<P, F>
where
    P: ParallelIterator,
    It: IntoIterator,
    It::Item: Send,
    F: Fn(P::Item) -> It + Sync + Send,
{
    type Item = It::Item;
    fn drive(self) -> Vec<It::Item> {
        let f = &self.f;
        par_apply(self.base.drive(), &|x| f(x).into_iter().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Everything a caller normally imports from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0u32..1000).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<u32> = (0u32..1000).map(|x| x * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn chunked_apply_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        for threads in 1..=8 {
            let out = par_apply_with(items.clone(), &|x| x + 1, threads);
            let expect: Vec<usize> = items.iter().map(|x| x + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn filter_map_flat_map_match_serial() {
        let xs: Vec<i64> = (0i64..100).collect();
        let par: Vec<i64> = xs
            .par_iter()
            .filter_map(|&x| if x % 3 == 0 { Some(x) } else { None })
            .flat_map(|x| vec![x, -x])
            .collect();
        let ser: Vec<i64> = xs
            .iter()
            .filter_map(|&x| if x % 3 == 0 { Some(x) } else { None })
            .flat_map(|x| vec![x, -x])
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn sum_count_min_max_match_serial() {
        let xs: Vec<u64> = (1u64..=100).collect();
        assert_eq!(xs.par_iter().map(|&x| x).sum::<u64>(), 5050);
        assert_eq!(xs.par_iter().filter(|&&x| x % 2 == 0).count(), 50);
        let min = (1u64..=100)
            .into_par_iter()
            .min_by(|a, b| a.cmp(b))
            .unwrap();
        let max = (1u64..=100)
            .into_par_iter()
            .max_by(|a, b| a.cmp(b))
            .unwrap();
        assert_eq!((min, max), (1, 100));
    }

    #[test]
    fn for_each_runs_every_item() {
        let hits = AtomicUsize::new(0);
        (0usize..64).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_apply_with(
                (0..10).collect::<Vec<u32>>(),
                &|x| {
                    assert!(x != 7, "boom");
                    x
                },
                4,
            )
        });
        assert!(result.is_err());
    }
}
