//! Offline shim for `serde_json`.
//!
//! Serialization renders the shim `serde`'s [`Value`] tree; parsing is a
//! straightforward recursive-descent JSON reader. Only the entry points
//! used by this workspace are provided: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], and [`Value`].

pub use serde::{Number, Value};

/// serde_json-compatible error type.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_compact())
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_pretty())
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    T::from_value(&v).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------------------
// Recursive-descent parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|e| Error(format!("bad float `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(|i| Value::Number(Number::Int(i)))
                .or_else(|_| text.parse::<f64>().map(|f| Value::Number(Number::Float(f))))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}
