//! Offline shim for `criterion`.
//!
//! A minimal drop-in harness: runs each benchmark closure a configurable
//! number of times, reports mean wall-clock time per iteration to stdout,
//! and skips all statistics/plots. Enough to keep `cargo bench` useful for
//! relative comparisons in this workspace without the real crate.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Batch-size hint for `iter_batched` (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean duration of one iteration, filled by `iter`/`iter_batched`.
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.sample_size as u32);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = Some(total / self.sample_size as u32);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: None,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        match b.mean {
            Some(d) => println!("bench {label:<48} {:>12.3?}/iter", d),
            None => println!("bench {label:<48} (no measurement)"),
        }
        let _ = &self.criterion;
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }
}

/// Declares the benchmark entry list (simple `criterion_group!(name, fn...)`
/// form only — the config form is not used in this workspace).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
