//! Offline shim for `parking_lot`.
//!
//! Facade over `std::sync` primitives with parking_lot's panic-free-looking
//! API (`lock()` returns the guard directly). Poisoning is treated the way
//! parking_lot treats it — a poisoned lock simply keeps working — by
//! unwrapping into the inner guard on either branch.

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
