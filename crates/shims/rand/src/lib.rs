//! Offline shim for `rand` 0.8.
//!
//! Provides the subset this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`Rng::gen_range`] over half-open and inclusive
//! integer/float ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction rand 0.8's 64-bit `SmallRng` uses —
//! so streams are deterministic, fast, and well distributed. Exact
//! stream-compatibility with crates.io `rand` is *not* guaranteed (nothing
//! in this repo depends on the specific values, only on determinism).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        uniform_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (only `seed_from_u64` is used by this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn uniform_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty float range");
        self.start + uniform_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty float range");
        self.start + uniform_f32(rng) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// SplitMix64: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's 64-bit `SmallRng` algorithm.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng` call sites (if any appear) also work.
    pub type StdRng = SmallRng;
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(0.0..1.0);
            let y: f64 = b.gen_range(0.0..1.0);
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..100 {
            let v: u32 = rng.gen_range(3..=3);
            assert_eq!(v, 3);
        }
    }
}
