//! Offline shim for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is used by this workspace; it is
//! implemented on top of `std::thread::scope` (stable since 1.63). The one
//! behavioral difference: a panicking child makes `scope` itself panic
//! (std semantics) instead of returning `Err` — every call site here
//! immediately `.expect()`s the result, so the observable behavior (test
//! failure with the panic message) is identical.

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`: spawn closures receive
    /// `&Scope` so they can spawn recursively.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; returns `Ok` with its result once all
    /// spawned threads have joined.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_data() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
