//! # cynthia-models — DNN layer algebra and model zoo
//!
//! Cynthia's performance model consumes two per-workload scalars: the
//! floating-point work of one training iteration (`w_iter`) and the size of
//! the model parameters exchanged with the parameter server (`g_param`).
//! The paper obtains both by profiling TensorFlow models; this crate
//! computes them from first principles with a small layer algebra:
//!
//! * [`layer`] — layer descriptors (convolution, dense, pooling, batch
//!   norm, residual blocks, ...) with shape inference, parameter counts,
//!   and forward-pass FLOP counts.
//! * [`graph`] — sequential model graphs, whole-model summaries, and the
//!   per-layer parameter distribution used by the simulator's layer-wise
//!   communication pipelining.
//! * [`zoo`] — the paper's four workloads: ResNet-32 and VGG-19 on
//!   cifar10, the TensorFlow-tutorial mnist DNN and cifar10 DNN.
//! * [`dataset`] — dataset descriptors (mnist, cifar10).
//! * [`workload`] — Table 1's training configurations plus each workload's
//!   ground-truth system constants (PS apply cost, convergence profile).

pub mod dataset;
pub mod graph;
pub mod layer;
pub mod workload;
pub mod zoo;

pub use dataset::Dataset;
pub use graph::{ModelGraph, ModelSummary};
pub use layer::{Dims, Layer};
pub use workload::{ConvergenceProfile, SyncMode, Workload};
