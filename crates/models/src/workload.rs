//! Training workload configurations (the paper's Table 1) plus each
//! workload's ground-truth system constants.
//!
//! ## Effective FLOPs calibration
//!
//! The capability table rates an m4.xlarge worker core at 0.9 GFLOPS, but
//! the *delivered* throughput of a TensorFlow CPU kernel mix differs per
//! model (convolutions vectorize far better than small dense layers). The
//! paper's Table 4 lets us back out each workload's single-worker iteration
//! time `t_base = 2·g_param / b_prof`; we store
//! `w_iter = t_base · 0.9 GFLOPS` — the per-iteration work *in
//! capability-table units* — so that simulated compute times, profiling,
//! and cross-instance predictions are mutually consistent (the same
//! assumption Fig. 8 relies on: kernel efficiency is a property of the
//! model, not the instance type). The ratio of the architectural FLOP count
//! (from [`crate::zoo`]) to `w_iter` is exposed as
//! [`Workload::delivered_efficiency`].

use crate::dataset::Dataset;
use crate::graph::ModelGraph;
use crate::zoo;
use serde::{Deserialize, Serialize};

/// Parameter-synchronization mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Bulk synchronous parallel: one global update per iteration, paced by
    /// the slowest worker, computation/communication overlapped
    /// (TensorFlow `SyncReplicasOptimizer`).
    Bsp,
    /// Asynchronous parallel: each worker pushes/pulls independently;
    /// staleness slows convergence by ≈ √n (Eq. 1).
    Asp,
}

impl SyncMode {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SyncMode::Bsp => "BSP",
            SyncMode::Asp => "ASP",
        }
    }
}

/// Ground-truth convergence behaviour of a workload under SGD, matching the
/// empirical form of Eq. (1):
/// `loss(s) = β0/s + β1` (BSP) or `β0·√n/s + β1` (ASP, `s` total updates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceProfile {
    /// Convergence-rate constant (Eq. 1's β0).
    pub beta0: f64,
    /// Asymptotic loss floor (Eq. 1's β1).
    pub beta1: f64,
    /// Loss at iteration 0 (caps the hyperbola early on).
    pub initial_loss: f64,
    /// Multiplicative noise (std) on the excess loss, mimicking minibatch
    /// variance.
    pub noise_sd: f64,
}

impl ConvergenceProfile {
    /// Noise-free loss after `s` global updates with `n` workers.
    pub fn expected_loss(&self, sync: SyncMode, s: u64, n_workers: u32) -> f64 {
        if s == 0 {
            return self.initial_loss;
        }
        let stale = match sync {
            SyncMode::Bsp => 1.0,
            SyncMode::Asp => (n_workers as f64).sqrt(),
        };
        (self.beta0 * stale / s as f64 + self.beta1).min(self.initial_loss)
    }

    /// Global updates needed to reach `target` (noise-free), or `None` if
    /// the target is at or below the floor β1.
    pub fn updates_to_reach(&self, sync: SyncMode, target: f64, n_workers: u32) -> Option<u64> {
        if target <= self.beta1 {
            return None;
        }
        let stale = match sync {
            SyncMode::Bsp => 1.0,
            SyncMode::Asp => (n_workers as f64).sqrt(),
        };
        Some((self.beta0 * stale / (target - self.beta1)).ceil() as u64)
    }
}

/// A DDNN training workload: model, dataset, and Table 1 configuration,
/// plus the constants that drive the ground-truth simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    pub model: ModelGraph,
    pub dataset: Dataset,
    /// Total training iterations (Table 1; global updates for both BSP and
    /// ASP).
    pub iterations: u64,
    /// Mini-batch size (global for BSP, per-update for ASP).
    pub batch_size: u32,
    pub sync: SyncMode,
    /// Per-iteration training work in capability-table GFLOPs (see module
    /// docs).
    pub w_iter_gflops: f64,
    /// PS CPU cost of receiving + applying one worker's update, in GFLOP
    /// per MB of gradient payload (network stack + deserialize + apply).
    pub ps_apply_gflops_per_mb: f64,
    pub convergence: ConvergenceProfile,
}

impl Workload {
    /// Parameter payload exchanged with the PS per push or pull, MB
    /// (the paper's `g_param`).
    pub fn param_mb(&self) -> f64 {
        self.model.summary().param_mb
    }

    /// PS CPU work to ingest one worker's full update, GFLOP.
    pub fn ps_apply_gflops(&self) -> f64 {
        self.ps_apply_gflops_per_mb * self.param_mb()
    }

    /// Architectural training GFLOPs of one iteration (layer algebra).
    pub fn architectural_gflops(&self) -> f64 {
        self.model.train_gflops_per_iteration(self.batch_size)
    }

    /// Ratio of capability-table work to architectural work — how
    /// efficiently the kernel mix runs relative to the rated FLOPS
    /// (documented calibration; see module docs).
    pub fn delivered_efficiency(&self) -> f64 {
        self.w_iter_gflops / self.architectural_gflops()
    }

    /// A short identifier, e.g. `"ResNet-32/ASP"`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.model.name, self.sync.label())
    }

    /// The same workload under a different synchronization mechanism
    /// (Fig. 11 trains ResNet-32 with BSP although Table 1 lists it under
    /// ASP).
    pub fn with_sync(mut self, sync: SyncMode) -> Workload {
        self.sync = sync;
        self
    }

    /// The same workload with a different iteration budget.
    pub fn with_iterations(mut self, iterations: u64) -> Workload {
        assert!(iterations > 0, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Table 1, row 1: ResNet-32 on cifar10, ASP, 3 000 iterations,
    /// batch 128.
    pub fn resnet32_asp() -> Workload {
        Workload {
            model: zoo::resnet32(),
            dataset: Dataset::cifar10(),
            iterations: 3_000,
            batch_size: 128,
            sync: SyncMode::Asp,
            // t_base ≈ 23.4 s on an m4 core (Table 4: 2·2.22/0.19).
            w_iter_gflops: 21.03,
            // Many small tensors -> higher per-MB PS overhead than the
            // dense-tensor models. (Table 4's c_prof would imply ≈ 1.26
            // GFLOP/MB, but that is inconsistent with the paper's own
            // Fig. 11, where ResNet-32 BSP scales to ~15 workers; 0.2
            // reconciles both — see EXPERIMENTS.md.)
            ps_apply_gflops_per_mb: 0.20,
            convergence: ConvergenceProfile {
                beta0: 450.0,
                beta1: 0.45,
                initial_loss: 2.8,
                noise_sd: 0.02,
            },
        }
    }

    /// Table 1, row 2: the mnist DNN, BSP, 10 000 iterations, batch 512.
    pub fn mnist_bsp() -> Workload {
        Workload {
            model: zoo::mnist_dnn(),
            dataset: Dataset::mnist(),
            iterations: 10_000,
            batch_size: 512,
            sync: SyncMode::Bsp,
            // t_base ≈ 0.0395 s (Table 4: 2·0.33/16.69).
            w_iter_gflops: 0.0356,
            // Calibrated so the PS CPU saturates around 4 workers
            // (Table 2) while Fig. 1(b)'s U-shape bottoms near 3-4.
            ps_apply_gflops_per_mb: 0.10,
            convergence: ConvergenceProfile {
                beta0: 80.0,
                beta1: 0.05,
                initial_loss: 2.3,
                noise_sd: 0.02,
            },
        }
    }

    /// Table 1, row 3: VGG-19 on cifar10, ASP, 1 000 iterations, batch 128.
    pub fn vgg19_asp() -> Workload {
        Workload {
            model: zoo::vgg19(),
            dataset: Dataset::cifar10(),
            iterations: 1_000,
            batch_size: 128,
            sync: SyncMode::Asp,
            // t_base ≈ 20.1 s (Table 4: 2·135.84/13.49).
            w_iter_gflops: 18.13,
            // Large dense tensors stream efficiently
            // (Table 4: 0.33·20.1/135.84 ≈ 0.049 GFLOP/MB).
            ps_apply_gflops_per_mb: 0.0489,
            convergence: ConvergenceProfile {
                beta0: 150.0,
                beta1: 0.10,
                initial_loss: 2.5,
                noise_sd: 0.02,
            },
        }
    }

    /// Table 1, row 4: the cifar10 DNN, BSP, 10 000 iterations, batch 512.
    pub fn cifar10_bsp() -> Workload {
        Workload {
            model: zoo::cifar10_dnn(),
            dataset: Dataset::cifar10(),
            iterations: 10_000,
            batch_size: 512,
            sync: SyncMode::Bsp,
            // t_base ≈ 6.33 s (Table 4: 2·4.94/1.56).
            w_iter_gflops: 5.70,
            // Calibrated just below the NIC serialization cost so the
            // Fig. 3 regime (comm grows linearly, no hard PS bottleneck)
            // reproduces.
            ps_apply_gflops_per_mb: 0.055,
            convergence: ConvergenceProfile {
                beta0: 700.0,
                beta1: 0.45,
                initial_loss: 4.6,
                noise_sd: 0.02,
            },
        }
    }

    /// Future-work extension (Sec. 7): ResNet-50 on ImageNet with BSP.
    /// Not part of Table 1; used by the GPU-cluster extension experiment.
    /// The per-iteration work is enormous relative to the CPU workloads
    /// (≈ 790 architectural GFLOP per 32-sample batch), which is exactly
    /// why the paper defers it to GPU clusters.
    pub fn resnet50_bsp() -> Workload {
        Workload {
            model: zoo::resnet50(),
            dataset: Dataset::imagenet(),
            iterations: 50_000,
            batch_size: 32,
            sync: SyncMode::Bsp,
            // Capability-table units at ResNet-like delivered efficiency
            // (~0.37 of architectural, matching ResNet-32's calibration).
            w_iter_gflops: 290.0,
            // Large dense convolution tensors stream like VGG's.
            ps_apply_gflops_per_mb: 0.05,
            convergence: ConvergenceProfile {
                beta0: 30_000.0,
                beta1: 1.8,
                initial_loss: 6.9,
                noise_sd: 0.02,
            },
        }
    }

    /// All four Table 1 workloads.
    pub fn table1() -> Vec<Workload> {
        vec![
            Self::resnet32_asp(),
            Self::mnist_bsp(),
            Self::vgg19_asp(),
            Self::cifar10_bsp(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t1 = Workload::table1();
        assert_eq!(t1.len(), 4);
        let r = &t1[0];
        assert_eq!(
            (r.iterations, r.batch_size, r.sync),
            (3000, 128, SyncMode::Asp)
        );
        let m = &t1[1];
        assert_eq!(
            (m.iterations, m.batch_size, m.sync),
            (10000, 512, SyncMode::Bsp)
        );
        let v = &t1[2];
        assert_eq!(
            (v.iterations, v.batch_size, v.sync),
            (1000, 128, SyncMode::Asp)
        );
        let c = &t1[3];
        assert_eq!(
            (c.iterations, c.batch_size, c.sync),
            (10000, 512, SyncMode::Bsp)
        );
    }

    #[test]
    fn baseline_iteration_times_match_table4_derivation() {
        // t_base = w_iter / 0.9 GFLOPS must land on the paper's implied
        // single-core iteration times.
        let cases = [
            (Workload::resnet32_asp(), 23.4),
            (Workload::mnist_bsp(), 0.0395),
            (Workload::vgg19_asp(), 20.1),
            (Workload::cifar10_bsp(), 6.33),
        ];
        for (w, t_base) in cases {
            let t = w.w_iter_gflops / 0.9;
            assert!(
                (t - t_base).abs() / t_base < 0.02,
                "{}: t_base {t} vs paper {t_base}",
                w.id()
            );
        }
    }

    #[test]
    fn bsp_loss_is_worker_independent_and_asp_degrades() {
        let c = Workload::cifar10_bsp().convergence;
        let l4 = c.expected_loss(SyncMode::Bsp, 2000, 4);
        let l8 = c.expected_loss(SyncMode::Bsp, 2000, 8);
        assert_eq!(l4, l8, "BSP loss must not depend on workers");

        let r = Workload::resnet32_asp().convergence;
        let a4 = r.expected_loss(SyncMode::Asp, 3000, 4);
        let a9 = r.expected_loss(SyncMode::Asp, 3000, 9);
        assert!(a9 > a4, "ASP staleness must slow convergence: {a4} vs {a9}");
    }

    #[test]
    fn updates_to_reach_inverts_expected_loss() {
        let c = Workload::cifar10_bsp().convergence;
        let s = c.updates_to_reach(SyncMode::Bsp, 0.8, 1).unwrap();
        assert_eq!(s, 2000); // 700 / 0.35
        let back = c.expected_loss(SyncMode::Bsp, s, 1);
        assert!(back <= 0.8 + 1e-9);
        assert!(c.updates_to_reach(SyncMode::Bsp, 0.4, 1).is_none());
    }

    #[test]
    fn asp_needs_more_updates_for_same_target() {
        let r = Workload::resnet32_asp().convergence;
        let s4 = r.updates_to_reach(SyncMode::Asp, 0.6, 4).unwrap();
        let s9 = r.updates_to_reach(SyncMode::Asp, 0.6, 9).unwrap();
        assert!(s9 > s4);
    }

    #[test]
    fn initial_loss_caps_the_curve() {
        let c = Workload::cifar10_bsp().convergence;
        assert_eq!(c.expected_loss(SyncMode::Bsp, 0, 1), 4.6);
        assert_eq!(c.expected_loss(SyncMode::Bsp, 1, 1), 4.6); // hyperbola capped
        assert!(c.expected_loss(SyncMode::Bsp, 10_000, 1) < 0.6);
    }

    #[test]
    fn efficiencies_are_finite_and_positive() {
        for w in Workload::table1() {
            let e = w.delivered_efficiency();
            assert!(e.is_finite() && e > 0.0, "{}: {e}", w.id());
            assert!(w.param_mb() > 0.0);
            assert!(w.ps_apply_gflops() > 0.0);
        }
    }

    #[test]
    fn vgg_dominates_parameter_traffic() {
        let v = Workload::vgg19_asp();
        let m = Workload::mnist_bsp();
        assert!(v.param_mb() / m.param_mb() > 100.0);
    }
}
