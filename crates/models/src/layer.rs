//! Layer descriptors with shape inference, parameter and FLOP counting.
//!
//! Conventions:
//! * Activations are channels-first `(C, H, W)`; dense layers operate on the
//!   flattened size `C·H·W`.
//! * FLOP counts are for a *forward* pass on one sample, counting a
//!   multiply-accumulate as 2 FLOPs. Training cost uses the standard
//!   forward + backward ≈ 3× forward rule (see [`crate::graph`]).
//! * Parameters are `f32` (4 bytes each) when converted to megabytes.

use serde::{Deserialize, Serialize};

/// Shape of an activation tensor (one sample), channels-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dims {
    pub c: usize,
    pub h: usize,
    pub w: usize,
}

impl Dims {
    /// A `(c, h, w)` shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Dims { c, h, w }
    }

    /// A flat vector of `n` features, represented as `(n, 1, 1)`.
    pub fn flat(n: usize) -> Self {
        Dims { c: n, h: 1, w: 1 }
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.c * self.h * self.w
    }
}

/// A single layer of a sequential model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution with square kernel, same-style zero padding.
    Conv2d {
        out_channels: usize,
        kernel: usize,
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Max pooling with square window.
    MaxPool { kernel: usize, stride: usize },
    /// Fully connected layer over the flattened input.
    Dense { out_features: usize },
    /// Rectified linear unit.
    ReLU,
    /// Batch normalization over channels.
    BatchNorm,
    /// Local response normalization (used by the TF cifar10 tutorial net).
    LocalResponseNorm,
    /// Global average pooling to `(C, 1, 1)`.
    GlobalAvgPool,
    /// A residual basic block: two 3×3 convolutions (+BN+ReLU) with a skip
    /// connection; `stride > 1` downsamples and doubles channels via a 1×1
    /// projection on the skip path (ResNet-C style).
    ResidualBlock { out_channels: usize, stride: usize },
    /// A residual bottleneck block (ResNet-50 style): 1×1 reduce to
    /// `out_channels/4`, 3×3 at that width, 1×1 expand to `out_channels`,
    /// each followed by BN; the skip path gets a 1×1 projection when the
    /// shape changes.
    BottleneckBlock { out_channels: usize, stride: usize },
    /// Softmax over the flattened input (inference head; negligible
    /// parameters, small FLOPs).
    Softmax,
}

/// Static analysis of a layer applied to a given input shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    pub output: Dims,
    /// Trainable parameter count.
    pub params: usize,
    /// Forward FLOPs per sample (MAC = 2 FLOPs).
    pub fwd_flops: f64,
}

fn conv_out(side: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        side + 2 * padding >= kernel,
        "kernel {kernel} larger than padded input {side}+2*{padding}"
    );
    (side + 2 * padding - kernel) / stride + 1
}

fn conv2d_cost(
    input: Dims,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> LayerCost {
    let oh = conv_out(input.h, kernel, stride, padding);
    let ow = conv_out(input.w, kernel, stride, padding);
    let output = Dims::new(out_channels, oh, ow);
    let params = input.c * out_channels * kernel * kernel + out_channels;
    let macs = (oh * ow * out_channels * input.c * kernel * kernel) as f64;
    LayerCost {
        output,
        params,
        fwd_flops: 2.0 * macs,
    }
}

impl Layer {
    /// Analyzes this layer on `input`, returning the output shape,
    /// parameter count, and forward FLOPs per sample.
    ///
    /// # Panics
    /// Panics on shape errors (kernel larger than input, etc.) so model
    /// definitions fail loudly at construction time.
    pub fn cost(&self, input: Dims) -> LayerCost {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => conv2d_cost(input, out_channels, kernel, stride, padding),
            Layer::MaxPool { kernel, stride } => {
                let oh = conv_out(input.h, kernel, stride, 0);
                let ow = conv_out(input.w, kernel, stride, 0);
                let output = Dims::new(input.c, oh, ow);
                LayerCost {
                    output,
                    params: 0,
                    fwd_flops: (output.numel() * kernel * kernel) as f64,
                }
            }
            Layer::Dense { out_features } => {
                let in_features = input.numel();
                LayerCost {
                    output: Dims::flat(out_features),
                    params: in_features * out_features + out_features,
                    fwd_flops: 2.0 * (in_features * out_features) as f64,
                }
            }
            Layer::ReLU => LayerCost {
                output: input,
                params: 0,
                fwd_flops: input.numel() as f64,
            },
            Layer::BatchNorm => LayerCost {
                output: input,
                // Scale and shift per channel.
                params: 2 * input.c,
                fwd_flops: 4.0 * input.numel() as f64,
            },
            Layer::LocalResponseNorm => LayerCost {
                output: input,
                params: 0,
                // ~5-wide window: square, sum, scale, pow, divide.
                fwd_flops: 8.0 * input.numel() as f64,
            },
            Layer::GlobalAvgPool => LayerCost {
                output: Dims::new(input.c, 1, 1),
                params: 0,
                fwd_flops: input.numel() as f64,
            },
            Layer::ResidualBlock {
                out_channels,
                stride,
            } => {
                let c1 = conv2d_cost(input, out_channels, 3, stride, 1);
                let b1 = Layer::BatchNorm.cost(c1.output);
                let r1 = Layer::ReLU.cost(c1.output);
                let c2 = conv2d_cost(c1.output, out_channels, 3, 1, 1);
                let b2 = Layer::BatchNorm.cost(c2.output);
                let (proj_params, proj_flops) = if stride != 1 || input.c != out_channels {
                    let p = conv2d_cost(input, out_channels, 1, stride, 0);
                    (p.params, p.fwd_flops)
                } else {
                    (0, 0.0)
                };
                // Elementwise skip-add + final ReLU.
                let tail = 2.0 * c2.output.numel() as f64;
                LayerCost {
                    output: c2.output,
                    params: c1.params + b1.params + c2.params + b2.params + proj_params,
                    fwd_flops: c1.fwd_flops
                        + b1.fwd_flops
                        + r1.fwd_flops
                        + c2.fwd_flops
                        + b2.fwd_flops
                        + proj_flops
                        + tail,
                }
            }
            Layer::BottleneckBlock {
                out_channels,
                stride,
            } => {
                assert!(
                    out_channels.is_multiple_of(4),
                    "bottleneck width must be divisible by 4"
                );
                let mid = out_channels / 4;
                let c1 = conv2d_cost(input, mid, 1, 1, 0);
                let b1 = Layer::BatchNorm.cost(c1.output);
                let c2 = conv2d_cost(c1.output, mid, 3, stride, 1);
                let b2 = Layer::BatchNorm.cost(c2.output);
                let c3 = conv2d_cost(c2.output, out_channels, 1, 1, 0);
                let b3 = Layer::BatchNorm.cost(c3.output);
                let (proj_params, proj_flops) = if stride != 1 || input.c != out_channels {
                    let p = conv2d_cost(input, out_channels, 1, stride, 0);
                    (p.params, p.fwd_flops)
                } else {
                    (0, 0.0)
                };
                // Two inner ReLUs, skip-add, final ReLU.
                let act = 2.0 * (c1.output.numel() + c2.output.numel()) as f64
                    + 2.0 * c3.output.numel() as f64;
                LayerCost {
                    output: c3.output,
                    params: c1.params
                        + b1.params
                        + c2.params
                        + b2.params
                        + c3.params
                        + b3.params
                        + proj_params,
                    fwd_flops: c1.fwd_flops
                        + b1.fwd_flops
                        + c2.fwd_flops
                        + b2.fwd_flops
                        + c3.fwd_flops
                        + b3.fwd_flops
                        + proj_flops
                        + act,
                }
            }
            Layer::Softmax => LayerCost {
                output: Dims::flat(input.numel()),
                params: 0,
                fwd_flops: 5.0 * input.numel() as f64,
            },
        }
    }

    /// Short human-readable name for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d { .. } => "conv2d",
            Layer::MaxPool { .. } => "maxpool",
            Layer::Dense { .. } => "dense",
            Layer::ReLU => "relu",
            Layer::BatchNorm => "batchnorm",
            Layer::LocalResponseNorm => "lrn",
            Layer::GlobalAvgPool => "gap",
            Layer::ResidualBlock { .. } => "resblock",
            Layer::BottleneckBlock { .. } => "bottleneck",
            Layer::Softmax => "softmax",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_and_params() {
        // 3x32x32 -> conv 5x5, 64 channels, stride 1, pad 2 -> 64x32x32.
        let c = Layer::Conv2d {
            out_channels: 64,
            kernel: 5,
            stride: 1,
            padding: 2,
        }
        .cost(Dims::new(3, 32, 32));
        assert_eq!(c.output, Dims::new(64, 32, 32));
        assert_eq!(c.params, 3 * 64 * 25 + 64);
        // MACs = 32*32*64*3*25
        assert_eq!(c.fwd_flops, 2.0 * (32 * 32 * 64 * 3 * 25) as f64);
    }

    #[test]
    fn strided_conv_downsamples() {
        let c = Layer::Conv2d {
            out_channels: 32,
            kernel: 3,
            stride: 2,
            padding: 1,
        }
        .cost(Dims::new(16, 32, 32));
        assert_eq!(c.output, Dims::new(32, 16, 16));
    }

    #[test]
    fn pool_halves_spatial() {
        let c = Layer::MaxPool {
            kernel: 2,
            stride: 2,
        }
        .cost(Dims::new(64, 32, 32));
        assert_eq!(c.output, Dims::new(64, 16, 16));
        assert_eq!(c.params, 0);
    }

    #[test]
    fn dense_flattens_input() {
        let c = Layer::Dense { out_features: 100 }.cost(Dims::new(64, 4, 4));
        assert_eq!(c.output, Dims::flat(100));
        assert_eq!(c.params, 64 * 4 * 4 * 100 + 100);
        assert_eq!(c.fwd_flops, 2.0 * (64 * 4 * 4 * 100) as f64);
    }

    #[test]
    fn residual_block_identity_vs_projection() {
        let input = Dims::new(16, 32, 32);
        let identity = Layer::ResidualBlock {
            out_channels: 16,
            stride: 1,
        }
        .cost(input);
        assert_eq!(identity.output, Dims::new(16, 32, 32));
        let proj = Layer::ResidualBlock {
            out_channels: 32,
            stride: 2,
        }
        .cost(input);
        assert_eq!(proj.output, Dims::new(32, 16, 16));
        // Projection block has the extra 1x1 conv.
        let conv1 = 16 * 32 * 9 + 32;
        let conv2 = 32 * 32 * 9 + 32;
        let bn = 2 * (2 * 32);
        let skip = 16 * 32 + 32;
        assert_eq!(proj.params, conv1 + conv2 + bn + skip);
        assert!(proj.params > identity.params);
    }

    #[test]
    fn bottleneck_block_shapes_and_projection() {
        let input = Dims::new(64, 56, 56);
        // Identity bottleneck at matching width.
        let id = Layer::BottleneckBlock {
            out_channels: 64,
            stride: 1,
        }
        .cost(input);
        assert_eq!(id.output, Dims::new(64, 56, 56));
        // Downsampling bottleneck doubles channels, halves space, and
        // pays for the projection.
        let down = Layer::BottleneckBlock {
            out_channels: 128,
            stride: 2,
        }
        .cost(input);
        assert_eq!(down.output, Dims::new(128, 28, 28));
        assert!(down.params > id.params);
        // 1-1-3-1 structure: mid width = out/4.
        let mid = 128 / 4;
        let expect = 64 * mid + mid        // 1x1 reduce
            + mid * mid * 9 + mid          // 3x3
            + mid * 128 + 128              // 1x1 expand
            + 2 * (mid + mid + 128)        // three BNs
            + 64 * 128 + 128; // projection
        assert_eq!(down.params, expect);
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn bottleneck_width_must_be_divisible() {
        Layer::BottleneckBlock {
            out_channels: 30,
            stride: 1,
        }
        .cost(Dims::new(30, 8, 8));
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_panics() {
        Layer::Conv2d {
            out_channels: 8,
            kernel: 7,
            stride: 1,
            padding: 0,
        }
        .cost(Dims::new(1, 4, 4));
    }

    #[test]
    fn stateless_layers_preserve_shape() {
        let d = Dims::new(8, 5, 5);
        for layer in [Layer::ReLU, Layer::BatchNorm, Layer::LocalResponseNorm] {
            assert_eq!(layer.cost(d).output, d);
        }
        assert_eq!(Layer::GlobalAvgPool.cost(d).output, Dims::new(8, 1, 1));
    }
}
