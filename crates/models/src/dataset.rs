//! Dataset descriptors.
//!
//! Only the shape-level facts matter to the provisioning problem: sample
//! dimensions (they determine per-iteration FLOPs via the model graph) and
//! dataset size (it relates iterations to epochs in reports).

use crate::layer::Dims;
use serde::{Deserialize, Serialize};

/// A dataset the paper trains on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    pub train_samples: usize,
    pub sample_dims: Dims,
    pub classes: usize,
}

impl Dataset {
    /// The MNIST handwritten-digit dataset (used flattened by the tutorial
    /// DNN).
    pub fn mnist() -> Self {
        Dataset {
            name: "mnist".into(),
            train_samples: 60_000,
            sample_dims: Dims::flat(784),
            classes: 10,
        }
    }

    /// The CIFAR-10 dataset.
    pub fn cifar10() -> Self {
        Dataset {
            name: "cifar10".into(),
            train_samples: 50_000,
            sample_dims: Dims::new(3, 32, 32),
            classes: 10,
        }
    }

    /// ImageNet-1k (ILSVRC-2012), the paper's future-work dataset.
    pub fn imagenet() -> Self {
        Dataset {
            name: "imagenet".into(),
            train_samples: 1_281_167,
            sample_dims: Dims::new(3, 224, 224),
            classes: 1000,
        }
    }

    /// Number of iterations per epoch at a given global batch size.
    pub fn iterations_per_epoch(&self, batch_size: u32) -> f64 {
        assert!(batch_size > 0, "batch size must be positive");
        self.train_samples as f64 / batch_size as f64
    }

    /// Epochs covered by `iterations` at `batch_size`.
    pub fn epochs(&self, iterations: u64, batch_size: u32) -> f64 {
        iterations as f64 / self.iterations_per_epoch(batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_shape() {
        let d = Dataset::mnist();
        assert_eq!(d.sample_dims.numel(), 784);
        assert_eq!(d.classes, 10);
    }

    #[test]
    fn cifar10_shape() {
        let d = Dataset::cifar10();
        assert_eq!(d.sample_dims.numel(), 3072);
    }

    #[test]
    fn epoch_math() {
        let d = Dataset::cifar10();
        assert!((d.iterations_per_epoch(128) - 390.625).abs() < 1e-9);
        assert!((d.epochs(1000, 128) - 2.56).abs() < 1e-9);
    }
}
