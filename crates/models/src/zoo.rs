//! The four DNNs of the paper's evaluation (Table 1).
//!
//! * `resnet32` — ResNet-32 for CIFAR-10 (3 stages × 5 basic blocks,
//!   16/32/64 channels).
//! * `vgg19` — VGG-19 adapted to 32×32 inputs (configuration E convolutions,
//!   4096-wide fully connected head).
//! * `mnist_dnn` — the TensorFlow-tutorial MNIST network (784-100-10 MLP;
//!   its 79.5k parameters ≈ 0.32 MB match Table 4's 0.33 MB).
//! * `cifar10_dnn` — the TensorFlow-tutorial CIFAR-10 network (two 5×5
//!   convolution + pool + LRN stages, 384/192 dense head).

use crate::graph::ModelGraph;
use crate::layer::{Dims, Layer};

fn conv3(out_channels: usize) -> Layer {
    Layer::Conv2d {
        out_channels,
        kernel: 3,
        stride: 1,
        padding: 1,
    }
}

fn pool2() -> Layer {
    Layer::MaxPool {
        kernel: 2,
        stride: 2,
    }
}

/// ResNet-32 on 3×32×32 inputs (He et al.'s CIFAR variant): 5 basic blocks
/// per stage, widths 16/32/64, global average pooling and a 10-way head.
pub fn resnet32() -> ModelGraph {
    let mut layers = vec![conv3(16), Layer::BatchNorm, Layer::ReLU];
    for (width, blocks) in [(16usize, 5usize), (32, 5), (64, 5)] {
        for b in 0..blocks {
            let stride = if width != 16 && b == 0 { 2 } else { 1 };
            layers.push(Layer::ResidualBlock {
                out_channels: width,
                stride,
            });
        }
    }
    layers.push(Layer::GlobalAvgPool);
    layers.push(Layer::Dense { out_features: 10 });
    layers.push(Layer::Softmax);
    ModelGraph::new("ResNet-32", Dims::new(3, 32, 32), layers)
}

/// VGG-19 (configuration E) on 3×32×32 inputs with the classic
/// 4096-4096-10 dense head; parameters land at ≈ 156 MB, the same order as
/// the 135.84 MB the paper profiles for its VGG-19.
pub fn vgg19() -> ModelGraph {
    let mut layers = Vec::new();
    for (width, convs) in [(64usize, 2usize), (128, 2), (256, 4), (512, 4), (512, 4)] {
        for _ in 0..convs {
            layers.push(conv3(width));
            layers.push(Layer::ReLU);
        }
        layers.push(pool2());
    }
    layers.push(Layer::Dense { out_features: 4096 });
    layers.push(Layer::ReLU);
    layers.push(Layer::Dense { out_features: 4096 });
    layers.push(Layer::ReLU);
    layers.push(Layer::Dense { out_features: 10 });
    layers.push(Layer::Softmax);
    ModelGraph::new("VGG-19", Dims::new(3, 32, 32), layers)
}

/// ResNet-50 on 3×224×224 ImageNet inputs (the paper's future-work
/// target): 7×7/2 stem, 3×3/2 max-pool, bottleneck stages [3, 4, 6, 3]
/// at expanded widths 256/512/1024/2048, global average pooling, and a
/// 1000-way head. Lands at the canonical ≈ 25.6M parameters.
pub fn resnet50() -> ModelGraph {
    let mut layers = vec![
        Layer::Conv2d {
            out_channels: 64,
            kernel: 7,
            stride: 2,
            padding: 3,
        },
        Layer::BatchNorm,
        Layer::ReLU,
        Layer::MaxPool {
            kernel: 3,
            stride: 2,
        },
    ];
    for (width, blocks, first_stride) in [
        (256usize, 3usize, 1usize),
        (512, 4, 2),
        (1024, 6, 2),
        (2048, 3, 2),
    ] {
        for b in 0..blocks {
            layers.push(Layer::BottleneckBlock {
                out_channels: width,
                stride: if b == 0 { first_stride } else { 1 },
            });
        }
    }
    layers.push(Layer::GlobalAvgPool);
    layers.push(Layer::Dense { out_features: 1000 });
    layers.push(Layer::Softmax);
    ModelGraph::new("ResNet-50", Dims::new(3, 224, 224), layers)
}

/// The TensorFlow-tutorial MNIST DNN: a 784-100-10 multilayer perceptron.
pub fn mnist_dnn() -> ModelGraph {
    ModelGraph::new(
        "mnist DNN",
        Dims::flat(784),
        vec![
            Layer::Dense { out_features: 100 },
            Layer::ReLU,
            Layer::Dense { out_features: 10 },
            Layer::Softmax,
        ],
    )
}

/// The TensorFlow-tutorial CIFAR-10 DNN: conv5×5(64) → pool3/2 → LRN →
/// conv5×5(64) → LRN → pool3/2 → dense 384 → dense 192 → dense 10.
pub fn cifar10_dnn() -> ModelGraph {
    ModelGraph::new(
        "cifar10 DNN",
        Dims::new(3, 32, 32),
        vec![
            Layer::Conv2d {
                out_channels: 64,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            Layer::ReLU,
            Layer::MaxPool {
                kernel: 3,
                stride: 2,
            },
            Layer::LocalResponseNorm,
            Layer::Conv2d {
                out_channels: 64,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            Layer::ReLU,
            Layer::LocalResponseNorm,
            Layer::MaxPool {
                kernel: 3,
                stride: 2,
            },
            Layer::Dense { out_features: 384 },
            Layer::ReLU,
            Layer::Dense { out_features: 192 },
            Layer::ReLU,
            Layer::Dense { out_features: 10 },
            Layer::Softmax,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_dnn_matches_table4_parameter_size() {
        let s = mnist_dnn().summary();
        assert_eq!(s.params, 784 * 100 + 100 + 100 * 10 + 10);
        // Table 4: g_param = 0.33 MB.
        assert!(
            (s.param_mb - 0.33).abs() < 0.02,
            "mnist param_mb = {}",
            s.param_mb
        );
    }

    #[test]
    fn resnet32_has_the_expected_depth_and_size() {
        let s = resnet32().summary();
        // The CIFAR ResNet-32 has ~0.46M weights; BN and biases push the
        // algebra slightly above.
        assert!(
            (0.4e6..0.55e6).contains(&(s.params as f64)),
            "resnet32 params = {}",
            s.params
        );
        // Table 4: 2.22 MB; ours lands in the same band.
        assert!(
            (1.5..2.5).contains(&s.param_mb),
            "resnet32 param_mb = {}",
            s.param_mb
        );
    }

    #[test]
    fn vgg19_is_parameter_heavy() {
        let s = vgg19().summary();
        // Table 4: 135.84 MB. Conv stack ~20M + dense head ~19M weights.
        assert!(
            (120.0..170.0).contains(&s.param_mb),
            "vgg19 param_mb = {}",
            s.param_mb
        );
        // VGG dominates the other models by two orders of magnitude.
        assert!(s.param_mb > 20.0 * resnet32().summary().param_mb);
    }

    #[test]
    fn cifar10_dnn_matches_table4_band() {
        let s = cifar10_dnn().summary();
        // Table 4: 4.94 MB.
        assert!(
            (4.0..7.0).contains(&s.param_mb),
            "cifar10 DNN param_mb = {}",
            s.param_mb
        );
    }

    #[test]
    fn all_models_end_in_ten_classes() {
        for g in [resnet32(), vgg19(), mnist_dnn(), cifar10_dnn()] {
            assert_eq!(g.output().numel(), 10, "{}", g.name);
        }
    }

    #[test]
    fn resnet50_matches_the_canonical_size() {
        let s = resnet50().summary();
        // Canonical ResNet-50: 25.6M params, ~4.1 GMACs forward.
        assert!(
            (24.0e6..27.0e6).contains(&(s.params as f64)),
            "resnet50 params = {}",
            s.params
        );
        assert!(
            (6.0e9..10.0e9).contains(&s.fwd_flops_per_sample),
            "resnet50 fwd flops = {:.3e}",
            s.fwd_flops_per_sample
        );
        assert_eq!(resnet50().output().numel(), 1000);
    }

    #[test]
    fn flop_ordering_is_sane() {
        // Per-sample compute: VGG-19 > ResNet-32 > cifar10 DNN > mnist DNN.
        let f = |g: ModelGraph| g.summary().fwd_flops_per_sample;
        let (v, r, c, m) = (f(vgg19()), f(resnet32()), f(cifar10_dnn()), f(mnist_dnn()));
        assert!(v > r && r > c && c > m, "v={v} r={r} c={c} m={m}");
    }

    #[test]
    fn chunking_works_on_every_zoo_model() {
        for g in [resnet32(), vgg19(), mnist_dnn(), cifar10_dnn()] {
            let total = g.summary().param_mb;
            let chunks = g.param_chunks_mb(8);
            assert!(!chunks.is_empty());
            let sum: f64 = chunks.iter().sum();
            assert!((sum - total).abs() < 1e-9, "{}", g.name);
        }
    }
}
