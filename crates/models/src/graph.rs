//! Sequential model graphs and whole-model summaries.

use crate::layer::{Dims, Layer, LayerCost};
use serde::{Deserialize, Serialize};

/// Bytes per trainable parameter (f32).
pub const BYTES_PER_PARAM: f64 = 4.0;

/// Ratio of training FLOPs to forward FLOPs (forward + input-gradient +
/// weight-gradient passes).
pub const TRAIN_FLOPS_FACTOR: f64 = 3.0;

/// A named sequential model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    pub name: String,
    pub input: Dims,
    pub layers: Vec<Layer>,
}

/// Per-layer analysis row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerRow {
    pub index: usize,
    pub kind: String,
    pub output: Dims,
    pub params: usize,
    pub fwd_flops: f64,
}

/// Whole-model static summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSummary {
    pub name: String,
    pub params: usize,
    /// Parameter payload exchanged with the PS, in MB (the paper's
    /// `g_param`).
    pub param_mb: f64,
    /// Forward FLOPs per sample.
    pub fwd_flops_per_sample: f64,
    /// Training FLOPs per sample (≈ 3× forward).
    pub train_flops_per_sample: f64,
    pub layers: Vec<LayerRow>,
}

impl ModelGraph {
    /// Creates a model; validates shape propagation immediately.
    pub fn new(name: impl Into<String>, input: Dims, layers: Vec<Layer>) -> Self {
        let g = ModelGraph {
            name: name.into(),
            input,
            layers,
        };
        g.summary(); // panics on shape errors
        g
    }

    /// Runs shape inference over all layers.
    pub fn summary(&self) -> ModelSummary {
        let mut dims = self.input;
        let mut rows = Vec::with_capacity(self.layers.len());
        let mut params = 0usize;
        let mut fwd = 0.0f64;
        for (index, layer) in self.layers.iter().enumerate() {
            let LayerCost {
                output,
                params: p,
                fwd_flops,
            } = layer.cost(dims);
            rows.push(LayerRow {
                index,
                kind: layer.kind().to_string(),
                output,
                params: p,
                fwd_flops,
            });
            params += p;
            fwd += fwd_flops;
            dims = output;
        }
        ModelSummary {
            name: self.name.clone(),
            params,
            param_mb: params as f64 * BYTES_PER_PARAM / 1e6,
            fwd_flops_per_sample: fwd,
            train_flops_per_sample: fwd * TRAIN_FLOPS_FACTOR,
            layers: rows,
        }
    }

    /// The output shape of the whole model.
    pub fn output(&self) -> Dims {
        self.summary()
            .layers
            .last()
            .map(|r| r.output)
            .unwrap_or(self.input)
    }

    /// Training GFLOPs of one iteration over a mini-batch (the paper's
    /// `w_iter`). For BSP this is the *global* batch: Eq. (4) divides it
    /// across workers.
    pub fn train_gflops_per_iteration(&self, batch_size: u32) -> f64 {
        self.summary().train_flops_per_sample * batch_size as f64 / 1e9
    }

    /// Splits the parameter payload into `n` communication chunks
    /// proportional to the parameter mass of trainable layers, merging
    /// adjacent layers greedily. Returns chunk sizes in MB summing to
    /// `param_mb`. Used by the simulator's layer-wise pipelining; `n` is
    /// clamped to the number of trainable layers.
    pub fn param_chunks_mb(&self, n: usize) -> Vec<f64> {
        let summary = self.summary();
        let masses: Vec<f64> = summary
            .layers
            .iter()
            .filter(|r| r.params > 0)
            .map(|r| r.params as f64 * BYTES_PER_PARAM / 1e6)
            .collect();
        if masses.is_empty() {
            return vec![];
        }
        let n = n.clamp(1, masses.len());
        // Greedy sequential partition targeting equal mass per chunk.
        let total: f64 = masses.iter().sum();
        let target = total / n as f64;
        let mut chunks = Vec::with_capacity(n);
        let mut acc = 0.0;
        let mut remaining_layers = masses.len();
        for m in &masses {
            acc += m;
            remaining_layers -= 1;
            let remaining_chunks = n - chunks.len();
            // Close the chunk when it reaches the target, but always leave
            // at least one layer per remaining chunk.
            if (acc >= target && remaining_chunks > 1) || remaining_layers < remaining_chunks {
                chunks.push(acc);
                acc = 0.0;
            }
        }
        if acc > 0.0 || chunks.len() < n {
            chunks.push(acc);
        }
        debug_assert_eq!(chunks.len(), n);
        chunks
    }
}

impl ModelSummary {
    /// Renders a human-readable per-layer table (used by examples).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<4} {:<10} {:>14} {:>12} {:>14}",
            "#", "layer", "output", "params", "fwd FLOPs"
        );
        for r in &self.layers {
            let _ = writeln!(
                out,
                "{:<4} {:<10} {:>14} {:>12} {:>14.3e}",
                r.index,
                r.kind,
                format!("{}x{}x{}", r.output.c, r.output.h, r.output.w),
                r.params,
                r.fwd_flops
            );
        }
        let _ = writeln!(
            out,
            "total: {} params ({:.2} MB), {:.3e} fwd FLOPs/sample",
            self.params, self.param_mb, self.fwd_flops_per_sample
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelGraph {
        ModelGraph::new(
            "tiny",
            Dims::flat(784),
            vec![
                Layer::Dense { out_features: 100 },
                Layer::ReLU,
                Layer::Dense { out_features: 10 },
                Layer::Softmax,
            ],
        )
    }

    #[test]
    fn summary_totals_add_up() {
        let s = tiny().summary();
        assert_eq!(s.params, 784 * 100 + 100 + 100 * 10 + 10);
        let expect_fwd = 2.0 * (784.0 * 100.0) + 100.0 + 2.0 * (100.0 * 10.0) + 50.0;
        assert_eq!(s.fwd_flops_per_sample, expect_fwd);
        assert_eq!(s.train_flops_per_sample, 3.0 * expect_fwd);
        assert!((s.param_mb - s.params as f64 * 4.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn iteration_gflops_scales_with_batch() {
        let g = tiny();
        let one = g.train_gflops_per_iteration(1);
        let many = g.train_gflops_per_iteration(512);
        assert!((many / one - 512.0).abs() < 1e-9);
    }

    #[test]
    fn output_shape() {
        assert_eq!(tiny().output(), Dims::flat(10));
    }

    #[test]
    fn chunks_conserve_mass_and_count() {
        let g = tiny();
        let total = g.summary().param_mb;
        for n in 1..=2 {
            let chunks = g.param_chunks_mb(n);
            assert_eq!(chunks.len(), n, "requested {n} chunks");
            let sum: f64 = chunks.iter().sum();
            assert!((sum - total).abs() < 1e-9, "mass not conserved for n={n}");
        }
        // Asking for more chunks than trainable layers clamps.
        assert_eq!(g.param_chunks_mb(10).len(), 2);
    }

    #[test]
    fn chunks_of_parameterless_model_are_empty() {
        let g = ModelGraph::new("actonly", Dims::new(3, 8, 8), vec![Layer::ReLU]);
        assert!(g.param_chunks_mb(4).is_empty());
    }

    #[test]
    fn render_table_mentions_every_layer() {
        let t = tiny().summary().render_table();
        assert!(t.contains("dense"));
        assert!(t.contains("softmax"));
        assert!(t.contains("total:"));
    }
}
