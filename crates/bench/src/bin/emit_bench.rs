//! Emits `BENCH_provision.json`, `BENCH_sweep.json`, and `BENCH_obs.json`:
//! wall time of the serial vs parallel band search and multi-seed elastic
//! sweep, the speedup, the eval-cache hit rate, and the cost of the
//! observability hooks — the perf trajectory record the ROADMAP's "fast
//! as the hardware allows" goal is tracked against.
//!
//! ```text
//! cargo run --release -p cynthia-bench --bin emit_bench [out_dir]
//! ```
//!
//! Both parallelism measurements first assert that the parallel path
//! reproduces the serial output bit for bit (`bit_identical` in the
//! emitted record), so a regression in equivalence shows up in the perf
//! artifact too; the obs record asserts the same about the kill switch.

use cynthia_bench::{
    bench_loss, bench_profile, goal_grid, sweep_config, sweep_seeds, ParallelBenchReport,
};
use cynthia_cloud::default_catalog;
use cynthia_core::provisioner::{plan, plan_parallel_with_cache, EvalCache, PlannerOptions};
use cynthia_core::CynthiaModel;
use cynthia_elastic::{summarize, summarize_parallel};
use cynthia_models::Workload;
use cynthia_obs::export::write_json_pretty;
use serde::Serialize;
use std::time::Instant;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Serial vs parallel Alg. 1 band search over the goal grid.
fn provision_report() -> ParallelBenchReport {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let profile = bench_profile(&workload);
    let loss = bench_loss(&workload);
    // Full-band scan (no Theorem 4.1 narrowing) so each goal carries
    // enough candidate evaluations for the fan-out to be measurable.
    let opts = PlannerOptions {
        use_bounds: false,
        max_workers: 64,
        ..PlannerOptions::default()
    };
    let goals = goal_grid();

    // Warm-up so neither path pays first-touch costs.
    let _ = plan(&profile, &loss, &catalog, &goals[0], &opts);

    let (serial_plans, serial_secs) = timed(|| {
        goals
            .iter()
            .map(|g| plan(&profile, &loss, &catalog, g, &opts))
            .collect::<Vec<_>>()
    });

    let model = CynthiaModel::new(profile.clone());
    let cache = EvalCache::new();
    let (parallel_plans, parallel_secs) = timed(|| {
        goals
            .iter()
            .map(|g| plan_parallel_with_cache(&model, &profile, &loss, &catalog, g, &opts, &cache))
            .collect::<Vec<_>>()
    });

    ParallelBenchReport {
        bench: "provision_band_search".to_string(),
        threads: rayon::current_num_threads(),
        work_items: goals.len(),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs,
        cache_hit_rate: cache.hit_rate(),
        bit_identical: serial_plans == parallel_plans,
    }
}

/// Serial vs parallel 16-seed elastic scenario sweep.
fn sweep_report() -> ParallelBenchReport {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let cfg = sweep_config(0);
    let seeds = sweep_seeds(16);

    let (serial_summary, serial_secs) = timed(|| summarize(&workload, &catalog, &cfg, &seeds));
    let (parallel_summary, parallel_secs) =
        timed(|| summarize_parallel(&workload, &catalog, &cfg, &seeds));

    ParallelBenchReport {
        bench: "elastic_sweep_16_seeds".to_string(),
        threads: rayon::current_num_threads(),
        work_items: seeds.len(),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs,
        // The sweep's per-seed replanner caches are internal; the figure
        // recorded here is the cross-goal cache of the provisioning bench.
        cache_hit_rate: 0.0,
        bit_identical: serial_summary == parallel_summary,
    }
}

/// Cost of the observability hooks on the provisioning hot path: the
/// goal grid planned with metrics recording vs the kill switch thrown.
/// `obs_compiled: false` means the hooks are compiled out entirely and
/// both timings measure the same uninstrumented code.
#[derive(Debug, Clone, Serialize)]
struct ObsBenchReport {
    bench: String,
    work_items: usize,
    enabled_secs: f64,
    disabled_secs: f64,
    overhead_pct: f64,
    obs_compiled: bool,
    bit_identical: bool,
}

fn obs_report() -> ObsBenchReport {
    let catalog = default_catalog();
    let workload = Workload::cifar10_bsp();
    let profile = bench_profile(&workload);
    let loss = bench_loss(&workload);
    // Full-band scan, repeated: the Theorem 4.1-narrowed grid plans in
    // microseconds, far below timer noise for a percentage comparison.
    let opts = PlannerOptions {
        use_bounds: false,
        max_workers: 64,
        ..PlannerOptions::default()
    };
    let goals = goal_grid();
    const REPS: usize = 20;

    let plan_grid = || {
        let mut last = Vec::new();
        for _ in 0..REPS {
            last = goals
                .iter()
                .map(|g| plan(&profile, &loss, &catalog, g, &opts))
                .collect::<Vec<_>>();
        }
        last
    };
    let _ = plan_grid(); // warm-up

    cynthia_obs::set_enabled(true);
    let (enabled_plans, enabled_secs) = timed(plan_grid);
    cynthia_obs::set_enabled(false);
    let (disabled_plans, disabled_secs) = timed(plan_grid);
    cynthia_obs::set_enabled(true);

    ObsBenchReport {
        bench: "obs_hooks_provision_grid".to_string(),
        work_items: goals.len(),
        enabled_secs,
        disabled_secs,
        overhead_pct: (enabled_secs / disabled_secs - 1.0) * 100.0,
        obs_compiled: cfg!(feature = "obs"),
        bit_identical: enabled_plans == disabled_plans,
    }
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());

    let provision = provision_report();
    assert!(
        provision.bit_identical,
        "parallel band search diverged from serial: {provision:?}"
    );
    let path = format!("{out_dir}/BENCH_provision.json");
    write_json_pretty(&path, &provision).expect("write BENCH_provision.json");
    eprintln!(
        "{path}: {} goals, serial {:.3}s, parallel {:.3}s ({:.2}x, cache hit rate {:.1}%)",
        provision.work_items,
        provision.serial_secs,
        provision.parallel_secs,
        provision.speedup,
        provision.cache_hit_rate * 100.0
    );

    let sweep = sweep_report();
    assert!(
        sweep.bit_identical,
        "parallel sweep diverged from serial: {sweep:?}"
    );
    let path = format!("{out_dir}/BENCH_sweep.json");
    write_json_pretty(&path, &sweep).expect("write BENCH_sweep.json");
    eprintln!(
        "{path}: {} seeds, serial {:.3}s, parallel {:.3}s ({:.2}x)",
        sweep.work_items, sweep.serial_secs, sweep.parallel_secs, sweep.speedup
    );

    let obs = obs_report();
    assert!(
        obs.bit_identical,
        "obs kill switch changed the planner's output: {obs:?}"
    );
    let path = format!("{out_dir}/BENCH_obs.json");
    write_json_pretty(&path, &obs).expect("write BENCH_obs.json");
    eprintln!(
        "{path}: {} goals, hooks on {:.3}s, off {:.3}s ({:+.2}% overhead, compiled: {})",
        obs.work_items, obs.enabled_secs, obs.disabled_secs, obs.overhead_pct, obs.obs_compiled
    );
}
