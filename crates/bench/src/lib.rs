//! # cynthia-bench — benchmark fixtures
//!
//! The Criterion benches under `benches/` regenerate every table and
//! figure of the paper (at reduced scale so a full `cargo bench` stays
//! tractable) and measure the runtime of each system component plus the
//! ablations DESIGN.md calls out. This small library holds the shared
//! fixtures so the bench targets stay declarative.

use cynthia_cloud::catalog::default_catalog;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::profiler::{profile_workload, ProfileData};
use cynthia_experiments::ExpConfig;
use cynthia_models::Workload;

/// The quick experiment configuration used by every bench.
pub fn bench_config() -> ExpConfig {
    ExpConfig::quick()
}

/// A cached m4.xlarge profile for the given workload.
pub fn bench_profile(workload: &Workload) -> ProfileData {
    let catalog = default_catalog();
    profile_workload(workload, catalog.expect("m4.xlarge"), 99)
}

/// A ground-truth loss model for the workload (as if fitted from a prior
/// production run).
pub fn bench_loss(workload: &Workload) -> FittedLossModel {
    FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let w = Workload::mnist_bsp();
        let p = bench_profile(&w);
        assert!(p.w_iter_gflops > 0.0);
        let l = bench_loss(&w);
        assert_eq!(l.sync, w.sync);
        assert!(!bench_config().catalog.is_empty());
    }
}
