//! # cynthia-bench — benchmark fixtures
//!
//! The Criterion benches under `benches/` regenerate every table and
//! figure of the paper (at reduced scale so a full `cargo bench` stays
//! tractable) and measure the runtime of each system component plus the
//! ablations DESIGN.md calls out. This small library holds the shared
//! fixtures so the bench targets stay declarative.

use cynthia_cloud::catalog::default_catalog;
use cynthia_cloud::RevocationModel;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::profiler::{profile_workload, ProfileData};
use cynthia_core::provisioner::Goal;
use cynthia_elastic::{ElasticConfig, RepairPolicy};
use cynthia_experiments::ExpConfig;
use cynthia_models::Workload;
use serde::Serialize;

/// The quick experiment configuration used by every bench.
pub fn bench_config() -> ExpConfig {
    ExpConfig::quick()
}

/// A grid of `(deadline, target loss)` goals spanning the feasible range
/// for the Table 1 BSP workloads — the unit of work for the band-search
/// benches (one Alg. 1 run per goal).
pub fn goal_grid() -> Vec<Goal> {
    let mut goals = Vec::new();
    for deadline_secs in [1800.0, 2700.0, 3600.0, 5400.0, 7200.0, 10800.0] {
        for target_loss in [0.6, 0.8, 1.0, 1.4, 2.0] {
            goals.push(Goal {
                deadline_secs,
                target_loss,
            });
        }
    }
    goals
}

/// The elastic scenario fixture of the sweep benches: cifar-10/BSP on a
/// spot fleet with on-demand fallback under a moderate reclaim rate.
pub fn sweep_config(seed: u64) -> ElasticConfig {
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 2.2,
    };
    let mut cfg = ElasticConfig::new(goal, RepairPolicy::spot_with_fallback(), seed);
    cfg.market.revocations = RevocationModel::Exponential { rate_per_hour: 6.0 };
    cfg
}

/// The master seeds of an `n`-seed sweep.
pub fn sweep_seeds(n: u64) -> Vec<u64> {
    (0..n).map(|i| 1000 + 17 * i).collect()
}

/// One serial-vs-parallel measurement, as persisted to `BENCH_*.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelBenchReport {
    /// Which benchmark produced the record.
    pub bench: String,
    /// Worker threads the parallel path fanned out to.
    pub threads: usize,
    /// Units of work (goals planned / seeds swept).
    pub work_items: usize,
    /// Serial wall time, seconds.
    pub serial_secs: f64,
    /// Parallel wall time, seconds.
    pub parallel_secs: f64,
    /// `serial_secs / parallel_secs`.
    pub speedup: f64,
    /// Eval-cache hit rate of the parallel path (0 when uncached).
    pub cache_hit_rate: f64,
    /// Whether the parallel outputs matched the serial ones bit for bit.
    pub bit_identical: bool,
}

/// A cached m4.xlarge profile for the given workload.
pub fn bench_profile(workload: &Workload) -> ProfileData {
    let catalog = default_catalog();
    profile_workload(workload, catalog.expect("m4.xlarge"), 99)
}

/// A ground-truth loss model for the workload (as if fitted from a prior
/// production run).
pub fn bench_loss(workload: &Workload) -> FittedLossModel {
    FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let w = Workload::mnist_bsp();
        let p = bench_profile(&w);
        assert!(p.w_iter_gflops > 0.0);
        let l = bench_loss(&w);
        assert_eq!(l.sync, w.sync);
        assert!(!bench_config().catalog.is_empty());
    }
}
