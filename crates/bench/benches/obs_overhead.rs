//! Overhead budget for the observability layer (ISSUE 5: < 3%).
//!
//! Runs the Alg. 1 provisioning grid — the hottest instrumented path —
//! three ways: hooks recording (`obs` feature on, master switch on),
//! hooks present but switched off (`cynthia_obs::set_enabled(false)`),
//! and, when the workspace is built with `--no-default-features`, hooks
//! compiled out entirely. The enabled-vs-disabled delta bounds what the
//! instrumentation costs; `emit_bench` persists the same comparison to
//! `BENCH_obs.json` for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use cynthia_bench::{bench_loss, bench_profile, goal_grid};
use cynthia_cloud::catalog::default_catalog;
use cynthia_core::provisioner::{plan, PlannerOptions};
use cynthia_models::Workload;

fn plan_the_grid() {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let profile = bench_profile(&w);
    let loss = bench_loss(&w);
    for goal in goal_grid() {
        let _ = plan(&profile, &loss, &catalog, &goal, &PlannerOptions::default());
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    // Warm caches and CPU clocks before either measurement, or the first
    // benchmark pays the cold-start cost and the comparison is meaningless.
    for _ in 0..20 {
        plan_the_grid();
    }
    let mut g = c.benchmark_group("obs-overhead");
    g.sample_size(50);
    let gate = if cfg!(feature = "obs") {
        "hooks-compiled-in"
    } else {
        "hooks-compiled-out"
    };
    g.bench_function(&format!("plan-grid-obs-enabled-{gate}"), |b| {
        cynthia_obs::set_enabled(true);
        b.iter(plan_the_grid)
    });
    g.bench_function(&format!("plan-grid-obs-disabled-{gate}"), |b| {
        cynthia_obs::set_enabled(false);
        b.iter(plan_the_grid)
    });
    cynthia_obs::set_enabled(true);
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
