//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_bounds` — Alg. 1 with vs without Theorem 4.1's search-band
//!   narrowing (the Sec. 5.3 complexity claim: runtime is proportional to
//!   the band width).
//! * `ablation_scan` — first-feasible stop vs full-band minimum-cost scan.
//! * `ablation_overlap` / `ablation_bottleneck` — prediction cost of the
//!   full model vs its degraded variants (their *accuracy* deltas are
//!   covered by `cynthia-exp ablations`).

use criterion::{criterion_group, criterion_main, Criterion};
use cynthia_bench::{bench_loss, bench_profile};
use cynthia_cloud::catalog::default_catalog;
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::provisioner::{plan, Goal, PlannerOptions};
use cynthia_models::Workload;

fn bench_bounds_ablation(c: &mut Criterion) {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let profile = bench_profile(&w);
    let loss = bench_loss(&w);
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 0.7,
    };
    let mut g = c.benchmark_group("ablation-bounds");
    g.bench_function("with-theorem41-bounds", |b| {
        b.iter(|| plan(&profile, &loss, &catalog, &goal, &PlannerOptions::default()))
    });
    g.bench_function("without-bounds-full-scan", |b| {
        b.iter(|| {
            plan(
                &profile,
                &loss,
                &catalog,
                &goal,
                &PlannerOptions {
                    use_bounds: false,
                    max_workers: 64,
                    ..PlannerOptions::default()
                },
            )
        })
    });
    g.bench_function("first-feasible-stop", |b| {
        b.iter(|| {
            plan(
                &profile,
                &loss,
                &catalog,
                &goal,
                &PlannerOptions {
                    first_feasible: true,
                    ..PlannerOptions::default()
                },
            )
        })
    });
    g.finish();
}

fn bench_model_ablations(c: &mut Criterion) {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let profile = bench_profile(&Workload::cifar10_bsp());
    let full = CynthiaModel::new(profile.clone());
    let no_overlap = CynthiaModel {
        overlap: false,
        ..full.clone()
    };
    let no_bottleneck = CynthiaModel {
        bottleneck_aware: false,
        ..full.clone()
    };
    let shape = ClusterShape::homogeneous(m4, 13, 1);
    let mut g = c.benchmark_group("ablation-model");
    g.bench_function("full", |b| b.iter(|| full.predict_time(&shape, 10_000)));
    g.bench_function("no-overlap", |b| {
        b.iter(|| no_overlap.predict_time(&shape, 10_000))
    });
    g.bench_function("no-bottleneck", |b| {
        b.iter(|| no_bottleneck.predict_time(&shape, 10_000))
    });
    g.finish();
}

criterion_group!(benches, bench_bounds_ablation, bench_model_ablations);
criterion_main!(benches);
