//! Throughput of the discrete-event training simulator itself: how fast
//! virtual training runs execute, across sync modes and cluster sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use cynthia_cloud::catalog::default_catalog;
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};

fn bench_simulator(c: &mut Criterion) {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    for (label, workload, n, n_ps) in [
        (
            "mnist-bsp-1wk",
            Workload::mnist_bsp().with_iterations(200),
            1u32,
            1u32,
        ),
        (
            "mnist-bsp-8wk",
            Workload::mnist_bsp().with_iterations(200),
            8,
            1,
        ),
        (
            "mnist-bsp-8wk-4ps",
            Workload::mnist_bsp().with_iterations(200),
            8,
            4,
        ),
        (
            "vgg-asp-9wk",
            Workload::vgg19_asp().with_iterations(100),
            9,
            1,
        ),
        (
            "cifar-bsp-17wk",
            Workload::cifar10_bsp().with_iterations(100),
            17,
            1,
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                simulate(&TrainJob {
                    workload: &workload,
                    cluster: ClusterSpec::homogeneous(m4, n, n_ps),
                    config: SimConfig::deterministic(7),
                })
            })
        });
    }

    // Heterogeneous barrier handling.
    let m1 = catalog.expect("m1.xlarge");
    let w = Workload::mnist_bsp().with_iterations(200);
    g.bench_function("mnist-bsp-8wk-hetero", |b| {
        b.iter(|| {
            simulate(&TrainJob {
                workload: &w,
                cluster: ClusterSpec::heterogeneous(m4, m1, 8, 1),
                config: SimConfig::deterministic(7),
            })
        })
    });

    // Fast-forward amortization: a 10k-iteration run at steady state.
    let long = Workload::mnist_bsp();
    g.bench_function("mnist-bsp-10k-fastforward", |b| {
        b.iter(|| {
            simulate(&TrainJob {
                workload: &long,
                cluster: ClusterSpec::homogeneous(m4, 4, 1),
                config: SimConfig::fast(7),
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
