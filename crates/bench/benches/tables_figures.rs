//! One bench per table/figure of the paper's evaluation: each target
//! regenerates its artifact end-to-end (profiling, simulation,
//! prediction, planning) at the quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use cynthia_bench::bench_config;
use cynthia_experiments as exp;

fn bench_tables_figures(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("paper-artifacts");
    g.sample_size(10);

    g.bench_function("table1", |b| b.iter(exp::table1::run));
    g.bench_function("fig1", |b| b.iter(|| exp::fig1::run(&cfg)));
    g.bench_function("table2", |b| b.iter(|| exp::table2::run(&cfg)));
    g.bench_function("fig2", |b| b.iter(|| exp::fig2::run(&cfg)));
    g.bench_function("fig3", |b| b.iter(|| exp::fig3::run(&cfg)));
    g.bench_function("fig4", |b| b.iter(|| exp::fig4::run(&cfg)));
    g.bench_function("table4", |b| b.iter(|| exp::table4::run(&cfg)));
    g.bench_function("fig6", |b| b.iter(|| exp::fig6::run(&cfg)));
    g.bench_function("fig7", |b| b.iter(|| exp::fig7::run(&cfg)));
    g.bench_function("fig8", |b| b.iter(|| exp::fig8::run(&cfg)));
    g.bench_function("fig9", |b| b.iter(|| exp::fig9::run(&cfg)));
    g.bench_function("fig10", |b| b.iter(|| exp::fig10::run(&cfg)));
    g.bench_function("fig11", |b| b.iter(|| exp::fig11::run(&cfg)));
    g.bench_function("fig12", |b| b.iter(|| exp::fig12::run(&cfg)));
    g.bench_function("fig13", |b| b.iter(|| exp::fig13::run(&cfg)));
    g.bench_function("overhead", |b| b.iter(|| exp::overhead::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench_tables_figures);
criterion_main!(benches);
