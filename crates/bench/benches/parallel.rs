//! Benches for the parallel provisioning and sweep engine:
//!
//! * `provision` — Alg. 1 band search over the full goal grid, serial
//!   (`plan`) vs parallel (`plan_parallel`) vs parallel with a shared
//!   cross-goal `EvalCache`.
//! * `sweep` — the 16-seed elastic scenario sweep, serial (`summarize`)
//!   vs parallel (`summarize_parallel`).
//!
//! The parallel paths are bit-identical to the serial ones (see
//! `tests/parallel_equivalence.rs`), so these benches measure pure
//! speedup, not an accuracy trade.

use criterion::{criterion_group, criterion_main, Criterion};
use cynthia_bench::{bench_loss, bench_profile, goal_grid, sweep_config, sweep_seeds};
use cynthia_cloud::catalog::default_catalog;
use cynthia_core::provisioner::PlannerOptions;
use cynthia_core::provisioner::{plan, plan_parallel, plan_parallel_with_cache, EvalCache};
use cynthia_core::CynthiaModel;
use cynthia_elastic::{summarize, summarize_parallel};
use cynthia_models::Workload;

fn bench_provision(c: &mut Criterion) {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let profile = bench_profile(&w);
    let loss = bench_loss(&w);
    // Full-band scan (no Theorem 4.1 narrowing) so each goal carries
    // enough candidate evaluations for the fan-out to be measurable.
    let opts = PlannerOptions {
        use_bounds: false,
        max_workers: 64,
        ..PlannerOptions::default()
    };
    let goals = goal_grid();

    let mut g = c.benchmark_group("provision");
    g.bench_function("band-search-serial", |b| {
        b.iter(|| {
            goals
                .iter()
                .map(|goal| plan(&profile, &loss, &catalog, goal, &opts))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("band-search-parallel", |b| {
        b.iter(|| {
            goals
                .iter()
                .map(|goal| plan_parallel(&profile, &loss, &catalog, goal, &opts))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("band-search-parallel-shared-cache", |b| {
        let model = CynthiaModel::new(profile.clone());
        b.iter(|| {
            let cache = EvalCache::new();
            goals
                .iter()
                .map(|goal| {
                    plan_parallel_with_cache(&model, &profile, &loss, &catalog, goal, &opts, &cache)
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let cfg = sweep_config(0);
    let seeds = sweep_seeds(16);

    let mut g = c.benchmark_group("sweep");
    g.bench_function("elastic-16-seeds-serial", |b| {
        b.iter(|| summarize(&w, &catalog, &cfg, &seeds))
    });
    g.bench_function("elastic-16-seeds-parallel", |b| {
        b.iter(|| summarize_parallel(&w, &catalog, &cfg, &seeds))
    });
    g.finish();
}

criterion_group!(benches, bench_provision, bench_sweep);
criterion_main!(benches);
