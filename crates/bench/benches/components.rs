//! Micro-benchmarks of the system's components: the fluid max-min solver,
//! the event queue, MVA, loss fitting, profiling, and Alg. 1 planning
//! (the Sec. 5.3 "milliseconds" claim).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cynthia_bench::{bench_loss, bench_profile};
use cynthia_cloud::catalog::default_catalog;
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::provisioner::{plan, Goal, PlannerOptions};
use cynthia_models::{SyncMode, Workload};
use cynthia_sim::events::EventQueue;
use cynthia_sim::fluid::{FlowSpec, FluidSystem};

fn bench_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid");
    for flows in [8usize, 64, 256] {
        g.bench_function(&format!("recompute-{flows}-flows"), |b| {
            b.iter_batched(
                || {
                    let mut sys = FluidSystem::new();
                    let links: Vec<_> = (0..8)
                        .map(|i| sys.add_resource(100.0, format!("l{i}")))
                        .collect();
                    for i in 0..flows {
                        sys.start_flow(FlowSpec::new(
                            vec![links[i % 8], links[(i + 1) % 8]],
                            10.0,
                            i as u64,
                        ));
                    }
                    sys
                },
                |mut sys| sys.next_completion(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event-queue-10k-roundtrip", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.schedule_at((i % 97) as f64, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc += e as u64;
            }
            acc
        })
    });
}

fn bench_models(c: &mut Criterion) {
    let catalog = default_catalog();
    let m4 = catalog.expect("m4.xlarge");
    let w_asp = Workload::vgg19_asp();
    let w_bsp = Workload::cifar10_bsp();
    let model_asp = CynthiaModel::new(bench_profile(&w_asp));
    let model_bsp = CynthiaModel::new(bench_profile(&w_bsp));
    let shape = ClusterShape::homogeneous(m4, 12, 2);

    let mut g = c.benchmark_group("prediction");
    g.bench_function("cynthia-bsp-predict", |b| {
        b.iter(|| model_bsp.predict_time(&shape, 10_000))
    });
    g.bench_function("cynthia-asp-mva-predict", |b| {
        b.iter(|| model_asp.predict_time(&shape, 1_000))
    });
    g.finish();
}

fn bench_loss_fit(c: &mut Criterion) {
    let curve: Vec<(u64, f64)> = (1..=512u64)
        .map(|i| (i * 19, 700.0 / (i as f64 * 19.0) + 0.45))
        .collect();
    c.bench_function("loss-fit-512-samples", |b| {
        b.iter(|| cynthia_core::loss_model::FittedLossModel::fit(SyncMode::Bsp, &curve, 1))
    });
}

fn bench_planning(c: &mut Criterion) {
    // Sec. 5.3: Alg. 1 computes plans in milliseconds.
    let catalog = default_catalog();
    let w = Workload::cifar10_bsp();
    let profile = bench_profile(&w);
    let loss = bench_loss(&w);
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 0.7,
    };
    c.bench_function("alg1-plan-cifar10", |b| {
        b.iter(|| plan(&profile, &loss, &catalog, &goal, &PlannerOptions::default()))
    });
}

criterion_group!(
    benches,
    bench_fluid,
    bench_event_queue,
    bench_models,
    bench_loss_fit,
    bench_planning
);
criterion_main!(benches);
