//! Execution tracing: records worker/PS activity intervals during a
//! simulated run and exports them in the Chrome trace-event format
//! (`chrome://tracing`, Perfetto), so a training timeline can be inspected
//! visually — compute segments, pushes, applies, pulls, and barrier
//! stalls.

use serde::Serialize;

/// Activity categories, matching the simulator's phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Activity {
    Compute,
    Push,
    Apply,
    Pull,
}

impl Activity {
    fn name(&self) -> &'static str {
        match self {
            Activity::Compute => "compute",
            Activity::Push => "push",
            Activity::Apply => "apply",
            Activity::Pull => "pull",
        }
    }
}

/// One recorded interval on a lane (a worker or a PS node).
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Lane name, e.g. `"worker-3"` or `"ps-0"`.
    pub lane: String,
    pub activity: Activity,
    /// Iteration / update the work belonged to.
    pub iteration: u64,
    pub start: f64,
    pub end: f64,
}

/// A bounded trace recorder. Recording stops silently after `capacity`
/// spans so long simulations cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    spans: Vec<Span>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            spans: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one interval.
    pub fn record(
        &mut self,
        lane: String,
        activity: Activity,
        iteration: u64,
        start: f64,
        end: f64,
    ) {
        debug_assert!(end >= start, "span ends before it starts");
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.spans.push(Span {
            lane,
            activity,
            iteration,
            start,
            end,
        });
    }

    /// Recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans that did not fit in `capacity`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total busy time per `(lane, activity)` pair, useful for asserting
    /// accounting in tests.
    pub fn busy_time(&self, lane: &str, activity: Activity) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.lane == lane && s.activity == activity)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Exports the Chrome trace-event JSON (`traceEvents` array of
    /// complete events, microsecond timestamps). Load in
    /// `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        #[derive(Serialize)]
        struct Event<'a> {
            name: &'a str,
            cat: &'a str,
            ph: &'a str,
            ts: u64,
            dur: u64,
            pid: u32,
            tid: u32,
            args: Args,
        }
        #[derive(Serialize)]
        struct Args {
            iteration: u64,
        }
        // Stable lane -> tid mapping in first-seen order.
        let mut lanes: Vec<&str> = Vec::new();
        let mut events = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let tid = match lanes.iter().position(|l| *l == s.lane) {
                Some(i) => i,
                None => {
                    lanes.push(&s.lane);
                    lanes.len() - 1
                }
            } as u32;
            events.push(Event {
                name: s.activity.name(),
                cat: s.activity.name(),
                ph: "X",
                ts: (s.start * 1e6) as u64,
                dur: ((s.end - s.start) * 1e6).max(1.0) as u64,
                pid: 1,
                tid,
                args: Args {
                    iteration: s.iteration,
                },
            });
        }
        #[derive(Serialize)]
        struct Root<'a> {
            #[serde(rename = "traceEvents")]
            trace_events: Vec<Event<'a>>,
            #[serde(rename = "displayTimeUnit")]
            display_time_unit: &'a str,
        }
        serde_json::to_string(&Root {
            trace_events: events,
            display_time_unit: "ms",
        })
        .expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new(100);
        t.record("worker-0".into(), Activity::Compute, 0, 0.0, 1.5);
        t.record("worker-0".into(), Activity::Compute, 1, 2.0, 3.0);
        t.record("ps-0".into(), Activity::Apply, 0, 1.6, 1.9);
        t
    }

    #[test]
    fn busy_time_sums_per_lane_and_activity() {
        let t = sample();
        assert!((t.busy_time("worker-0", Activity::Compute) - 2.5).abs() < 1e-12);
        assert!((t.busy_time("ps-0", Activity::Apply) - 0.3).abs() < 1e-12);
        assert_eq!(t.busy_time("worker-1", Activity::Compute), 0.0);
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = TraceRecorder::new(2);
        for i in 0..5 {
            t.record("w".into(), Activity::Push, i, i as f64, i as f64 + 0.5);
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let t = sample();
        let json = t.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["name"], "compute");
        // Microsecond timestamps.
        assert_eq!(events[1]["ts"], 2_000_000);
        // Lanes map to stable tids.
        assert_eq!(events[0]["tid"], events[1]["tid"]);
        assert_ne!(events[0]["tid"], events[2]["tid"]);
    }
}
