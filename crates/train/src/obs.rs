//! Instrumentation hooks for the training engine (feature `obs`).
//!
//! The engine is the hottest code in the repo, so the hooks follow two
//! rules. Rare events (rollbacks, restores) record live; per-iteration
//! breakdowns record live only as *spans*, and only while the process
//! tracer is enabled ([`cynthia_obs::span_recording`] is one relaxed
//! atomic load when it is not); everything else is bulk-recorded once per
//! run from the engine's existing accounting in `finish()`. Hooks read
//! engine state, never mutate it — `simulate_faulted` must return a
//! bit-identical `TrainingReport` whether the feature is on, off, or the
//! kill switch is thrown (`tests/obs_determinism.rs` enforces this).
//!
//! Spans live on per-run virtual-clock tracks — `train#<id>` for the
//! `train.run` root and its BSP `train.iteration` children (with
//! comp/comm/stall args), `train#<id>/w<j>` lanes for ASP cycles,
//! `recovery#<id>` for rollbacks and `recovery#<id>/w<j>` for restores —
//! because each engine's virtual clock restarts at zero and per-worker
//! events genuinely overlap in time.

/// Per-run totals handed to [`record_run`] from the engine's `finish()`.
pub struct RunTotals<'a> {
    /// Updates actually simulated (BSP iterations / ASP commits).
    pub updates: u64,
    /// Per-iteration wall seconds over the measured window.
    pub iter_samples: &'a [f64],
    /// Per-iteration compute seconds.
    pub comp_samples: &'a [f64],
    /// Per-iteration communication seconds.
    pub comm_samples: &'a [f64],
    /// Worker instances lost (spot reclaims, crashes, departures).
    pub revocations: u32,
    /// Workers that rejoined after an outage.
    pub repairs: u32,
    /// Restart attempts consumed by the recovery policy.
    pub retries: u32,
    /// PS failovers (chunks re-sharded onto survivors).
    pub failovers: u32,
    /// Updates rolled back to a checkpoint (to be replayed).
    pub lost_updates: u64,
    /// Updates recomputed after rollbacks.
    pub replayed_updates: u64,
    /// Seconds with zero fleet-wide progress.
    pub downtime_secs: f64,
    /// Seconds degraded (stragglers, link faults) but progressing.
    pub degraded_secs: f64,
}

#[cfg(feature = "obs")]
mod real {
    use super::RunTotals;
    use cynthia_obs::registry::TIME_BUCKETS;
    use cynthia_obs::{metrics, tracer, Counter, FloatCounter, Histogram};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Every engine run gets its own span track (`train#<id>`): virtual
    /// clocks restart at zero per run, so spans of different runs must
    /// not share a timeline. ASP cycles and concurrent restores likewise
    /// get per-worker lanes (`…/w<j>`) because they genuinely overlap.
    static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

    fn train_track(run: u64) -> String {
        format!("train#{run}")
    }

    fn recovery_track(run: u64) -> String {
        format!("recovery#{run}")
    }

    macro_rules! cached {
        ($fn_name:ident, $ctor:ident, $name:literal, $help:literal, $ty:ty) => {
            fn $fn_name() -> &'static $ty {
                static M: OnceLock<$ty> = OnceLock::new();
                M.get_or_init(|| metrics().$ctor($name, $help))
            }
        };
    }

    macro_rules! cached_hist {
        ($fn_name:ident, $name:literal, $help:literal) => {
            fn $fn_name() -> &'static Histogram {
                static M: OnceLock<Histogram> = OnceLock::new();
                M.get_or_init(|| metrics().histogram($name, TIME_BUCKETS, $help))
            }
        };
    }

    cached!(
        runs,
        counter,
        "cynthia_train_runs_total",
        "Training simulations completed",
        Counter
    );
    cached!(
        updates,
        counter,
        "cynthia_train_updates_total",
        "Model updates simulated (BSP iterations / ASP commits)",
        Counter
    );
    cached!(
        rollbacks,
        counter,
        "cynthia_train_rollbacks_total",
        "Checkpoint rollbacks after PS loss",
        Counter
    );
    cached!(
        lost,
        counter,
        "cynthia_train_lost_updates_total",
        "Updates rolled back to a checkpoint",
        Counter
    );
    cached!(
        replayed,
        counter,
        "cynthia_train_replayed_updates_total",
        "Updates recomputed after rollbacks",
        Counter
    );
    cached!(
        restores,
        counter,
        "cynthia_train_restores_total",
        "Checkpoint restores (full parameter re-pulls)",
        Counter
    );
    cached!(
        revocations,
        counter,
        "cynthia_train_revocations_total",
        "Worker instances lost (spot reclaims, crashes, departures)",
        Counter
    );
    cached!(
        repairs,
        counter,
        "cynthia_train_repairs_total",
        "Workers rejoined after an outage",
        Counter
    );
    cached!(
        retries,
        counter,
        "cynthia_train_retries_total",
        "Recovery-policy restart attempts",
        Counter
    );
    cached!(
        failovers,
        counter,
        "cynthia_train_failovers_total",
        "PS failovers re-sharding chunks onto survivors",
        Counter
    );
    cached!(
        comp_total,
        float_counter,
        "cynthia_train_comp_seconds_total",
        "Measured-window compute seconds (paper t_comp)",
        FloatCounter
    );
    cached!(
        comm_total,
        float_counter,
        "cynthia_train_comm_seconds_total",
        "Measured-window communication seconds (paper t_comm)",
        FloatCounter
    );
    cached!(
        stall_total,
        float_counter,
        "cynthia_train_stall_seconds_total",
        "Measured-window stall seconds (iteration minus comp/comm overlap)",
        FloatCounter
    );
    cached!(
        downtime,
        float_counter,
        "cynthia_train_downtime_seconds_total",
        "Seconds with zero fleet-wide progress",
        FloatCounter
    );
    cached!(
        degraded,
        float_counter,
        "cynthia_train_degraded_seconds_total",
        "Seconds degraded but progressing",
        FloatCounter
    );
    cached_hist!(
        iter_hist,
        "cynthia_train_iter_seconds",
        "Per-iteration wall seconds over the measured window"
    );
    cached_hist!(
        comp_hist,
        "cynthia_train_comp_seconds",
        "Per-iteration compute seconds"
    );
    cached_hist!(
        comm_hist,
        "cynthia_train_comm_seconds",
        "Per-iteration communication seconds"
    );
    cached_hist!(
        restore_hist,
        "cynthia_train_restore_seconds",
        "Virtual seconds per checkpoint restore"
    );

    /// Opens the `train.run` root span at virtual time `t0`. Returns the
    /// run's track id (0 while spans are off) for the other span hooks.
    pub fn run_begin(t0: f64) -> u64 {
        if !cynthia_obs::span_recording() {
            return 0;
        }
        let run = RUN_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        tracer().begin_at(&train_track(run), "train.run", t0);
        run
    }

    /// Closes the `train.run` root span at virtual time `t1`.
    pub fn run_end(run: u64, t1: f64, updates: u64) {
        if run != 0 && cynthia_obs::span_recording() {
            tracer().end_at(&train_track(run), t1, &[("updates", updates as f64)]);
        }
    }

    /// Records one finished iteration/cycle as a `train.iteration` span
    /// with its comp/comm/stall breakdown. BSP iterations are fleet-wide
    /// (`lane: None`, nested in `train.run`); ASP cycles overlap across
    /// workers and go to per-worker lane tracks (`lane: Some(j)`).
    pub fn iteration(run: u64, lane: Option<usize>, start: f64, end: f64, comp: f64, comm: f64) {
        if run == 0 || !cynthia_obs::span_recording() {
            return;
        }
        let track = match lane {
            None => train_track(run),
            Some(j) => format!("train#{run}/w{j}"),
        };
        let stall = ((end - start) - comp - comm).max(0.0);
        tracer().complete(
            &track,
            "train.iteration",
            start,
            end,
            &[
                ("comp_secs", comp),
                ("comm_secs", comm),
                ("stall_secs", stall),
            ],
        );
    }

    /// Records a checkpoint rollback at virtual time `at`.
    pub fn rollback(run: u64, at: f64, lost_updates: u64) {
        if !cynthia_obs::enabled() {
            return;
        }
        rollbacks().inc();
        if run != 0 && cynthia_obs::span_recording() {
            tracer().complete(
                &recovery_track(run),
                "recover.rollback",
                at,
                at,
                &[("lost_updates", lost_updates as f64)],
            );
        }
    }

    /// Records a finished checkpoint restore for worker `j`. Restores of
    /// different workers overlap (a fleet-wide resume restores everyone at
    /// once), so each goes to its worker's recovery lane.
    pub fn restore(run: u64, start: f64, end: f64, j: usize) {
        if !cynthia_obs::enabled() {
            return;
        }
        restores().inc();
        restore_hist().observe(end - start);
        if run != 0 && cynthia_obs::span_recording() {
            tracer().complete(
                &format!("recovery#{run}/w{j}"),
                "recover.restore",
                start,
                end,
                &[("worker", j as f64)],
            );
        }
    }

    /// Bulk-records a completed run's totals and per-iteration samples.
    pub fn record_run(t: &RunTotals<'_>) {
        if !cynthia_obs::enabled() {
            return;
        }
        runs().inc();
        updates().add(t.updates);
        lost().add(t.lost_updates);
        replayed().add(t.replayed_updates);
        revocations().add(t.revocations as u64);
        repairs().add(t.repairs as u64);
        retries().add(t.retries as u64);
        failovers().add(t.failovers as u64);
        downtime().add(t.downtime_secs);
        degraded().add(t.degraded_secs);
        let mut iter_sum = 0.0;
        for &v in t.iter_samples {
            iter_hist().observe(v);
            iter_sum += v;
        }
        let mut comp_sum = 0.0;
        for &v in t.comp_samples {
            comp_hist().observe(v);
            comp_sum += v;
        }
        let mut comm_sum = 0.0;
        for &v in t.comm_samples {
            comm_hist().observe(v);
            comm_sum += v;
        }
        comp_total().add(comp_sum);
        comm_total().add(comm_sum);
        stall_total().add((iter_sum - comp_sum - comm_sum).max(0.0));
    }
}

#[cfg(feature = "obs")]
pub use real::*;

/// No-op hook bodies compiled when the `obs` feature is off.
#[cfg(not(feature = "obs"))]
mod stub {
    use super::RunTotals;

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn run_begin(_t0: f64) -> u64 {
        0
    }

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn run_end(_run: u64, _t1: f64, _updates: u64) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn iteration(
        _run: u64,
        _lane: Option<usize>,
        _start: f64,
        _end: f64,
        _comp: f64,
        _comm: f64,
    ) {
    }

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn rollback(_run: u64, _at: f64, _lost_updates: u64) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn restore(_run: u64, _start: f64, _end: f64, _j: usize) {}

    /// No-op: instrumentation is compiled out.
    #[inline(always)]
    pub fn record_run(_t: &RunTotals<'_>) {}
}

#[cfg(not(feature = "obs"))]
pub use stub::*;
