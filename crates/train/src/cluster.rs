//! Simulated training cluster shapes.

use cynthia_cloud::instance::InstanceType;
use serde::{Deserialize, Serialize};

/// The machines a training job runs on: one worker pod per entry of
/// `workers` (pinned to a single core of its instance type) and one PS pod
/// per entry of `ps` (owning the whole node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub workers: Vec<InstanceType>,
    pub ps: Vec<InstanceType>,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n_workers` workers and `n_ps` PS nodes,
    /// all of the same type — the shape Cynthia provisions (Sec. 4).
    pub fn homogeneous(ty: &InstanceType, n_workers: u32, n_ps: u32) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        assert!(n_ps > 0, "need at least one PS");
        ClusterSpec {
            workers: vec![ty.clone(); n_workers as usize],
            ps: vec![ty.clone(); n_ps as usize],
        }
    }

    /// The paper's heterogeneous shape (Figs. 1 and 9): `⌈n/2⌉` fast
    /// workers plus `⌊n/2⌋` stragglers, PS nodes on the fast type.
    pub fn heterogeneous(fast: &InstanceType, straggler: &InstanceType, n: u32, n_ps: u32) -> Self {
        assert!(n > 0, "need at least one worker");
        assert!(n_ps > 0, "need at least one PS");
        let n_fast = n.div_ceil(2);
        let n_slow = n / 2;
        let mut workers = vec![fast.clone(); n_fast as usize];
        workers.extend(std::iter::repeat_with(|| straggler.clone()).take(n_slow as usize));
        ClusterSpec {
            workers,
            ps: vec![fast.clone(); n_ps as usize],
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> u32 {
        self.workers.len() as u32
    }

    /// Number of PS nodes.
    pub fn n_ps(&self) -> u32 {
        self.ps.len() as u32
    }

    /// Worker compute capabilities, GFLOPS per worker pod (one core each).
    pub fn worker_gflops(&self) -> Vec<f64> {
        self.workers.iter().map(|t| t.core_gflops).collect()
    }

    /// The slowest worker's capability (paces BSP, Eq. 4).
    pub fn min_worker_gflops(&self) -> f64 {
        self.worker_gflops()
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// True if every worker is the same instance type.
    pub fn is_homogeneous(&self) -> bool {
        self.workers.windows(2).all(|w| w[0].name == w[1].name)
    }

    /// Indices of workers of the given type name (used to report per-type
    /// utilization, Table 2's "worker (m4)" column).
    pub fn workers_of_type(&self, name: &str) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;

    #[test]
    fn homogeneous_shape() {
        let cat = default_catalog();
        let c = ClusterSpec::homogeneous(cat.expect("m4.xlarge"), 4, 2);
        assert_eq!(c.n_workers(), 4);
        assert_eq!(c.n_ps(), 2);
        assert!(c.is_homogeneous());
        assert_eq!(c.min_worker_gflops(), 0.90);
    }

    #[test]
    fn heterogeneous_splits_per_the_paper() {
        let cat = default_catalog();
        let m4 = cat.expect("m4.xlarge");
        let m1 = cat.expect("m1.xlarge");
        // n = 7 -> 4 m4 + 3 m1.
        let c = ClusterSpec::heterogeneous(m4, m1, 7, 1);
        assert_eq!(c.workers_of_type("m4.xlarge").len(), 4);
        assert_eq!(c.workers_of_type("m1.xlarge").len(), 3);
        assert!(!c.is_homogeneous());
        assert_eq!(c.min_worker_gflops(), 0.50);
        // PS stays on the fast type.
        assert_eq!(c.ps[0].name, "m4.xlarge");
    }

    #[test]
    fn heterogeneous_with_one_worker_has_no_straggler() {
        let cat = default_catalog();
        let c = ClusterSpec::heterogeneous(cat.expect("m4.xlarge"), cat.expect("m1.xlarge"), 1, 1);
        assert_eq!(c.n_workers(), 1);
        assert!(c.is_homogeneous());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let cat = default_catalog();
        ClusterSpec::homogeneous(cat.expect("m4.xlarge"), 0, 1);
    }
}
