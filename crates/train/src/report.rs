//! Training run reports: everything the paper's evaluation measures.

use cynthia_models::SyncMode;
use cynthia_sim::metrics::Stats;
use serde::{Deserialize, Serialize};

/// The observable outcome of one simulated training run. Field-by-field
/// mapping to the paper's artifacts:
///
/// * `total_time` — Figs. 1, 6, 8–13 (training time).
/// * `worker_cpu_util` / `ps_cpu_util` — Table 2.
/// * `ps_nic_series` — Figs. 2 and 7 (PS network throughput over time).
/// * `total_comp_time` / `total_comm_time` — Fig. 3 (breakdown).
/// * `loss_curve` — Fig. 4.
/// * `staleness` — the ASP mechanism behind Eq. (1)'s √n factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Workload id, e.g. `"mnist DNN/BSP"`.
    pub workload: String,
    pub sync: SyncMode,
    pub n_workers: u32,
    pub n_ps: u32,
    /// Target global updates (Table 1's #iterations).
    pub iterations: u64,
    /// Wall-clock training time, seconds (extrapolated if `extrapolated`).
    pub total_time: f64,
    /// Global updates simulated in full detail.
    pub simulated_iterations: u64,
    /// Virtual time covered by detailed simulation.
    pub simulated_time: f64,
    /// Whether the tail was extrapolated from the steady-state window.
    pub extrapolated: bool,
    /// Per-iteration wall time over the measured window.
    pub iter_time: Stats,
    /// Per-iteration compute time (slowest worker for BSP; committing
    /// worker for ASP).
    pub comp_time: Stats,
    /// Per-iteration communication time (union of intervals with any
    /// in-flight push/apply/pull belonging to the iteration).
    pub comm_time: Stats,
    /// `comp_time.mean × iterations` — Fig. 3's "computation time" curve.
    pub total_comp_time: f64,
    /// `comm_time.mean × iterations` — Fig. 3's "communication time".
    pub total_comm_time: f64,
    /// Average CPU utilization per worker over the simulated window.
    pub worker_cpu_util: Vec<f64>,
    /// Average CPU utilization per PS node.
    pub ps_cpu_util: Vec<f64>,
    /// Mean NIC throughput per PS node, MB/s, over the simulated window.
    pub ps_nic_mean_mbps: Vec<f64>,
    /// Bucketed NIC throughput series per PS node: `(time, MB/s)`.
    pub ps_nic_series: Vec<Vec<(f64, f64)>>,
    /// `(global update count, loss)` samples.
    pub loss_curve: Vec<(u64, f64)>,
    /// Loss at the end of training.
    pub final_loss: f64,
    /// ASP parameter staleness (in missed updates); all-zero for BSP.
    pub staleness: Stats,
    /// Worker revocations that actually disrupted the run (spot reclaims
    /// injected via `simulate_disrupted`).
    #[serde(default)]
    pub revocations: u32,
    /// Repairs completed: replacement workers that finished their
    /// checkpoint restore and re-joined the computation.
    #[serde(default)]
    pub repairs: u32,
    /// Wall-clock seconds the whole fleet was paused by a PS outage
    /// (crash to recovery, including failover/reboot latency).
    #[serde(default)]
    pub downtime_secs: f64,
    /// Wall-clock seconds (outside downtime) spent with at least one
    /// active impairment: a straggler episode, a degraded link, a PS
    /// stall, or a worker absent/restoring after a crash.
    #[serde(default)]
    pub degraded_secs: f64,
    /// Committed updates rolled back by PS crashes (lost to the last
    /// checkpoint and re-executed).
    #[serde(default)]
    pub lost_updates: u64,
    /// Updates re-committed while climbing back to the pre-rollback
    /// high-water mark. Equals `lost_updates` in a completed run, so
    /// `simulated_iterations + (lost − replayed)` is conserved.
    #[serde(default)]
    pub replayed_updates: u64,
    /// Policy-driven worker restart attempts (retry-budget consumption).
    #[serde(default)]
    pub retries: u32,
    /// PS crash recoveries: chunk failovers onto surviving servers, or
    /// checkpoint reboots when no failover capacity exists.
    #[serde(default)]
    pub failovers: u32,
    /// `(virtual time, committed updates)` trajectory samples, including a
    /// marker at every checkpoint rollback — what the SLO guard projects
    /// deadline feasibility from.
    #[serde(default)]
    pub progress_curve: Vec<(f64, u64)>,
}

impl TrainingReport {
    /// Average worker CPU utilization across all workers.
    pub fn mean_worker_util(&self) -> f64 {
        if self.worker_cpu_util.is_empty() {
            0.0
        } else {
            self.worker_cpu_util.iter().sum::<f64>() / self.worker_cpu_util.len() as f64
        }
    }

    /// Average worker CPU utilization over a subset of workers (e.g. only
    /// the m4 workers of a heterogeneous cluster, as Table 2 reports).
    pub fn mean_worker_util_of(&self, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        indices
            .iter()
            .map(|i| self.worker_cpu_util[*i])
            .sum::<f64>()
            / indices.len() as f64
    }

    /// Average PS CPU utilization across PS nodes.
    pub fn mean_ps_util(&self) -> f64 {
        if self.ps_cpu_util.is_empty() {
            0.0
        } else {
            self.ps_cpu_util.iter().sum::<f64>() / self.ps_cpu_util.len() as f64
        }
    }

    /// Aggregate mean PS NIC throughput (summed across PS nodes), MB/s.
    pub fn total_ps_nic_mbps(&self) -> f64 {
        self.ps_nic_mean_mbps.iter().sum()
    }

    /// Loss value closest to the requested update count.
    pub fn loss_at(&self, updates: u64) -> Option<f64> {
        self.loss_curve
            .iter()
            .min_by_key(|(s, _)| s.abs_diff(updates))
            .map(|(_, l)| *l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub() -> TrainingReport {
        TrainingReport {
            workload: "stub".into(),
            sync: SyncMode::Bsp,
            n_workers: 2,
            n_ps: 1,
            iterations: 100,
            total_time: 10.0,
            simulated_iterations: 100,
            simulated_time: 10.0,
            extrapolated: false,
            iter_time: Stats::of(&[0.1]),
            comp_time: Stats::of(&[0.08]),
            comm_time: Stats::of(&[0.05]),
            total_comp_time: 8.0,
            total_comm_time: 5.0,
            worker_cpu_util: vec![0.8, 0.6],
            ps_cpu_util: vec![0.5],
            ps_nic_mean_mbps: vec![30.0, 20.0],
            ps_nic_series: vec![vec![(5.0, 30.0)]],
            loss_curve: vec![(1, 2.0), (50, 1.0), (100, 0.5)],
            final_loss: 0.5,
            staleness: Stats::of(&[]),
            revocations: 0,
            repairs: 0,
            downtime_secs: 0.0,
            degraded_secs: 0.0,
            lost_updates: 0,
            replayed_updates: 0,
            retries: 0,
            failovers: 0,
            progress_curve: Vec::new(),
        }
    }

    #[test]
    fn aggregates() {
        let r = stub();
        assert!((r.mean_worker_util() - 0.7).abs() < 1e-12);
        assert!((r.mean_worker_util_of(&[0]) - 0.8).abs() < 1e-12);
        assert!((r.mean_ps_util() - 0.5).abs() < 1e-12);
        assert!((r.total_ps_nic_mbps() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn loss_lookup_picks_nearest() {
        let r = stub();
        assert_eq!(r.loss_at(45), Some(1.0));
        assert_eq!(r.loss_at(100), Some(0.5));
        assert_eq!(r.loss_at(2), Some(2.0));
    }
}
