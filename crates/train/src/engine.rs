//! The discrete-event training engine.
//!
//! One engine handles both synchronization modes:
//!
//! **BSP** — parameters are sharded into `L` chunks assigned round-robin to
//! PS nodes. A worker computes iteration `i` in `L` segments; segment `l`
//! may start once the worker holds chunk `l` of parameter version `i`.
//! Finishing segment `l` immediately pushes that chunk's gradient (flow:
//! worker NIC → PS NIC), the PS ingests it (flow: PS CPU), and once all
//! `n` workers' chunk-`l` gradients are applied the PS broadcasts the new
//! chunk to every worker (flow: PS NIC → worker NIC). The worker meanwhile
//! continues with segment `l+1`: computation and communication overlap
//! mechanically, and the barrier is enforced by data availability, not by
//! an explicit synchronization primitive. Iteration `i` completes when all
//! of its gradients are applied (parameter version `i+1` exists on the PS).
//!
//! **ASP** — each worker runs an independent cycle: compute a full batch,
//! push all chunks, wait for its applies to commit, pull fresh parameters,
//! repeat. Training ends when the global commit count reaches the target.
//! The staleness of each commit (updates by other workers between this
//! worker's pull and its commit) is recorded.
//!
//! **Revocations** — [`simulate_disrupted`] additionally injects a schedule
//! of [`Disruption`]s (spot-instance revocations from the elastic layer).
//! When a worker is revoked its in-flight flows are cancelled and its
//! partial iteration is lost. BSP stalls at the barrier until the worker
//! is repaired; ASP degrades gracefully (the surviving workers keep
//! committing). A repaired worker pays a checkpoint-restore cost before
//! resuming: it re-pulls the full parameter set from the PS fleet. A
//! disruption without a rejoin time shrinks the fleet permanently — the
//! barrier re-forms over the survivors and the global batch is re-split
//! across them.
//!
//! **Faults & recovery** — [`simulate_faulted`] generalizes this to the
//! full `cynthia-faults` taxonomy: policy-driven worker crash restarts
//! (retry budget, exponential backoff), straggler slowdowns, degraded
//! links, transient PS stalls, and PS crashes that roll global progress
//! back to the last checkpoint — permanently-dead PS nodes fail their
//! parameter chunks over to the survivors. [`simulate_disrupted`] is a
//! thin wrapper over it (crash-with-replacement / permanent departure,
//! no recovery policy). See `docs/FAULTS.md` for the full semantics.

use crate::cluster::ClusterSpec;
use crate::config::SimConfig;
use crate::report::TrainingReport;
use crate::trace::{Activity, TraceRecorder};
use cynthia_faults::{FaultEvent, FaultKind, FaultPlan, LinkTarget, RecoveryPolicy};
use cynthia_models::{SyncMode, Workload};
use cynthia_sim::events::EventQueue;
use cynthia_sim::fluid::{FlowSpec, FluidSystem, ResourceId};
use cynthia_sim::metrics::{Stats, ThroughputRecorder};
use cynthia_sim::rng::Jitter;
use std::collections::HashMap;

/// A training job to simulate.
#[derive(Debug)]
pub struct TrainJob<'a> {
    pub workload: &'a Workload,
    pub cluster: ClusterSpec,
    pub config: SimConfig,
}

/// A revocation event injected into a training run: worker `worker` is
/// revoked at virtual time `at` and, if `rejoin_at` is set, a replacement
/// instance joins the cluster (and restores from the PS checkpoint) at that
/// time. `rejoin_at: None` removes the worker permanently (fleet shrink).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disruption {
    pub worker: usize,
    pub at: f64,
    pub rejoin_at: Option<f64>,
}

/// Runs the job to completion and reports every observable the paper
/// measures.
pub fn simulate(job: &TrainJob) -> TrainingReport {
    Engine::new(job).run().0
}

/// Like [`simulate`], with a schedule of worker revocations injected (see
/// the module docs). Disruptions may arrive in any order; events at the
/// same instant apply in schedule order.
///
/// # Panics
/// Panics if a disruption names a worker outside the cluster, rejoins
/// before it revokes, or if the config requests fast-forward extrapolation
/// (revocations break the steady-state assumption it relies on).
pub fn simulate_disrupted(job: &TrainJob, disruptions: &[Disruption]) -> TrainingReport {
    let n = job.cluster.workers.len();
    for d in disruptions {
        assert!(
            d.worker < n,
            "disruption names worker {} of {}",
            d.worker,
            n
        );
        assert!(d.at >= 0.0, "disruption at negative time");
        if let Some(r) = d.rejoin_at {
            assert!(
                r >= d.at,
                "worker {} rejoins before it is revoked",
                d.worker
            );
        }
    }
    // A revocation with a rejoin time is a worker crash whose replacement
    // the environment supplies after the outage; one without is a
    // permanent departure. No recovery policy applies: zero retry budget,
    // no PS failover, continuous checkpointing.
    let plan = FaultPlan::new(
        disruptions
            .iter()
            .map(|d| match d.rejoin_at {
                Some(r) => FaultEvent::transient(
                    FaultKind::WorkerCrash { worker: d.worker },
                    d.at,
                    r - d.at,
                ),
                None => {
                    FaultEvent::permanent(FaultKind::WorkerDeparture { worker: d.worker }, d.at)
                }
            })
            .collect(),
    );
    simulate_faulted(job, &plan, &RecoveryPolicy::none())
}

/// Like [`simulate`], with a [`FaultPlan`] injected and a [`RecoveryPolicy`]
/// governing how the cluster heals (see the module docs and
/// `docs/FAULTS.md`). An empty plan reproduces [`simulate`] bit-for-bit.
///
/// # Panics
/// Panics if the plan fails [`FaultPlan::validate`] against the cluster
/// shape, the policy fails [`RecoveryPolicy::validate`], or the config
/// requests fast-forward extrapolation alongside a non-empty plan (faults
/// break the steady-state assumption extrapolation relies on).
pub fn simulate_faulted(
    job: &TrainJob,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> TrainingReport {
    assert!(
        plan.is_empty() || job.config.fast_forward.is_none(),
        "fault plans require full-detail simulation (no fast_forward)"
    );
    plan.validate(job.cluster.workers.len(), job.cluster.ps.len())
        .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
    policy
        .validate()
        .unwrap_or_else(|e| panic!("invalid recovery policy: {e}"));
    let mut engine = Engine::new(job);
    engine.policy = *policy;
    engine.backoff_jitter = Jitter::new(
        job.config.seed,
        "restart-backoff",
        0,
        policy.backoff_jitter_cv,
    );
    engine.fault_plan = plan.events.clone();
    engine.will_depart = {
        let mut wd = vec![false; engine.n];
        for e in &plan.events {
            if let FaultKind::WorkerDeparture { worker } = e.kind {
                wd[worker] = true;
            }
        }
        wd
    };
    for (idx, e) in plan.events.iter().enumerate() {
        engine.queue.schedule_at(e.at, Ev::Fault { idx });
    }
    engine.run().0
}

/// Like [`simulate`], additionally recording an execution trace of up to
/// `max_spans` activity intervals (compute segments, pushes, applies,
/// pulls) for timeline inspection — export with
/// [`TraceRecorder::to_chrome_trace`].
pub fn simulate_traced(job: &TrainJob, max_spans: usize) -> (TrainingReport, TraceRecorder) {
    let mut engine = Engine::new(job);
    engine.trace = Some(TraceRecorder::new(max_spans));
    let (report, trace) = engine.run();
    (report, trace.expect("trace was enabled"))
}

// ---------------------------------------------------------------------
// Flow tags: kind(2) | worker(14) | chunk(8) | iter(40)

const KIND_PUSH: u64 = 0;
const KIND_APPLY: u64 = 1;
const KIND_PULL: u64 = 2;
/// Checkpoint restore: full parameter re-pull paid by a repaired worker.
const KIND_RESTORE: u64 = 3;

fn tag(kind: u64, worker: usize, chunk: usize, iter: u64) -> u64 {
    debug_assert!(worker < (1 << 14) && chunk < (1 << 8) && iter < (1 << 40));
    (kind << 62) | ((worker as u64) << 48) | ((chunk as u64) << 40) | iter
}

fn untag(t: u64) -> (u64, usize, usize, u64) {
    (
        t >> 62,
        ((t >> 48) & 0x3fff) as usize,
        ((t >> 40) & 0xff) as usize,
        t & 0xff_ffff_ffff,
    )
}

/// Queue events: compute-segment completions and fleet disruptions.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A worker finished a compute segment. `inc` is the worker
    /// incarnation the segment belongs to: a revocation bumps the
    /// incarnation, so segments of the lost instance are discarded when
    /// they fire.
    Seg { worker: usize, inc: u32 },
    /// A replacement instance for the worker slot joins the cluster
    /// (environment-supplied, or a policy-driven restart after backoff).
    Rejoin { worker: usize },
    /// Fault `idx` of the plan begins.
    Fault { idx: usize },
    /// Transient fault `idx` of the plan ends.
    FaultEnd { idx: usize },
    /// A permanently-crashed PS node's chunks finish failing over to the
    /// surviving servers.
    PsFailover { ps: usize },
    /// A crashed PS node finishes rebooting from the durable checkpoint.
    PsRecover { ps: usize },
}

/// What happens to a worker slot after its instance crashes.
#[derive(Debug, Clone, Copy)]
enum CrashOutcome {
    /// The environment supplies a replacement at the given time.
    RejoinAt(f64),
    /// Permanent departure: the fleet shrinks.
    Depart,
    /// The recovery policy decides: restart after backoff while the retry
    /// budget lasts, then retire the slot.
    Policy,
}

/// Per-iteration BSP barrier progress.
#[derive(Debug, Default, Clone)]
struct IterProgress {
    /// Per-chunk bitmask of workers whose gradient has been applied.
    /// Idempotent under the re-pushes a restored worker performs.
    applied: Vec<u128>,
    /// Whether the chunk's updated parameters have been broadcast.
    broadcast: Vec<bool>,
}

#[derive(Debug)]
struct WorkerState {
    /// BSP: iteration currently being computed. ASP: local cycle index.
    iter: u64,
    /// BSP: next segment to compute (0..L).
    seg: usize,
    computing: bool,
    done: bool,
    /// Instance revoked, replacement not yet joined.
    absent: bool,
    /// Permanently removed from the fleet (shrink repair).
    departed: bool,
    /// Rejoined and currently re-pulling the parameter checkpoint.
    restoring: bool,
    /// When the current restore's pulls were launched (observability only).
    restore_start: f64,
    /// Bumped on every revocation; stale compute events are discarded.
    inc: u32,
    /// BSP: parameter version available per chunk (segment `l` of
    /// iteration `i` requires `chunk_version[l] >= i`).
    chunk_version: Vec<u64>,
    /// Cumulative compute-busy seconds.
    compute_busy: f64,
    /// Compute time spent on the current iteration (folded into the
    /// per-iteration maximum when the iteration's compute finishes).
    cur_iter_comp: f64,
    jitter: Jitter,
    // --- ASP cycle bookkeeping ---
    pending_applies: usize,
    pending_pulls: usize,
    /// Global commit count last observed (at pull completion).
    v_seen: u64,
    cycle_start: f64,
    compute_end: f64,
}

struct Engine<'a> {
    w: &'a Workload,
    cluster: &'a ClusterSpec,
    cfg: &'a SimConfig,
    sync: SyncMode,
    n: usize,
    n_ps: usize,
    target: u64,
    /// Detailed-simulation horizon (min(target, warmup+measure)).
    horizon: u64,
    warmup: u64,

    chunk_mb: Vec<f64>,
    chunk_ps: Vec<usize>,
    /// Latest broadcast parameter version per chunk — the version a
    /// checkpoint restore hands a repaired worker.
    chunk_latest: Vec<u64>,

    queue: EventQueue<Ev>,
    fluid: FluidSystem,
    wk_nic: Vec<ResourceId>,
    ps_nic: Vec<ResourceId>,
    ps_cpu: Vec<ResourceId>,

    workers: Vec<WorkerState>,
    /// Bitmask of workers still in the fleet (departed workers cleared).
    active_mask: u128,
    /// Popcount of `active_mask`.
    n_active: usize,
    revocations: u32,
    repairs: u32,

    // --- fault injection & recovery ---
    policy: RecoveryPolicy,
    fault_plan: Vec<FaultEvent>,
    /// Workers with a scheduled permanent departure: retiring a slot on
    /// retry-budget exhaustion must always leave one worker that no
    /// pending departure can take, so the run terminates.
    will_depart: Vec<bool>,
    /// Active straggler episodes per worker: `(plan index, gFLOPS factor)`.
    /// The empty product is exactly 1.0, preserving fault-free timing.
    stragglers: Vec<Vec<(usize, f64)>>,
    /// Active link degradations per worker NIC / PS NIC.
    wk_nic_degs: Vec<Vec<(usize, f64)>>,
    ps_nic_degs: Vec<Vec<(usize, f64)>>,
    /// Base capacities (after configured interference) the degradation
    /// products apply to.
    wk_nic_base: Vec<f64>,
    ps_nic_base: Vec<f64>,
    ps_cpu_base: Vec<f64>,
    /// Concurrent outages per PS node (a reboot overlapping a reboot).
    ps_down: Vec<u32>,
    /// Permanently dead PS nodes (chunks failed over to survivors).
    ps_dead: Vec<bool>,
    /// Active transient stalls per PS node.
    ps_stall: Vec<u32>,
    /// Total PS outage tokens; the fleet is paused while this is nonzero.
    ps_down_count: u32,
    /// Active degradation faults (stragglers, links, stalls).
    deg_active: u32,
    /// Restart attempts consumed per worker slot.
    crash_attempts: Vec<u32>,
    backoff_jitter: Jitter,
    /// Highest progress ever committed (for replay accounting).
    hwm: u64,
    lost_updates: u64,
    replayed_updates: u64,
    retries: u32,
    failovers: u32,
    downtime_secs: f64,
    degraded_secs: f64,
    progress_curve: Vec<(f64, u64)>,
    progress_stride: u64,

    // BSP progress
    applied: HashMap<u64, IterProgress>,
    iterations_done: u64,
    last_completion: f64,
    warmup_time: f64,

    // ASP progress
    commits: u64,
    started: u64,

    // samples over the measured window
    iter_samples: Vec<f64>,
    comp_samples: Vec<f64>,
    comm_samples: Vec<f64>,
    staleness_samples: Vec<f64>,

    // per-iteration accounting
    comp_per_iter: HashMap<u64, f64>,
    comm_active: HashMap<u64, u32>,
    comm_accum: HashMap<u64, f64>,

    // resource metrics
    ps_cpu_busy: Vec<f64>,
    ps_nic_rec: Vec<ThroughputRecorder>,

    // loss generation
    loss_rng: Jitter,
    loss_stride: u64,
    loss_curve: Vec<(u64, f64)>,

    done_time: Option<f64>,
    total_time: f64,
    extrapolated: bool,

    // optional execution tracing
    trace: Option<TraceRecorder>,
    flow_starts: HashMap<u64, f64>,

    // running SSP staleness accumulator (drives the convergence penalty)
    ssp_stale_sum: f64,
    ssp_stale_count: u64,

    /// Span-track id from `obs::run_begin` (0 when spans are off);
    /// observability only, never read by the simulation.
    obs_run: u64,
}

impl<'a> Engine<'a> {
    fn new(job: &'a TrainJob<'a>) -> Self {
        let w = job.workload;
        let cluster = &job.cluster;
        let cfg = &job.config;
        let n = cluster.workers.len();
        let n_ps = cluster.ps.len();
        assert!(n > 0 && n_ps > 0, "degenerate cluster");
        assert!(n <= 128, "the engine tracks barrier membership in a u128");

        // Parameter shards: equal split (real PS implementations shard
        // large tensors across servers). Multi-PS clusters get at least
        // four shards per server so each PS's apply pipeline stays fed
        // across the BSP barrier (with one coarse shard per PS, servers
        // drain and idle between gradient waves — an artifact real
        // fine-grained sharding does not have; eight shards per PS keeps
        // multi-PS utilization at the fluid limit).
        let l = cfg.chunks.max(n_ps * 8).clamp(1, 32);
        let total_mb = w.param_mb();
        assert!(total_mb > 0.0, "model has no parameters to synchronize");
        let chunk_mb = vec![total_mb / l as f64; l];
        let chunk_ps: Vec<usize> = (0..l).map(|c| c % n_ps).collect();

        let mut fluid = FluidSystem::new();
        let wk_nic_base: Vec<f64> = cluster.workers.iter().map(|t| t.nic_mbps).collect();
        let wk_nic: Vec<ResourceId> = wk_nic_base
            .iter()
            .enumerate()
            .map(|(j, cap)| fluid.add_resource(*cap, format!("wk{j}-nic")))
            .collect();
        assert!(
            (0.0..1.0).contains(&cfg.nic_interference),
            "nic_interference must be in [0, 1)"
        );
        let nic_scale = 1.0 - cfg.nic_interference;
        let ps_nic_base: Vec<f64> = cluster.ps.iter().map(|t| t.nic_mbps * nic_scale).collect();
        let ps_nic: Vec<ResourceId> = ps_nic_base
            .iter()
            .enumerate()
            .map(|(k, cap)| fluid.add_resource(*cap, format!("ps{k}-nic")))
            .collect();
        let ps_cpu_base: Vec<f64> = cluster.ps.iter().map(|t| t.node_gflops).collect();
        let ps_cpu: Vec<ResourceId> = ps_cpu_base
            .iter()
            .enumerate()
            .map(|(k, cap)| fluid.add_resource(*cap, format!("ps{k}-cpu")))
            .collect();

        let workers = (0..n)
            .map(|j| WorkerState {
                iter: 0,
                seg: 0,
                computing: false,
                done: false,
                absent: false,
                departed: false,
                restoring: false,
                restore_start: 0.0,
                inc: 0,
                chunk_version: vec![0; l],
                compute_busy: 0.0,
                cur_iter_comp: 0.0,
                jitter: Jitter::new(cfg.seed, "worker-compute", j as u64, cfg.jitter_cv),
                pending_applies: 0,
                pending_pulls: 0,
                v_seen: 0,
                cycle_start: 0.0,
                compute_end: 0.0,
            })
            .collect();

        let target = w.iterations;
        let (horizon, warmup) = match cfg.fast_forward {
            Some(ff) if ff.horizon() < target => (ff.horizon(), ff.warmup),
            _ => (target, 0),
        };

        Engine {
            w,
            cluster,
            cfg,
            sync: w.sync,
            n,
            n_ps,
            target,
            horizon,
            warmup,
            chunk_mb,
            chunk_ps,
            chunk_latest: vec![0; l],
            queue: EventQueue::new(),
            fluid,
            wk_nic,
            ps_nic,
            ps_cpu,
            workers,
            active_mask: if n == 128 {
                u128::MAX
            } else {
                (1u128 << n) - 1
            },
            n_active: n,
            revocations: 0,
            repairs: 0,
            policy: RecoveryPolicy::none(),
            fault_plan: Vec::new(),
            will_depart: vec![false; n],
            stragglers: vec![Vec::new(); n],
            wk_nic_degs: vec![Vec::new(); n],
            ps_nic_degs: vec![Vec::new(); n_ps],
            wk_nic_base,
            ps_nic_base,
            ps_cpu_base,
            ps_down: vec![0; n_ps],
            ps_dead: vec![false; n_ps],
            ps_stall: vec![0; n_ps],
            ps_down_count: 0,
            deg_active: 0,
            crash_attempts: vec![0; n],
            backoff_jitter: Jitter::new(cfg.seed, "restart-backoff", 0, 0.0),
            hwm: 0,
            lost_updates: 0,
            replayed_updates: 0,
            retries: 0,
            failovers: 0,
            downtime_secs: 0.0,
            degraded_secs: 0.0,
            progress_curve: Vec::new(),
            progress_stride: (target / 256).max(1),
            applied: HashMap::new(),
            iterations_done: 0,
            last_completion: 0.0,
            warmup_time: 0.0,
            commits: 0,
            started: 0,
            iter_samples: Vec::new(),
            comp_samples: Vec::new(),
            comm_samples: Vec::new(),
            staleness_samples: Vec::new(),
            comp_per_iter: HashMap::new(),
            comm_active: HashMap::new(),
            comm_accum: HashMap::new(),
            ps_cpu_busy: vec![0.0; n_ps],
            ps_nic_rec: vec![ThroughputRecorder::new(); n_ps],
            loss_rng: Jitter::new(cfg.seed, "loss-noise", n as u64, w.convergence.noise_sd),
            loss_stride: (target / cfg.loss_samples.max(1) as u64).max(1),
            loss_curve: Vec::new(),
            done_time: None,
            total_time: 0.0,
            extrapolated: false,
            trace: None,
            flow_starts: HashMap::new(),
            ssp_stale_sum: 0.0,
            ssp_stale_count: 0,
            obs_run: 0,
        }
    }

    /// Starts a flow, recording its start time when tracing is enabled.
    fn launch_flow(&mut self, links: Vec<ResourceId>, volume: f64, t: u64) {
        if self.trace.is_some() {
            self.flow_starts.insert(t, self.queue.now());
        }
        self.fluid.start_flow(FlowSpec::new(links, volume, t));
    }

    /// Records a completed flow span when tracing is enabled.
    fn trace_flow_done(&mut self, t: u64) {
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        let Some(start) = self.flow_starts.remove(&t) else {
            return;
        };
        let (kind, j, l, iter) = untag(t);
        let (lane, activity) = match kind {
            KIND_PUSH => (format!("worker-{j}"), Activity::Push),
            KIND_APPLY => (format!("ps-{}", self.chunk_ps[l]), Activity::Apply),
            _ => (format!("worker-{j}"), Activity::Pull),
        };
        trace.record(lane, activity, iter, start, self.queue.now());
    }

    /// Records a compute span when tracing is enabled.
    fn trace_compute(&mut self, j: usize, iter: u64, start: f64, end: f64) {
        if let Some(trace) = self.trace.as_mut() {
            trace.record(format!("worker-{j}"), Activity::Compute, iter, start, end);
        }
    }

    /// Per-iteration compute work for one worker, GFLOP (Eq. 4's numerator
    /// split: BSP divides the global batch across the workers *currently in
    /// the fleet* — after a shrink the survivors re-split the global batch —
    /// ASP computes a full batch per worker-iteration).
    fn compute_gflops_per_worker(&self) -> f64 {
        match self.sync {
            SyncMode::Bsp => self.w.w_iter_gflops / self.n_active as f64,
            SyncMode::Asp => self.w.w_iter_gflops,
        }
    }

    fn worker_rate(&self, j: usize) -> f64 {
        self.cluster.workers[j].core_gflops
    }

    /// Product of active straggler factors on worker `j`. The empty product
    /// is exactly 1.0, so fault-free runs keep bit-identical timing.
    /// Applies to compute segments *started* while the episode is active.
    fn speed_factor(&self, j: usize) -> f64 {
        self.stragglers[j].iter().map(|(_, f)| *f).product()
    }

    // ------------------------------------------------------------------
    // Driving loop

    fn run(mut self) -> (TrainingReport, Option<TraceRecorder>) {
        self.obs_run = crate::obs::run_begin(self.queue.now());
        match self.sync {
            SyncMode::Bsp => {
                for j in 0..self.n {
                    self.try_start_segment(j);
                }
            }
            SyncMode::Asp => {
                for j in 0..self.n {
                    if self.started < self.target {
                        self.started += 1;
                        // Stagger first cycles across the compute period:
                        // real ASP workers desynchronize immediately (data
                        // loading, pod startup); without this, zero-jitter
                        // runs stay phase-locked and serialize all pushes —
                        // an artifact no real cluster exhibits.
                        let base = self.compute_gflops_per_worker() / self.worker_rate(j);
                        let stagger = base * j as f64 / self.n as f64;
                        self.start_asp_compute(j, stagger);
                    } else {
                        self.workers[j].done = true;
                    }
                }
            }
        }

        let mut guard: u64 = 0;
        while self.done_time.is_none() {
            guard += 1;
            assert!(
                guard < 500_000_000,
                "simulation exceeded event budget (suspected livelock)"
            );
            let now = self.queue.now();
            let tq = self.queue.peek_time();
            let fc = self.fluid.next_completion();
            match (tq, fc) {
                (None, None) => panic!(
                    "simulation stalled at t={now}: {} iterations of {} done",
                    self.progress(),
                    self.target
                ),
                (Some(tq), fc) => {
                    let fluid_first = match fc {
                        Some((_, dt)) => now + dt < tq - cynthia_sim::EPS,
                        None => false,
                    };
                    if fluid_first {
                        let dt = fc.unwrap().1;
                        self.step_fluid(dt);
                    } else {
                        let dt = tq - now;
                        self.accrue(dt);
                        let done = self.fluid.advance(dt);
                        self.queue.advance_to(tq);
                        for (_, t) in done {
                            self.on_flow_done(t);
                        }
                        if let Some((_, ev)) = self.queue.pop() {
                            self.on_event(ev);
                        }
                    }
                }
                (None, Some((_, dt))) => {
                    self.step_fluid(dt);
                }
            }
        }
        let end = self.done_time.unwrap_or_else(|| self.queue.now());
        crate::obs::run_end(self.obs_run, end, self.progress());
        let trace = self.trace.take();
        (self.finish(), trace)
    }

    fn progress(&self) -> u64 {
        match self.sync {
            SyncMode::Bsp => self.iterations_done,
            SyncMode::Asp => self.commits,
        }
    }

    fn step_fluid(&mut self, dt: f64) {
        self.accrue(dt);
        let now = self.queue.now();
        let done = self.fluid.advance(dt);
        self.queue.advance_to(now + dt);
        for (_, t) in done {
            self.on_flow_done(t);
        }
    }

    /// Integrates resource metrics and communication-union accounting over
    /// a `dt` slice with constant rates.
    fn accrue(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let t_end = self.queue.now() + dt;
        for k in 0..self.n_ps {
            let cap = self.fluid.capacity(self.ps_cpu[k]);
            let cpu_rate = self.fluid.total_rate_on(self.ps_cpu[k]);
            if cap > 0.0 {
                self.ps_cpu_busy[k] += (cpu_rate / cap).min(1.0) * dt;
            }
            let nic_rate = self.fluid.total_rate_on(self.ps_nic[k]);
            if nic_rate > 0.0 {
                self.ps_nic_rec[k].record_interval(t_end, dt, nic_rate * dt);
            }
        }
        for (iter, count) in self.comm_active.iter() {
            if *count > 0 {
                *self.comm_accum.entry(*iter).or_insert(0.0) += dt;
            }
        }
        // Fault-state accounting: full-fleet pauses (PS outages) count as
        // downtime; any other active impairment counts as degraded time.
        if self.ps_down_count > 0 {
            self.downtime_secs += dt;
        } else if self.deg_active > 0
            || self
                .workers
                .iter()
                .any(|w| !w.departed && (w.absent || w.restoring))
        {
            self.degraded_secs += dt;
        }
    }

    fn comm_begin(&mut self, iter: u64) {
        *self.comm_active.entry(iter).or_insert(0) += 1;
    }

    fn comm_end(&mut self, iter: u64) {
        // A rollback clears the accounting wholesale; a straggling flow of
        // the old epoch must not underflow it.
        if let Some(c) = self.comm_active.get_mut(&iter) {
            *c -= 1;
            if *c == 0 {
                self.comm_active.remove(&iter);
            }
        }
    }

    // ------------------------------------------------------------------
    // BSP mechanics

    fn try_start_segment(&mut self, j: usize) {
        let l = self.workers[j].seg;
        let needed_version = self.workers[j].iter;
        if self.workers[j].absent || self.workers[j].restoring || self.ps_down_count > 0 {
            return;
        }
        if self.workers[j].done
            || self.workers[j].computing
            || needed_version >= self.horizon && self.sync == SyncMode::Bsp && l == 0
        {
            // A worker whose next iteration lies beyond the detailed
            // horizon idles; extrapolation covers the rest.
            if needed_version >= self.horizon && l == 0 {
                self.workers[j].done = true;
            }
            return;
        }
        let slack = self.cfg.ssp_slack as u64;
        if self.workers[j].chunk_version[l] + slack < needed_version {
            return; // blocked on a pull (strict barrier when slack = 0)
        }
        if slack > 0 && l == 0 {
            // Parameter staleness this iteration computes against
            // (bounded by the slack; strict BSP does not record).
            let stale = needed_version.saturating_sub(self.workers[j].chunk_version[0]);
            self.ssp_stale_sum += stale as f64;
            self.ssp_stale_count += 1;
            if self.progress() >= self.warmup {
                self.staleness_samples.push(stale as f64);
            }
        }
        let chunks = self.chunk_mb.len() as f64;
        let base = self.compute_gflops_per_worker()
            / (self.worker_rate(j) * self.speed_factor(j))
            / chunks;
        let dur = self.workers[j].jitter.perturb(base).max(1e-12);
        self.workers[j].computing = true;
        self.workers[j].compute_busy += dur;
        self.workers[j].cur_iter_comp += dur;
        let now = self.queue.now();
        self.trace_compute(j, needed_version, now, now + dur);
        let inc = self.workers[j].inc;
        self.queue.schedule_after(dur, Ev::Seg { worker: j, inc });
    }

    fn on_event(&mut self, ev: Ev) {
        match ev {
            Ev::Seg { worker, inc } => {
                // A segment of a revoked incarnation: the work is lost.
                if self.workers[worker].inc != inc {
                    return;
                }
                match self.sync {
                    SyncMode::Bsp => self.on_bsp_seg_done(worker),
                    SyncMode::Asp => self.on_asp_compute_done(worker),
                }
            }
            Ev::Rejoin { worker } => self.on_rejoin(worker),
            Ev::Fault { idx } => self.on_fault(idx),
            Ev::FaultEnd { idx } => self.on_fault_end(idx),
            Ev::PsFailover { ps } => self.on_ps_failover(ps),
            Ev::PsRecover { ps } => self.on_ps_recovered(ps),
        }
    }

    fn on_bsp_seg_done(&mut self, j: usize) {
        let (iter, l) = {
            let w = &mut self.workers[j];
            w.computing = false;
            let out = (w.iter, w.seg);
            w.seg += 1;
            if w.seg == self.chunk_mb.len() {
                // Iteration's compute finished: fold the per-iteration
                // compute sample (slowest worker wins).
                let comp = w.cur_iter_comp;
                w.cur_iter_comp = 0.0;
                w.seg = 0;
                w.iter += 1;
                let e = self.comp_per_iter.entry(out.0).or_insert(0.0);
                *e = e.max(comp);
            }
            out
        };
        // Push this chunk's gradient.
        self.comm_begin(iter);
        let k = self.chunk_ps[l];
        self.launch_flow(
            vec![self.wk_nic[j], self.ps_nic[k]],
            self.chunk_mb[l],
            tag(KIND_PUSH, j, l, iter),
        );
        self.try_start_segment(j);
    }

    fn on_flow_done(&mut self, t: u64) {
        self.trace_flow_done(t);
        let (kind, j, l, iter) = untag(t);
        match (self.sync, kind) {
            (SyncMode::Bsp, KIND_PUSH) => {
                // Gradient arrived: PS ingests/applies it (CPU work).
                let k = self.chunk_ps[l];
                let work = self.w.ps_apply_gflops_per_mb * self.chunk_mb[l];
                self.launch_flow(vec![self.ps_cpu[k]], work, tag(KIND_APPLY, j, l, iter));
            }
            (SyncMode::Bsp, KIND_APPLY) => {
                self.comm_end(iter);
                let l_total = self.chunk_mb.len();
                let mask = self.active_mask;
                let prog = self.applied.entry(iter).or_insert_with(|| IterProgress {
                    applied: vec![0; l_total],
                    broadcast: vec![false; l_total],
                });
                // Idempotent: a restored worker re-pushes chunks it already
                // delivered before the revocation.
                prog.applied[l] |= 1u128 << j;
                let chunk_complete = !prog.broadcast[l] && (prog.applied[l] & mask) == mask;
                if chunk_complete {
                    prog.broadcast[l] = true;
                }
                let iter_complete = prog.broadcast.iter().all(|b| *b);
                if chunk_complete {
                    // Broadcast parameter version iter+1, chunk l.
                    self.broadcast_chunk(iter, l);
                }
                if iter_complete {
                    self.applied.remove(&iter);
                    self.on_bsp_iteration_complete(iter);
                }
            }
            (SyncMode::Bsp, KIND_PULL) => {
                self.comm_end(iter);
                let v = &mut self.workers[j].chunk_version[l];
                *v = (*v).max(iter + 1);
                self.try_start_segment(j);
            }
            (SyncMode::Asp, KIND_PUSH) => {
                let k = self.chunk_ps[l];
                let work = self.w.ps_apply_gflops_per_mb * self.chunk_mb[l];
                self.launch_flow(vec![self.ps_cpu[k]], work, tag(KIND_APPLY, j, l, iter));
            }
            (SyncMode::Asp, KIND_APPLY) => {
                // Guarded: a rollback zeroes the counter while a stale
                // flow of the old epoch may still complete.
                let w = &mut self.workers[j];
                if w.pending_applies > 0 {
                    w.pending_applies -= 1;
                    if w.pending_applies == 0 {
                        self.on_asp_commit(j);
                    }
                }
            }
            (SyncMode::Asp, KIND_PULL) => {
                let w = &mut self.workers[j];
                if w.pending_pulls > 0 {
                    w.pending_pulls -= 1;
                    if w.pending_pulls == 0 {
                        self.on_asp_pulled(j);
                    }
                }
            }
            (_, KIND_RESTORE) => {
                let w = &mut self.workers[j];
                if w.restoring && w.pending_pulls > 0 {
                    w.pending_pulls -= 1;
                    if w.pending_pulls == 0 {
                        self.on_restored(j);
                    }
                }
            }
            _ => {} // unknown kind: drop rather than crash the run
        }
    }

    /// Ships the freshly-updated chunk `l` of parameter version `iter + 1`
    /// to every worker currently in the cluster.
    fn broadcast_chunk(&mut self, iter: u64, l: usize) {
        self.chunk_latest[l] = self.chunk_latest[l].max(iter + 1);
        let k = self.chunk_ps[l];
        for dst in 0..self.n {
            if self.workers[dst].absent || self.workers[dst].departed {
                continue;
            }
            self.comm_begin(iter);
            self.launch_flow(
                vec![self.ps_nic[k], self.wk_nic[dst]],
                self.chunk_mb[l],
                tag(KIND_PULL, dst, l, iter),
            );
        }
    }

    fn on_bsp_iteration_complete(&mut self, iter: u64) {
        let now = self.queue.now();
        debug_assert_eq!(iter, self.iterations_done, "iterations complete in order");
        self.iterations_done += 1;
        let s = self.iterations_done;
        self.note_progress(s, now);

        if s == self.warmup {
            self.warmup_time = now;
        }
        if s > self.warmup {
            self.iter_samples.push(now - self.last_completion);
            let mut comp = 0.0;
            let mut comm = 0.0;
            if let Some(c) = self.comp_per_iter.remove(&iter) {
                self.comp_samples.push(c);
                comp = c;
            }
            if let Some(c) = self.comm_accum.remove(&iter) {
                self.comm_samples.push(c);
                comm = c;
            }
            crate::obs::iteration(self.obs_run, None, self.last_completion, now, comp, comm);
        } else {
            self.comp_per_iter.remove(&iter);
            self.comm_accum.remove(&iter);
        }
        self.last_completion = now;
        self.record_loss(s);

        if s >= self.horizon {
            if self.horizon < self.target {
                let measured = (now - self.warmup_time) / (self.horizon - self.warmup) as f64;
                self.total_time = now + (self.target - self.horizon) as f64 * measured;
                self.extrapolated = true;
                self.fill_extrapolated_loss();
            } else {
                self.total_time = now;
            }
            self.done_time = Some(now);
        }
    }

    // ------------------------------------------------------------------
    // Fleet disruptions (spot revocations, repairs, shrinks)

    /// A worker's instance is lost (spot reclaim, crash, or departure);
    /// `outcome` decides whether and how the slot comes back.
    fn crash_worker(&mut self, j: usize, outcome: CrashOutcome) {
        if self.done_time.is_some() {
            return;
        }
        let w = &self.workers[j];
        if w.absent || w.departed || w.done {
            // Already lost, or already finished its share of the work:
            // revoking the instance no longer affects the computation.
            return;
        }
        self.revocations += 1;
        let was_computing = self.workers[j].computing;
        {
            let w = &mut self.workers[j];
            // Stale compute events of the lost instance are discarded when
            // they fire.
            w.inc += 1;
            w.computing = false;
            w.restoring = false;
            w.cur_iter_comp = 0.0;
        }
        if self.sync == SyncMode::Asp {
            let w = &mut self.workers[j];
            if was_computing || w.pending_applies > 0 {
                // The started-but-uncommitted cycle is lost; hand it back
                // so the update target stays reachable.
                self.started -= 1;
            }
            w.pending_applies = 0;
            w.pending_pulls = 0;
        } else {
            self.workers[j].pending_pulls = 0;
        }
        // Cancel the worker's in-flight flows. Under BSP, gradients already
        // delivered to a PS keep applying (PS-side work survives the worker
        // and the barrier bits are idempotent), so KIND_APPLY flows are
        // spared even though they carry the worker id. Under ASP the whole
        // uncommitted cycle was handed back above, so its applies go too.
        let is_asp = self.sync == SyncMode::Asp;
        let cancelled = self.fluid.cancel_flows_where(|t| {
            let (kind, wj, _, _) = untag(t);
            wj == j && (is_asp || kind != KIND_APPLY)
        });
        for (t, _remaining) in cancelled {
            self.flow_starts.remove(&t);
            let (kind, _, _, iter) = untag(t);
            // BSP accounting: a push's comm interval normally closes at
            // apply completion, a broadcast's at pull completion; close
            // them here instead. Restores never opened one.
            if self.sync == SyncMode::Bsp && (kind == KIND_PUSH || kind == KIND_PULL) {
                self.comm_end(iter);
            }
        }
        match outcome {
            CrashOutcome::RejoinAt(r) => {
                self.workers[j].absent = true;
                self.queue.schedule_at(r, Ev::Rejoin { worker: j });
            }
            CrashOutcome::Depart => self.retire_worker(j),
            CrashOutcome::Policy => {
                let attempt = self.crash_attempts[j];
                // A slot may retire only while a worker with no pending
                // permanent departure survives it — otherwise the restart
                // is forced past the budget so the run always terminates.
                let safe_survivors = (0..self.n)
                    .filter(|&k| k != j && !self.workers[k].departed && !self.will_depart[k])
                    .count();
                if attempt >= self.policy.retry_budget && safe_survivors >= 1 {
                    self.retire_worker(j);
                } else {
                    self.crash_attempts[j] = attempt.saturating_add(1);
                    self.retries += 1;
                    let mut delay = self.policy.backoff_secs(attempt);
                    if self.policy.backoff_jitter_cv > 0.0 {
                        delay *= self.backoff_jitter.factor();
                    }
                    self.workers[j].absent = true;
                    self.queue
                        .schedule_after(delay.max(0.0), Ev::Rejoin { worker: j });
                }
            }
        }
    }

    /// Permanent shrink: the barrier re-forms over the survivors and the
    /// global batch is re-split across them.
    fn retire_worker(&mut self, j: usize) {
        let w = &mut self.workers[j];
        w.departed = true;
        w.done = true;
        self.active_mask &= !(1u128 << j);
        self.n_active -= 1;
        assert!(self.n_active > 0, "fleet shrunk to zero workers");
        match self.sync {
            SyncMode::Bsp => self.recheck_bsp_barrier(),
            SyncMode::Asp => self.restart_idle_asp_workers(),
        }
    }

    /// A replacement instance joins the cluster: the worker slot comes
    /// back, but must first restore the checkpoint — a full parameter
    /// re-pull from the PS fleet — before computing again.
    fn on_rejoin(&mut self, j: usize) {
        if self.done_time.is_some() || self.workers[j].departed || !self.workers[j].absent {
            return;
        }
        self.repairs += 1;
        self.workers[j].absent = false;
        if self.ps_down_count > 0 {
            // The PS fleet is down: nothing to restore from yet. The
            // fleet-wide restore at recovery picks this worker up.
            return;
        }
        self.begin_restore(j);
    }

    /// Launches the checkpoint-restore pulls (full parameter re-pull from
    /// the chunk owners) for a present, non-restoring worker.
    fn begin_restore(&mut self, j: usize) {
        let restore_uid = self.workers[j].inc as u64;
        let now = self.queue.now();
        {
            let w = &mut self.workers[j];
            w.restoring = true;
            w.restore_start = now;
            w.pending_pulls = self.chunk_mb.len();
        }
        for l in 0..self.chunk_mb.len() {
            let k = self.chunk_ps[l];
            self.launch_flow(
                vec![self.ps_nic[k], self.wk_nic[j]],
                self.chunk_mb[l],
                tag(KIND_RESTORE, j, l, restore_uid),
            );
        }
    }

    /// The checkpoint restore finished: the worker resumes from the
    /// freshest parameters the PS fleet holds.
    fn on_restored(&mut self, j: usize) {
        self.workers[j].restoring = false;
        crate::obs::restore(
            self.obs_run,
            self.workers[j].restore_start,
            self.queue.now(),
            j,
        );
        match self.sync {
            SyncMode::Bsp => {
                let iterations_done = self.iterations_done;
                let w = &mut self.workers[j];
                w.iter = iterations_done;
                w.seg = 0;
                w.cur_iter_comp = 0.0;
                w.done = false;
                for (l, v) in w.chunk_version.iter_mut().enumerate() {
                    *v = (*v).max(self.chunk_latest[l]);
                }
                self.try_start_segment(j);
            }
            SyncMode::Asp => {
                let commits = self.commits;
                let w = &mut self.workers[j];
                w.v_seen = commits;
                w.iter += 1;
                if self.started < self.target {
                    self.started += 1;
                    w.done = false;
                    self.start_asp_compute(j, 0.0);
                } else {
                    w.done = true;
                }
            }
        }
    }

    /// After a shrink, chunks the departed worker never delivered may now
    /// satisfy the (smaller) barrier: sweep outstanding iterations in
    /// ascending order and release any that completed.
    fn recheck_bsp_barrier(&mut self) {
        let mut iters: Vec<u64> = self.applied.keys().copied().collect();
        iters.sort_unstable();
        for iter in iters {
            let mask = self.active_mask;
            let newly: Vec<usize> = match self.applied.get_mut(&iter) {
                Some(prog) => (0..prog.broadcast.len())
                    .filter(|&l| !prog.broadcast[l] && (prog.applied[l] & mask) == mask)
                    .collect(),
                None => continue,
            };
            for &l in &newly {
                if let Some(prog) = self.applied.get_mut(&iter) {
                    prog.broadcast[l] = true;
                }
                self.broadcast_chunk(iter, l);
            }
            let complete = self
                .applied
                .get(&iter)
                .is_some_and(|p| p.broadcast.iter().all(|b| *b));
            if complete {
                self.applied.remove(&iter);
                self.on_bsp_iteration_complete(iter);
                if self.done_time.is_some() {
                    return;
                }
            }
        }
    }

    /// After an ASP shrink hands cycles back (`started` dropped), idle
    /// finished workers must pick them up or the run would stall.
    fn restart_idle_asp_workers(&mut self) {
        if self.ps_down_count > 0 {
            return; // the fleet-wide restore at recovery restarts them
        }
        for k in 0..self.n {
            if self.started >= self.target {
                return;
            }
            let w = &self.workers[k];
            if w.done && !w.departed && !w.absent && !w.restoring && !w.computing {
                self.workers[k].done = false;
                self.started += 1;
                self.start_asp_compute(k, 0.0);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & recovery (see docs/FAULTS.md)

    fn on_fault(&mut self, idx: usize) {
        if self.done_time.is_some() {
            return;
        }
        let e = self.fault_plan[idx];
        let now = self.queue.now();
        match e.kind {
            FaultKind::WorkerCrash { worker } => match e.duration {
                Some(d) => self.crash_worker(worker, CrashOutcome::RejoinAt(now + d)),
                None => self.crash_worker(worker, CrashOutcome::Policy),
            },
            FaultKind::WorkerDeparture { worker } => {
                self.crash_worker(worker, CrashOutcome::Depart)
            }
            FaultKind::PsCrash { ps } => self.on_ps_crash(idx, ps),
            FaultKind::Straggler { worker, factor } => {
                self.stragglers[worker].push((idx, factor));
                self.deg_active += 1;
                if let Some(d) = e.duration {
                    self.queue.schedule_at(now + d, Ev::FaultEnd { idx });
                }
            }
            FaultKind::LinkDegraded { link, factor } => {
                self.deg_active += 1;
                match link {
                    LinkTarget::Worker(j) => {
                        self.wk_nic_degs[j].push((idx, factor));
                        self.refresh_wk_nic(j);
                    }
                    LinkTarget::Ps(k) => {
                        self.ps_nic_degs[k].push((idx, factor));
                        self.refresh_ps(k);
                    }
                }
                if let Some(d) = e.duration {
                    self.queue.schedule_at(now + d, Ev::FaultEnd { idx });
                }
            }
            FaultKind::PsStall { ps } => {
                self.deg_active += 1;
                self.ps_stall[ps] += 1;
                self.refresh_ps(ps);
                if let Some(d) = e.duration {
                    self.queue.schedule_at(now + d, Ev::FaultEnd { idx });
                }
            }
        }
    }

    fn on_fault_end(&mut self, idx: usize) {
        if self.done_time.is_some() {
            return;
        }
        let e = self.fault_plan[idx];
        match e.kind {
            FaultKind::Straggler { worker, .. } => {
                // In-flight segments keep their start-time duration; only
                // newly started segments see the restored speed.
                self.stragglers[worker].retain(|(i, _)| *i != idx);
                self.deg_active = self.deg_active.saturating_sub(1);
            }
            FaultKind::LinkDegraded { link, .. } => {
                self.deg_active = self.deg_active.saturating_sub(1);
                match link {
                    LinkTarget::Worker(j) => {
                        self.wk_nic_degs[j].retain(|(i, _)| *i != idx);
                        self.refresh_wk_nic(j);
                    }
                    LinkTarget::Ps(k) => {
                        self.ps_nic_degs[k].retain(|(i, _)| *i != idx);
                        self.refresh_ps(k);
                    }
                }
            }
            FaultKind::PsStall { ps } => {
                self.deg_active = self.deg_active.saturating_sub(1);
                self.ps_stall[ps] = self.ps_stall[ps].saturating_sub(1);
                self.refresh_ps(ps);
            }
            // A transient PS crash's end is the reboot completing.
            FaultKind::PsCrash { ps } => self.on_ps_recovered(ps),
            _ => {}
        }
    }

    /// A PS node crashes: all parameter state since the last checkpoint is
    /// gone. Global progress rolls back, every in-flight flow dies, and the
    /// fleet pauses until the node reboots (transient) or its chunks fail
    /// over to the survivors (permanent).
    fn on_ps_crash(&mut self, idx: usize, ps: usize) {
        if self.ps_dead[ps] {
            return; // a dead node cannot crash again
        }
        let e = self.fault_plan[idx];
        let now = self.queue.now();
        self.failovers += 1;
        self.rollback_to_checkpoint();
        self.ps_down[ps] += 1;
        self.ps_down_count += 1;
        self.refresh_ps(ps);
        match e.duration {
            Some(d) => self.queue.schedule_at(now + d, Ev::FaultEnd { idx }),
            None => {
                let survivors = (0..self.n_ps)
                    .filter(|&k| k != ps && !self.ps_dead[k])
                    .count();
                if self.policy.ps_failover && survivors >= 1 {
                    self.ps_dead[ps] = true;
                    self.refresh_ps(ps);
                    self.queue
                        .schedule_after(self.policy.ps_failover_secs, Ev::PsFailover { ps });
                } else {
                    // No failover capacity: the node reboots from the
                    // durable checkpoint after the same latency.
                    self.queue
                        .schedule_after(self.policy.ps_failover_secs, Ev::PsRecover { ps });
                }
            }
        }
    }

    /// A crashed PS node is back (reboot finished). When it was the last
    /// outstanding outage the whole fleet restores and resumes.
    fn on_ps_recovered(&mut self, ps: usize) {
        if self.done_time.is_some() {
            return;
        }
        self.ps_down[ps] = self.ps_down[ps].saturating_sub(1);
        self.ps_down_count = self.ps_down_count.saturating_sub(1);
        self.refresh_ps(ps);
        if self.ps_down_count == 0 {
            self.resume_fleet();
        }
    }

    /// A permanently-dead PS node's chunks finish re-sharding round-robin
    /// onto the surviving servers — its share of parameter bandwidth moves
    /// with them. The node itself stays dead.
    fn on_ps_failover(&mut self, ps: usize) {
        if self.done_time.is_some() {
            return;
        }
        let survivors: Vec<usize> = (0..self.n_ps).filter(|&k| !self.ps_dead[k]).collect();
        if !survivors.is_empty() {
            let mut i = 0usize;
            for owner in self.chunk_ps.iter_mut() {
                if *owner == ps {
                    *owner = survivors[i % survivors.len()];
                    i += 1;
                }
            }
        }
        self.ps_down[ps] = self.ps_down[ps].saturating_sub(1);
        self.ps_down_count = self.ps_down_count.saturating_sub(1);
        if self.ps_down_count == 0 {
            self.resume_fleet();
        }
    }

    /// Rolls global progress back to the last checkpoint boundary: the
    /// rolled-back updates are *lost* (they will be *replayed*), every
    /// in-flight flow is cancelled, and all progress bookkeeping resets to
    /// the checkpoint.
    fn rollback_to_checkpoint(&mut self) {
        let now = self.queue.now();
        let progress = self.progress();
        let ckpt = self.policy.checkpoint_floor(progress);
        self.hwm = self.hwm.max(progress);
        self.lost_updates += progress - ckpt;
        crate::obs::rollback(self.obs_run, now, progress - ckpt);
        self.progress_curve.push((now, ckpt));

        // Everything in flight dies with the parameter state.
        self.fluid.cancel_flows_where(|_| true);
        self.flow_starts.clear();
        self.comm_active.clear();
        self.comm_accum.clear();
        self.comp_per_iter.clear();
        self.applied.clear();
        self.loss_curve.retain(|(s, _)| *s <= ckpt);
        match self.sync {
            SyncMode::Bsp => self.iterations_done = ckpt,
            SyncMode::Asp => {
                // In-flight cycles are lost; hand them back so the update
                // target stays reachable.
                self.commits = ckpt;
                self.started = ckpt;
            }
        }
        for v in self.chunk_latest.iter_mut() {
            *v = ckpt;
        }
        for j in 0..self.n {
            let w = &mut self.workers[j];
            if w.departed {
                continue;
            }
            w.inc += 1; // in-flight compute events are stale now
            w.computing = false;
            w.restoring = false;
            w.done = false;
            w.seg = 0;
            w.cur_iter_comp = 0.0;
            w.pending_applies = 0;
            w.pending_pulls = 0;
            w.iter = ckpt;
            w.v_seen = w.v_seen.min(ckpt);
            for v in w.chunk_version.iter_mut() {
                *v = (*v).min(ckpt);
            }
            // `absent` survives: the slot is still waiting for its
            // replacement/restart, which restores on arrival.
        }
    }

    /// The PS fleet is whole again: every present worker re-pulls the
    /// checkpoint (a full parameter restore) and resumes from it.
    fn resume_fleet(&mut self) {
        if self.done_time.is_some() {
            return;
        }
        self.last_completion = self.queue.now();
        for j in 0..self.n {
            let w = &self.workers[j];
            if w.departed || w.absent || w.restoring {
                continue;
            }
            self.begin_restore(j);
        }
    }

    fn refresh_wk_nic(&mut self, j: usize) {
        let f: f64 = self.wk_nic_degs[j].iter().map(|(_, x)| *x).product();
        self.fluid
            .set_capacity(self.wk_nic[j], self.wk_nic_base[j] * f)
            .expect("worker NIC belongs to this system");
    }

    /// Reapplies PS node `k`'s effective NIC/CPU capacities from its base
    /// capacity, active degradations, stalls, and down/dead state.
    fn refresh_ps(&mut self, k: usize) {
        let down = self.ps_down[k] > 0 || self.ps_dead[k];
        let f: f64 = self.ps_nic_degs[k].iter().map(|(_, x)| *x).product();
        let nic = if down { 0.0 } else { self.ps_nic_base[k] * f };
        let cpu = if down || self.ps_stall[k] > 0 {
            0.0
        } else {
            self.ps_cpu_base[k]
        };
        self.fluid
            .set_capacity(self.ps_nic[k], nic)
            .expect("PS NIC belongs to this system");
        self.fluid
            .set_capacity(self.ps_cpu[k], cpu)
            .expect("PS CPU belongs to this system");
    }

    /// Replay/high-water-mark accounting and progress-curve sampling on
    /// every committed update `s`.
    fn note_progress(&mut self, s: u64, now: f64) {
        if s <= self.hwm {
            self.replayed_updates += 1;
        } else {
            self.hwm = s;
        }
        if s.is_multiple_of(self.progress_stride) || s >= self.target {
            self.progress_curve.push((now, s));
        }
    }

    // ------------------------------------------------------------------
    // ASP mechanics

    /// Begins an ASP compute cycle after `extra_delay` seconds (used only
    /// to stagger initial cycles; the delay does not count as busy time).
    fn start_asp_compute(&mut self, j: usize, extra_delay: f64) {
        let base = self.compute_gflops_per_worker() / (self.worker_rate(j) * self.speed_factor(j));
        let dur = self.workers[j].jitter.perturb(base).max(1e-12);
        let now = self.queue.now();
        let iter = self.workers[j].iter;
        let w = &mut self.workers[j];
        w.computing = true;
        w.cycle_start = now + extra_delay;
        w.compute_busy += dur;
        w.cur_iter_comp = dur;
        self.trace_compute(j, iter, now + extra_delay, now + extra_delay + dur);
        let inc = self.workers[j].inc;
        self.queue
            .schedule_after(extra_delay + dur, Ev::Seg { worker: j, inc });
    }

    fn on_asp_compute_done(&mut self, j: usize) {
        let now = self.queue.now();
        let uid = self.asp_uid(j);
        {
            let w = &mut self.workers[j];
            w.computing = false;
            w.compute_end = now;
            w.pending_applies = self.chunk_mb.len();
        }
        for l in 0..self.chunk_mb.len() {
            let k = self.chunk_ps[l];
            self.launch_flow(
                vec![self.wk_nic[j], self.ps_nic[k]],
                self.chunk_mb[l],
                tag(KIND_PUSH, j, l, uid),
            );
        }
    }

    fn asp_uid(&self, j: usize) -> u64 {
        ((j as u64) << 26) | (self.workers[j].iter & 0x3ff_ffff)
    }

    fn on_asp_commit(&mut self, j: usize) {
        let now = self.queue.now();
        let staleness = (self.commits - self.workers[j].v_seen) as f64;
        self.commits += 1;
        let s = self.commits;
        self.note_progress(s, now);

        if s == self.warmup {
            self.warmup_time = now;
        }
        if s > self.warmup {
            let w = &self.workers[j];
            self.staleness_samples.push(staleness);
            self.comp_samples.push(w.cur_iter_comp);
            // Communication so far: push + apply (pull adds later; ASP's
            // cycle time sample uses commit-to-commit cadence instead).
            self.comm_samples.push(now - w.compute_end);
            self.iter_samples.push(now - w.cycle_start);
            crate::obs::iteration(
                self.obs_run,
                Some(j),
                w.cycle_start,
                now,
                w.cur_iter_comp,
                now - w.compute_end,
            );
        }
        self.record_loss(s);

        if s >= self.horizon {
            if self.horizon < self.target {
                let rate = (self.horizon - self.warmup) as f64 / (now - self.warmup_time);
                self.total_time = now + (self.target - self.horizon) as f64 / rate;
                self.extrapolated = true;
                self.fill_extrapolated_loss();
            } else {
                self.total_time = now;
            }
            self.done_time = Some(now);
            return;
        }

        // Refresh local parameters.
        let uid = self.asp_uid(j);
        self.workers[j].pending_pulls = self.chunk_mb.len();
        for l in 0..self.chunk_mb.len() {
            let k = self.chunk_ps[l];
            self.launch_flow(
                vec![self.ps_nic[k], self.wk_nic[j]],
                self.chunk_mb[l],
                tag(KIND_PULL, j, l, uid),
            );
        }
    }

    fn on_asp_pulled(&mut self, j: usize) {
        self.workers[j].v_seen = self.commits;
        self.workers[j].iter += 1;
        if self.started < self.target {
            self.started += 1;
            self.start_asp_compute(j, 0.0);
        } else {
            self.workers[j].done = true;
        }
    }

    // ------------------------------------------------------------------
    // Loss generation

    fn record_loss(&mut self, s: u64) {
        if s.is_multiple_of(self.loss_stride) || s == self.target || s == 1 {
            let loss = self.noisy_loss(s);
            self.loss_curve.push((s, loss));
        }
    }

    fn noisy_loss(&mut self, s: u64) -> f64 {
        let conv = &self.w.convergence;
        let expected = if self.sync == SyncMode::Bsp && self.cfg.ssp_slack > 0 && s > 0 {
            // Bounded staleness degrades convergence like √(1+τ̄) on the
            // *realized* mean staleness (the bound itself is rarely hit —
            // same reasoning as Eq. (1)'s ASP factor).
            let tau = if self.ssp_stale_count > 0 {
                self.ssp_stale_sum / self.ssp_stale_count as f64
            } else {
                0.0
            };
            (conv.beta0 * (1.0 + tau).sqrt() / s as f64 + conv.beta1).min(conv.initial_loss)
        } else {
            conv.expected_loss(self.sync, s, self.n as u32)
        };
        let floor = conv.beta1;
        floor + (expected - floor).max(0.0) * self.loss_rng.factor()
    }

    fn fill_extrapolated_loss(&mut self) {
        let mut s = self.progress();
        loop {
            s = (s + self.loss_stride).min(self.target);
            let loss = self.noisy_loss(s);
            self.loss_curve.push((s, loss));
            if s == self.target {
                break;
            }
        }
    }

    // ------------------------------------------------------------------

    fn finish(self) -> TrainingReport {
        let sim_time = self.done_time.expect("finish called before completion");
        let sim_time = sim_time.max(1e-12);
        crate::obs::record_run(&crate::obs::RunTotals {
            updates: self.progress(),
            iter_samples: &self.iter_samples,
            comp_samples: &self.comp_samples,
            comm_samples: &self.comm_samples,
            revocations: self.revocations,
            repairs: self.repairs,
            retries: self.retries,
            failovers: self.failovers,
            lost_updates: self.lost_updates,
            replayed_updates: self.replayed_updates,
            downtime_secs: self.downtime_secs,
            degraded_secs: self.degraded_secs,
        });
        let final_loss = self
            .loss_curve
            .last()
            .map(|(_, l)| *l)
            .unwrap_or(self.w.convergence.initial_loss);
        let worker_cpu_util: Vec<f64> = self
            .workers
            .iter()
            .map(|w| (w.compute_busy / sim_time).min(1.0))
            .collect();
        let ps_cpu_util: Vec<f64> = self
            .ps_cpu_busy
            .iter()
            .map(|b| (b / sim_time).min(1.0))
            .collect();
        let ps_nic_mean_mbps: Vec<f64> = self
            .ps_nic_rec
            .iter()
            .map(|r| r.mean_rate(sim_time))
            .collect();
        let window = self.cfg.throughput_window;
        let ps_nic_series: Vec<Vec<(f64, f64)>> = self
            .ps_nic_rec
            .iter()
            .map(|r| r.series(window, sim_time))
            .collect();

        let comp_time = Stats::of(&self.comp_samples);
        let comm_time = Stats::of(&self.comm_samples);
        let per_iter_scale = match self.sync {
            SyncMode::Bsp => self.target as f64,
            // ASP cycles run n-wide in parallel; per-update wall share.
            SyncMode::Asp => self.target as f64 / self.n as f64,
        };

        TrainingReport {
            workload: self.w.id(),
            sync: self.sync,
            n_workers: self.n as u32,
            n_ps: self.n_ps as u32,
            iterations: self.target,
            total_time: self.total_time,
            simulated_iterations: self.progress(),
            simulated_time: sim_time,
            extrapolated: self.extrapolated,
            iter_time: Stats::of(&self.iter_samples),
            comp_time,
            comm_time,
            total_comp_time: comp_time.mean * per_iter_scale,
            total_comm_time: comm_time.mean * per_iter_scale,
            worker_cpu_util,
            ps_cpu_util,
            ps_nic_mean_mbps,
            ps_nic_series,
            loss_curve: self.loss_curve,
            final_loss,
            staleness: Stats::of(&self.staleness_samples),
            revocations: self.revocations,
            repairs: self.repairs,
            downtime_secs: self.downtime_secs,
            degraded_secs: self.degraded_secs,
            lost_updates: self.lost_updates,
            replayed_updates: self.replayed_updates,
            retries: self.retries,
            failovers: self.failovers,
            progress_curve: self.progress_curve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cynthia_cloud::default_catalog;

    fn m4_cluster(n_workers: u32, n_ps: u32) -> ClusterSpec {
        let cat = default_catalog();
        ClusterSpec::homogeneous(cat.expect("m4.xlarge"), n_workers, n_ps)
    }

    fn run(workload: &Workload, cluster: ClusterSpec, cfg: SimConfig) -> TrainingReport {
        simulate(&TrainJob {
            workload,
            cluster,
            config: cfg,
        })
    }

    #[test]
    fn tag_roundtrip() {
        let t = tag(KIND_PULL, 1234, 200, 0xdead_beef);
        assert_eq!(untag(t), (KIND_PULL, 1234, 200, 0xdead_beef));
    }

    #[test]
    fn single_worker_bsp_is_compute_bound() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 200;
        let r = run(&w, m4_cluster(1, 1), SimConfig::deterministic(1));
        // t_base = 0.0356/0.9 ≈ 0.0396 s; communication hides under compute.
        let expect = 200.0 * (0.0356 / 0.9);
        assert!(
            (r.total_time - expect).abs() / expect < 0.15,
            "total {} vs expected ≈{expect}",
            r.total_time
        );
        assert!(r.worker_cpu_util[0] > 0.85, "worker should be busy");
        assert!(!r.extrapolated);
        assert_eq!(r.simulated_iterations, 200);
    }

    #[test]
    fn bsp_scales_then_degrades_like_fig1b() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 300;
        let cfg = SimConfig::deterministic(7);
        let t: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|n| run(&w, m4_cluster(*n, 1), cfg).total_time)
            .collect();
        assert!(t[1] < t[0], "2 workers should beat 1: {t:?}");
        // The U-shape: 8 workers slower than the best point.
        let best = t.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            t[3] > best * 1.3,
            "8 workers should sit past the knee: {t:?}"
        );
    }

    #[test]
    fn ps_saturates_under_bsp_scaleout_like_table2() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 300;
        let cfg = SimConfig::deterministic(3);
        let r1 = run(&w, m4_cluster(1, 1), cfg);
        let r8 = run(&w, m4_cluster(8, 1), cfg);
        assert!(
            r1.ps_cpu_util[0] < 0.5,
            "PS lightly loaded with 1 worker: {}",
            r1.ps_cpu_util[0]
        );
        assert!(
            r8.ps_cpu_util[0] > 0.9,
            "PS saturated with 8 workers: {}",
            r8.ps_cpu_util[0]
        );
        assert!(
            r8.worker_cpu_util[0] < 0.5,
            "workers throttled at 8: {}",
            r8.worker_cpu_util[0]
        );
    }

    #[test]
    fn asp_time_improves_with_workers() {
        let mut w = Workload::resnet32_asp();
        w.iterations = 60;
        let cfg = SimConfig::deterministic(5);
        let t4 = run(&w, m4_cluster(4, 1), cfg).total_time;
        let t9 = run(&w, m4_cluster(9, 1), cfg).total_time;
        assert!(
            t9 < t4 * 0.65,
            "ResNet-32 ASP should keep scaling: t4={t4} t9={t9}"
        );
    }

    #[test]
    fn asp_records_staleness_and_bsp_does_not() {
        let mut w = Workload::resnet32_asp();
        w.iterations = 80;
        let r = run(&w, m4_cluster(4, 1), SimConfig::deterministic(2));
        assert!(r.staleness.n > 0);
        assert!(
            r.staleness.mean > 1.0,
            "4 ASP workers should miss updates: {}",
            r.staleness.mean
        );

        let mut b = Workload::mnist_bsp();
        b.iterations = 50;
        let rb = run(&b, m4_cluster(4, 1), SimConfig::deterministic(2));
        assert_eq!(rb.staleness.n, 0);
    }

    #[test]
    fn stragglers_slow_bsp_down() {
        let cat = default_catalog();
        let mut w = Workload::mnist_bsp();
        w.iterations = 200;
        let cfg = SimConfig::deterministic(4);
        let homo = run(&w, m4_cluster(2, 1), cfg).total_time;
        let hetero = run(
            &w,
            ClusterSpec::heterogeneous(cat.expect("m4.xlarge"), cat.expect("m1.xlarge"), 2, 1),
            cfg,
        )
        .total_time;
        assert!(
            hetero > homo * 1.4,
            "straggler should pace the barrier: homo={homo} hetero={hetero}"
        );
    }

    #[test]
    fn more_ps_relieves_the_bottleneck() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 300;
        let cfg = SimConfig::deterministic(6);
        let t1 = run(&w, m4_cluster(8, 1), cfg).total_time;
        let t4 = run(&w, m4_cluster(8, 4), cfg).total_time;
        assert!(
            t4 < t1 * 0.6,
            "4 PS nodes should relieve the mnist bottleneck: 1ps={t1} 4ps={t4}"
        );
    }

    #[test]
    fn loss_curve_is_monotone_decreasing_in_trend() {
        let mut w = Workload::cifar10_bsp();
        w.iterations = 2000;
        let r = run(&w, m4_cluster(4, 1), SimConfig::fast(9));
        assert!(r.loss_curve.len() > 10);
        let first = r.loss_curve.first().unwrap().1;
        let last = r.loss_curve.last().unwrap().1;
        assert!(last < first * 0.5, "loss should drop: {first} -> {last}");
        assert_eq!(r.loss_curve.last().unwrap().0, 2000);
    }

    #[test]
    fn fast_forward_matches_exact_run_within_tolerance() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 400;
        let exact = run(&w, m4_cluster(4, 1), SimConfig::deterministic(11));
        let mut fast_cfg = SimConfig::deterministic(11);
        fast_cfg.fast_forward = Some(crate::config::FastForward {
            warmup: 20,
            measure: 80,
        });
        let fast = run(&w, m4_cluster(4, 1), fast_cfg);
        assert!(fast.extrapolated);
        assert!(fast.simulated_iterations < 400);
        let err = (fast.total_time - exact.total_time).abs() / exact.total_time;
        assert!(
            err < 0.05,
            "extrapolation error {err}: {} vs {}",
            fast.total_time,
            exact.total_time
        );
    }

    #[test]
    fn deterministic_runs_are_identical() {
        let mut w = Workload::vgg19_asp();
        w.iterations = 40;
        let a = run(&w, m4_cluster(3, 1), SimConfig::exact(21));
        let b = run(&w, m4_cluster(3, 1), SimConfig::exact(21));
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.loss_curve, b.loss_curve);
        assert_eq!(a.ps_cpu_util, b.ps_cpu_util);
    }

    #[test]
    fn vgg_asp_saturates_ps_nic_like_fig7() {
        let mut w = Workload::vgg19_asp();
        w.iterations = 150;
        let cfg = SimConfig::deterministic(13);
        let r4 = run(&w, m4_cluster(4, 1), cfg);
        let r9 = run(&w, m4_cluster(9, 1), cfg);
        let nic = 118.0;
        assert!(
            r4.total_ps_nic_mbps() < 0.7 * nic,
            "4 workers should not saturate: {}",
            r4.total_ps_nic_mbps()
        );
        assert!(
            r9.total_ps_nic_mbps() > 0.75 * nic,
            "9 workers should approach saturation: {}",
            r9.total_ps_nic_mbps()
        );
        // And the peak (bucketed) rate should actually touch the capacity.
        let peak = r9.ps_nic_series[0]
            .iter()
            .map(|(_, r)| *r)
            .fold(0.0f64, f64::max);
        assert!(peak > 0.9 * nic, "peak should reach the NIC cap: {peak}");
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_busy_time() {
        use crate::trace::Activity;
        let mut w = Workload::mnist_bsp();
        w.iterations = 60;
        let job = TrainJob {
            workload: &w,
            cluster: m4_cluster(2, 1),
            config: SimConfig::deterministic(8),
        };
        let plain = simulate(&job);
        let (traced, trace) = simulate_traced(&job, 1_000_000);
        assert_eq!(
            plain.total_time, traced.total_time,
            "tracing must not perturb"
        );
        // The traced compute time matches the report's busy accounting.
        let busy0 = trace.busy_time("worker-0", Activity::Compute);
        let expect0 = traced.worker_cpu_util[0] * traced.simulated_time;
        assert!(
            (busy0 - expect0).abs() / expect0 < 0.02,
            "trace busy {busy0} vs report {expect0}"
        );
        // All four activity kinds appear, and the export is parseable.
        for act in [
            Activity::Compute,
            Activity::Push,
            Activity::Apply,
            Activity::Pull,
        ] {
            assert!(
                trace.spans().iter().any(|sp| sp.activity == act),
                "{act:?} missing from trace"
            );
        }
        let json = trace.to_chrome_trace();
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn empty_disruption_schedule_matches_plain_simulation() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 100;
        let job = TrainJob {
            workload: &w,
            cluster: m4_cluster(3, 1),
            config: SimConfig::deterministic(31),
        };
        let plain = simulate(&job);
        let disrupted = simulate_disrupted(&job, &[]);
        assert_eq!(plain.total_time, disrupted.total_time);
        assert_eq!(disrupted.revocations, 0);
        assert_eq!(disrupted.repairs, 0);
    }

    #[test]
    fn bsp_stalls_through_revocation_then_completes() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 200;
        let job = TrainJob {
            workload: &w,
            cluster: m4_cluster(4, 1),
            config: SimConfig::deterministic(33),
        };
        let base = simulate(&job);
        // Revoke worker 2 mid-run; a replacement joins 20 s later.
        let d = [Disruption {
            worker: 2,
            at: base.total_time * 0.4,
            rejoin_at: Some(base.total_time * 0.4 + 20.0),
        }];
        let r = simulate_disrupted(&job, &d);
        assert_eq!(r.revocations, 1);
        assert_eq!(r.repairs, 1);
        assert_eq!(r.simulated_iterations, 200, "the barrier must release");
        assert!(
            r.total_time > base.total_time + 15.0,
            "BSP stalls for most of the outage: base={} disrupted={}",
            base.total_time,
            r.total_time
        );
    }

    #[test]
    fn asp_degrades_gracefully_under_revocation() {
        let mut w = Workload::resnet32_asp();
        w.iterations = 60;
        let job = TrainJob {
            workload: &w,
            cluster: m4_cluster(4, 1),
            config: SimConfig::deterministic(35),
        };
        let base = simulate(&job);
        let outage = base.total_time * 0.5;
        let d = [Disruption {
            worker: 1,
            at: base.total_time * 0.25,
            rejoin_at: Some(base.total_time * 0.25 + outage),
        }];
        let r = simulate_disrupted(&job, &d);
        assert_eq!(r.simulated_iterations, 60);
        assert_eq!(r.revocations, 1);
        // Survivors keep committing: the slowdown is far smaller than the
        // outage itself (BSP would stall for all of it).
        assert!(
            r.total_time - base.total_time < outage * 0.8,
            "ASP should absorb most of the outage: base={} disrupted={} outage={outage}",
            base.total_time,
            r.total_time
        );
    }

    #[test]
    fn permanent_shrink_completes_on_survivors() {
        for workload in [Workload::mnist_bsp(), Workload::resnet32_asp()] {
            let mut w = workload;
            w.iterations = 80;
            let job = TrainJob {
                workload: &w,
                cluster: m4_cluster(2, 1),
                config: SimConfig::deterministic(37),
            };
            let base = simulate(&job);
            let d = [Disruption {
                worker: 0,
                at: base.total_time * 0.3,
                rejoin_at: None,
            }];
            let r = simulate_disrupted(&job, &d);
            assert_eq!(
                r.simulated_iterations,
                80,
                "{}: survivors must finish the job",
                w.id()
            );
            assert_eq!(r.revocations, 1);
            assert_eq!(r.repairs, 0, "a shrink is not a repair");
            assert!(
                r.total_time > base.total_time,
                "{}: fewer workers, slower",
                w.id()
            );
        }
    }

    #[test]
    fn back_to_back_revocations_of_same_slot() {
        let mut w = Workload::mnist_bsp();
        w.iterations = 120;
        let job = TrainJob {
            workload: &w,
            cluster: m4_cluster(3, 1),
            config: SimConfig::deterministic(39),
        };
        let base = simulate(&job);
        let t = base.total_time;
        let d = [
            Disruption {
                worker: 1,
                at: t * 0.2,
                rejoin_at: Some(t * 0.2 + 10.0),
            },
            // Second reclaim lands while the first repair may still be
            // restoring; the slot must survive both.
            Disruption {
                worker: 1,
                at: t * 0.2 + 12.0,
                rejoin_at: Some(t * 0.2 + 30.0),
            },
        ];
        let r = simulate_disrupted(&job, &d);
        assert_eq!(r.simulated_iterations, 120);
        assert_eq!(r.revocations, 2);
        assert_eq!(r.repairs, 2);
    }

    #[test]
    fn disrupted_runs_are_deterministic() {
        let mut w = Workload::vgg19_asp();
        w.iterations = 40;
        let job = TrainJob {
            workload: &w,
            cluster: m4_cluster(3, 1),
            config: SimConfig::exact(41),
        };
        let d = [
            Disruption {
                worker: 0,
                at: 30.0,
                rejoin_at: Some(55.0),
            },
            Disruption {
                worker: 2,
                at: 60.0,
                rejoin_at: None,
            },
        ];
        let a = simulate_disrupted(&job, &d);
        let b = simulate_disrupted(&job, &d);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.loss_curve, b.loss_curve);
        assert_eq!(a.revocations, b.revocations);
        assert_eq!(a.repairs, b.repairs);
    }

    #[test]
    fn comm_grows_and_comp_shrinks_with_workers_bsp() {
        let mut w = Workload::cifar10_bsp();
        w.iterations = 60;
        let cfg = SimConfig::deterministic(17);
        let r9 = run(&w, m4_cluster(9, 1), cfg);
        let r17 = run(&w, m4_cluster(17, 1), cfg);
        assert!(r17.comp_time.mean < r9.comp_time.mean);
        assert!(r17.comm_time.mean > r9.comm_time.mean);
    }
}
