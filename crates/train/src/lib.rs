//! # cynthia-train — ground-truth distributed training simulator
//!
//! A discrete-event, flow-level simulator of parameter-server DNN training,
//! standing in for the paper's 56-docker TensorFlow-on-Kubernetes testbed.
//! It is deliberately *richer* than Cynthia's analytic model (Sec. 3), so
//! that predictions are non-trivially accurate:
//!
//! * Gradient pushes, parameter pulls, and PS update application are fluid
//!   flows over max-min fair shared NICs and a processor-sharing PS CPU
//!   ([`cynthia_sim::fluid`]).
//! * BSP overlaps computation and communication mechanically — parameters
//!   are sharded into chunks, each chunk's gradient is pushed as soon as
//!   its compute segment finishes, and next-iteration compute resumes per
//!   chunk as pulls land (mirroring TensorFlow's `SyncReplicasOptimizer`
//!   overlap, footnote 2 of the paper). `t_iter → max(t_comp, t_comm)`
//!   emerges asymptotically rather than being assumed.
//! * ASP workers run independent compute→push→apply→pull cycles; parameter
//!   staleness is an emergent, recorded quantity.
//! * Heterogeneous clusters (straggler instances) pace BSP barriers.
//! * Compute durations carry seeded log-normal jitter.
//!
//! Entry point: [`engine::simulate`] with a [`TrainJob`].
//!
//! ```
//! use cynthia_cloud::default_catalog;
//! use cynthia_models::Workload;
//! use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};
//!
//! let catalog = default_catalog();
//! let workload = Workload::mnist_bsp();
//! let cluster = ClusterSpec::homogeneous(catalog.expect("m4.xlarge"), 4, 1);
//! let job = TrainJob {
//!     workload: &workload,
//!     cluster,
//!     config: SimConfig::fast(42),
//! };
//! let report = simulate(&job);
//! assert!(report.total_time > 0.0);
//! assert!(report.final_loss < workload.convergence.initial_loss);
//! ```

pub mod cluster;
pub mod config;
pub mod engine;
pub mod obs;
pub mod report;
pub mod trace;

pub use cluster::ClusterSpec;
pub use config::{FastForward, SimConfig};
pub use cynthia_faults::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, LinkTarget, RecoveryPolicy,
};
pub use engine::{
    simulate, simulate_disrupted, simulate_faulted, simulate_traced, Disruption, TrainJob,
};
pub use report::TrainingReport;
pub use trace::TraceRecorder;
