//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// Steady-state extrapolation: simulate `warmup + measure` iterations in
/// full detail, then extend the run analytically from the measured
/// steady-state iteration time. Loss curves for the extrapolated portion
/// come from the same seeded convergence generator, so the output is
/// statistically indistinguishable from a full run (validated by the
/// engine test `fast_forward_matches_exact_run_within_tolerance`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastForward {
    /// Iterations excluded from the steady-state window.
    pub warmup: u64,
    /// Iterations measured before extrapolating.
    pub measure: u64,
}

impl FastForward {
    /// Total iterations simulated in detail.
    pub fn horizon(&self) -> u64 {
        self.warmup + self.measure
    }
}

/// Knobs of the ground-truth simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Coefficient of variation of per-segment compute jitter
    /// (the paper repeats runs three times and reports error bars; 3% is
    /// typical iteration-time variance on shared cloud CPUs).
    pub jitter_cv: f64,
    /// Number of parameter shards for layer-wise pipelining and multi-PS
    /// sharding. The effective count is `max(chunks, n_ps)` capped at 16.
    pub chunks: usize,
    /// Optional steady-state extrapolation.
    pub fast_forward: Option<FastForward>,
    /// Approximate number of points kept in the loss curve.
    pub loss_samples: usize,
    /// Stale-synchronous-parallel slack (the paper's ref. \[14\]): a BSP
    /// worker may compute iteration `i` with parameters as old as version
    /// `i − ssp_slack`. `0` (the default) is strict BSP. Slack absorbs
    /// transient jitter and pipeline hiccups; it cannot outrun a
    /// *systematically* slow straggler, because bounded staleness still
    /// ties global progress to the slowest worker — the `ssp` experiment
    /// demonstrates both halves.
    pub ssp_slack: u32,
    /// Fraction of each PS NIC consumed by co-located background traffic
    /// (multi-tenant interference, the lineage of the authors' iAware
    /// work). `0.0` = dedicated instances. The *predictor* is never told
    /// about this — the sensitivity experiment measures how far
    /// interference can grow before predictions degrade.
    pub nic_interference: f64,
    /// Window (seconds) for bucketing PS NIC throughput time series.
    pub throughput_window: f64,
}

impl SimConfig {
    /// Full-detail simulation with the default jitter.
    pub fn exact(seed: u64) -> Self {
        SimConfig {
            seed,
            jitter_cv: 0.03,
            chunks: 8,
            fast_forward: None,
            loss_samples: 512,
            ssp_slack: 0,
            nic_interference: 0.0,
            throughput_window: 10.0,
        }
    }

    /// Fast configuration for tests and searches: short steady-state
    /// window, extrapolated tail.
    pub fn fast(seed: u64) -> Self {
        SimConfig {
            fast_forward: Some(FastForward {
                warmup: 10,
                measure: 60,
            }),
            ..Self::exact(seed)
        }
    }

    /// Deterministic configuration (no jitter) for calibration tests.
    pub fn deterministic(seed: u64) -> Self {
        SimConfig {
            jitter_cv: 0.0,
            ..Self::exact(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let e = SimConfig::exact(1);
        assert!(e.fast_forward.is_none());
        assert!(e.jitter_cv > 0.0);

        let f = SimConfig::fast(1);
        let ff = f.fast_forward.unwrap();
        assert_eq!(ff.horizon(), 70);

        let d = SimConfig::deterministic(1);
        assert_eq!(d.jitter_cv, 0.0);
    }
}
