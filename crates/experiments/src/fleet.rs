//! Fleet study — provisioning a production job stream.
//!
//! The paper's framing assumes "DDNN workloads are repeatedly executed in
//! production clusters" (Sec. 4 Remark): profiling and loss fitting are
//! amortized across many submissions of the same jobs. This experiment
//! plays that out: a synthetic stream of job submissions (the four Table 1
//! workloads with randomized deadlines and loss targets) is planned by
//! Cynthia and by the modified Optimus, every plan is executed on the
//! ground-truth simulator, and the aggregate bill and goal-attainment
//! rates are compared — the fleet-level version of Figs. 11–13.

use crate::common::{render_table, ExpConfig};
use crate::fig11::{execute_plan, oracle_loss};
use cynthia_baselines::{plan_with_optimus, OptimusModel};
use cynthia_core::profiler::{profile_workload, ProfileData};
use cynthia_core::provisioner::{plan, Goal, PlannerOptions};
use cynthia_models::Workload;
use cynthia_sim::rng::component_rng;
use rand::Rng;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    pub workload: String,
    pub deadline_s: f64,
    pub target_loss: f64,
    /// `(met goal, cost)` per strategy; `None` = no feasible plan.
    pub cynthia: Option<(bool, f64)>,
    pub optimus: Option<(bool, f64)>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fleet {
    pub jobs: Vec<JobOutcome>,
    pub cynthia_total_cost: f64,
    pub optimus_total_cost: f64,
    pub cynthia_attainment: f64,
    pub optimus_attainment: f64,
}

/// Draws a randomized but feasible goal for the workload.
fn draw_goal(w: &Workload, rng: &mut impl Rng) -> Goal {
    let floor = w.convergence.beta1;
    // Loss targets between 1.3x and 2.2x the floor; deadlines 1-4 hours.
    let target_loss = floor * rng.gen_range(1.3..2.2);
    let deadline_secs = rng.gen_range(3600.0..14400.0);
    Goal {
        deadline_secs,
        target_loss,
    }
}

/// Plans and executes `jobs_per_workload` randomized submissions of each
/// Table 1 workload under both strategies.
pub fn run(cfg: &ExpConfig) -> Fleet {
    let jobs_per_workload = if cfg.quick { 2 } else { 5 };
    let opts = PlannerOptions::default();
    let mut jobs = Vec::new();

    for (wi, workload) in Workload::table1().into_iter().enumerate() {
        // Amortized one-time artifacts, exactly as the paper argues.
        let profile: ProfileData = profile_workload(&workload, cfg.m4(), cfg.seed);
        let loss = oracle_loss(&workload);
        let optimus_model =
            OptimusModel::fit_from_simulation(&workload, cfg.m4(), &[1, 2, 3, 4], cfg.seed);
        let mut rng = component_rng(cfg.seed, "fleet-goals", wi as u64);

        // Goals are drawn serially (one shared RNG stream), then each
        // submission is planned and executed in parallel — planning and
        // execution are pure functions of (cfg, workload, goal).
        let goals: Vec<Goal> = (0..jobs_per_workload)
            .map(|_| draw_goal(&workload, &mut rng))
            .collect();
        jobs.extend(
            goals
                .par_iter()
                .map(|goal| {
                    let cynthia = plan(&profile, &loss, &cfg.catalog, goal, &opts).map(|p| {
                        let o = execute_plan(cfg, &workload, &p, goal, "Cynthia");
                        (
                            o.met_deadline && o.achieved_loss <= goal.target_loss * 1.1,
                            o.cost_usd,
                        )
                    });
                    let optimus = plan_with_optimus(
                        &optimus_model,
                        &profile,
                        &loss,
                        &cfg.catalog,
                        goal,
                        &opts,
                    )
                    .map(|p| {
                        let o = execute_plan(cfg, &workload, &p, goal, "Optimus");
                        (
                            o.met_deadline && o.achieved_loss <= goal.target_loss * 1.1,
                            o.cost_usd,
                        )
                    });
                    JobOutcome {
                        workload: workload.id(),
                        deadline_s: goal.deadline_secs,
                        target_loss: goal.target_loss,
                        cynthia,
                        optimus,
                    }
                })
                .collect::<Vec<_>>(),
        );
    }

    let total = |f: &dyn Fn(&JobOutcome) -> Option<(bool, f64)>| -> (f64, f64) {
        let planned: Vec<(bool, f64)> = jobs.iter().filter_map(f).collect();
        if planned.is_empty() {
            return (0.0, 0.0);
        }
        let cost = planned.iter().map(|(_, c)| c).sum();
        let met = planned.iter().filter(|(m, _)| *m).count() as f64 / planned.len() as f64;
        (cost, met)
    };
    let (cynthia_total_cost, cynthia_attainment) = total(&|j| j.cynthia);
    let (optimus_total_cost, optimus_attainment) = total(&|j| j.optimus);

    Fleet {
        jobs,
        cynthia_total_cost,
        optimus_total_cost,
        cynthia_attainment,
        optimus_attainment,
    }
}

impl Fleet {
    /// Renders the per-job table and the aggregate.
    pub fn render(&self) -> String {
        let fmt = |o: &Option<(bool, f64)>| match o {
            Some((met, cost)) => format!("{} ${cost:.2}", if *met { "met" } else { "MISS" }),
            None => "infeasible".into(),
        };
        let rows: Vec<Vec<String>> = self
            .jobs
            .iter()
            .map(|j| {
                vec![
                    j.workload.clone(),
                    format!("{:.0}", j.deadline_s),
                    format!("{:.2}", j.target_loss),
                    fmt(&j.cynthia),
                    fmt(&j.optimus),
                ]
            })
            .collect();
        format!(
            "Fleet study: randomized production job stream\n{}\naggregate: Cynthia ${:.2} at {:.0}% attainment | Optimus ${:.2} at {:.0}% attainment\n",
            render_table(
                &["workload", "deadline(s)", "loss", "Cynthia", "Optimus"],
                &rows
            ),
            self.cynthia_total_cost,
            self.cynthia_attainment * 100.0,
            self.optimus_total_cost,
            self.optimus_attainment * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_favors_cynthia() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        assert_eq!(f.jobs.len(), 8);
        // Cynthia attains every goal it plans for.
        assert!(
            f.cynthia_attainment > 0.99,
            "attainment {:.0}%",
            f.cynthia_attainment * 100.0
        );
        // And the fleet bill is no worse than Optimus's (usually better).
        assert!(
            f.cynthia_total_cost <= f.optimus_total_cost * 1.02,
            "Cynthia ${} vs Optimus ${}",
            f.cynthia_total_cost,
            f.optimus_total_cost
        );
    }
}
