//! # cynthia-experiments — regenerating the paper's evaluation
//!
//! One module per table/figure of the ICPP 2019 Cynthia paper. Each module
//! exposes a `run(&ExpConfig) -> SomeResult` function returning structured
//! rows plus a renderer that prints the same series the paper plots. The
//! `cynthia-exp` binary maps each experiment to a CLI subcommand;
//! `cynthia-exp all` regenerates everything (that is what
//! `EXPERIMENTS.md` records).
//!
//! Absolute numbers differ from the paper — the substrate is a simulator,
//! not a 56-docker EC2 testbed — but each module's doc comment states the
//! *shape* being reproduced and the integration tests assert it.

pub mod ablations;
pub mod common;
pub mod extension_gpu;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod overhead;
pub mod sensitivity;
pub mod ssp;
pub mod table1;
pub mod table2;
pub mod table4;

pub use common::ExpConfig;
