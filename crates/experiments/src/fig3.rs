//! Fig. 3 — DDNN training time breakdown for the cifar10 DNN with BSP.
//!
//! Shape reproduced: as workers grow, total computation time falls ≈ 1/n
//! while total communication time grows ≈ n; the two curves cross and the
//! total training time has its minimum near the balance point. (In our
//! calibration the crossover lands near 8 workers instead of the paper's
//! 13 — the paper's measured communication is ~2.6× faster than its own
//! Eq. (5) with Table 4's values predicts; see EXPERIMENTS.md.)

use crate::common::{render_table, ExpConfig};
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub n_workers: u32,
    pub computation_s: f64,
    pub communication_s: f64,
    pub training_s: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    pub rows: Vec<Row>,
    /// Worker count with the smallest total time (the paper's "13
    /// workers" balance point).
    pub balance_point: u32,
    /// Worker count where communication first exceeds computation.
    pub crossover: Option<u32>,
}

/// Sweeps 5..=17 workers (the paper plots 9..17; we extend downward so
/// the crossover is visible at our calibration).
pub fn run(cfg: &ExpConfig) -> Fig3 {
    let w = Workload::cifar10_bsp();
    let counts: Vec<u32> = (5..=17).step_by(2).collect();
    let rows: Vec<Row> = counts
        .iter()
        .map(|&n| {
            let reports = cfg.run_repeated(&w, &ClusterSpec::homogeneous(cfg.m4(), n, 1));
            let avg = |f: &dyn Fn(&cynthia_train::TrainingReport) -> f64| {
                reports.iter().map(f).sum::<f64>() / reports.len() as f64
            };
            Row {
                n_workers: n,
                computation_s: avg(&|r| r.total_comp_time),
                communication_s: avg(&|r| r.total_comm_time),
                training_s: avg(&|r| r.total_time),
            }
        })
        .collect();
    let balance_point = rows
        .iter()
        .min_by(|a, b| a.training_s.partial_cmp(&b.training_s).unwrap())
        .map(|r| r.n_workers)
        .unwrap();
    let crossover = rows
        .iter()
        .find(|r| r.communication_s > r.computation_s)
        .map(|r| r.n_workers);
    Fig3 {
        rows,
        balance_point,
        crossover,
    }
}

impl Fig3 {
    /// Renders the breakdown.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.n_workers.to_string(),
                    format!("{:.0}", r.computation_s),
                    format!("{:.0}", r.communication_s),
                    format!("{:.0}", r.training_s),
                ]
            })
            .collect();
        format!(
            "Fig. 3: cifar10 DNN / BSP time breakdown\n{}balance point: {} workers; comp/comm crossover: {}\n",
            render_table(
                &["workers", "computation(s)", "communication(s)", "training(s)"],
                &rows
            ),
            self.balance_point,
            self.crossover
                .map(|c| c.to_string())
                .unwrap_or("none in range".into())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_falls_comm_rises_and_they_cross() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        let first = &f.rows[0];
        let last = f.rows.last().unwrap();
        assert!(last.computation_s < first.computation_s);
        assert!(last.communication_s > first.communication_s);
        assert!(f.crossover.is_some(), "crossover must appear in 5..=17");
        // Balance point lies strictly inside the sweep.
        assert!(
            f.balance_point > 5 && f.balance_point < 17,
            "{}",
            f.balance_point
        );
        // Overlap: total stays below the additive composition. (It can
        // also dip below max(comp, comm): per-iteration communication
        // windows overlap adjacent iterations in the pipelined barrier,
        // matching the paper's Fig. 3 where total < comp + comm.)
        for r in &f.rows {
            assert!(r.training_s < r.computation_s + r.communication_s);
        }
    }
}
