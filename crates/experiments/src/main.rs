//! `cynthia-exp` — regenerate any table or figure of the Cynthia paper.
//!
//! ```text
//! cynthia-exp <experiment> [--quick] [--json]
//! cynthia-exp all [--quick]
//! ```
//!
//! Experiments: table1, fig1, table2, fig2, fig3, fig4, table4, fig6,
//! fig7, fig8, fig9, fig10, fig11, fig12, fig13, overhead.

use cynthia_experiments::*;

fn usage() -> ! {
    eprintln!(
        "usage: cynthia-exp <experiment|all> [--quick] [--json]\n\
         experiments: table1 fig1 table2 fig2 fig3 fig4 table4 fig6 fig7\n\
         \u{20}            fig8 fig9 fig10 fig11 fig12 fig13 overhead ablations gpu fleet sensitivity ssp"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let name = args[0].as_str();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };

    let run_one = |name: &str| -> Option<(String, String)> {
        macro_rules! exp {
            ($module:ident, $runner:expr) => {{
                let result = $runner;
                let rendered = result.render();
                let as_json =
                    serde_json::to_string_pretty(&result).expect("experiment results serialize");
                Some((rendered, as_json))
            }};
        }
        match name {
            "table1" => exp!(table1, table1::run()),
            "ablations" => exp!(ablations, ablations::run(&cfg)),
            "gpu" => exp!(extension_gpu, extension_gpu::run(&cfg)),
            "fleet" => exp!(fleet, fleet::run(&cfg)),
            "sensitivity" => exp!(sensitivity, sensitivity::run(&cfg)),
            "ssp" => exp!(ssp, ssp::run(&cfg)),
            "fig1" => exp!(fig1, fig1::run(&cfg)),
            "table2" => exp!(table2, table2::run(&cfg)),
            "fig2" => exp!(fig2, fig2::run(&cfg)),
            "fig3" => exp!(fig3, fig3::run(&cfg)),
            "fig4" => exp!(fig4, fig4::run(&cfg)),
            "table4" => exp!(table4, table4::run(&cfg)),
            "fig6" => exp!(fig6, fig6::run(&cfg)),
            "fig7" => exp!(fig7, fig7::run(&cfg)),
            "fig8" => exp!(fig8, fig8::run(&cfg)),
            "fig9" => exp!(fig9, fig9::run(&cfg)),
            "fig10" => exp!(fig10, fig10::run(&cfg)),
            "fig11" => exp!(fig11, fig11::run(&cfg)),
            "fig12" => exp!(fig12, fig12::run(&cfg)),
            "fig13" => exp!(fig13, fig13::run(&cfg)),
            "overhead" => exp!(overhead, overhead::run(&cfg)),
            _ => None,
        }
    };

    let all = [
        "table1",
        "fig1",
        "table2",
        "fig2",
        "fig3",
        "fig4",
        "table4",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "overhead",
        "ablations",
        "gpu",
        "fleet",
        "sensitivity",
        "ssp",
    ];

    if name == "all" {
        for exp in all {
            eprintln!("== running {exp} ==");
            let (rendered, _) = run_one(exp).expect("known experiment");
            println!("{rendered}");
        }
        return;
    }

    match run_one(name) {
        Some((rendered, as_json)) => {
            if json {
                println!("{as_json}");
            } else {
                println!("{rendered}");
            }
        }
        None => usage(),
    }
}
