//! Sec. 5.3 — runtime overhead of Cynthia.
//!
//! Two numbers per workload:
//! * the (virtual) wall-clock of the one-shot 30-iteration profiling run
//!   (the paper: 0.9 s for mnist up to 10.4 min for VGG-19), and
//! * the (real) wall-clock of one Alg. 1 planning pass (the paper: 13–39
//!   ms on an m4.xlarge).

use crate::common::{render_table, ExpConfig};
use crate::fig11::oracle_loss;
use cynthia_core::profiler::profile_workload;
use cynthia_core::provisioner::{plan, Goal, PlannerOptions};
use cynthia_models::Workload;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub workload: String,
    /// Virtual seconds of the profiling run.
    pub profiling_s: f64,
    /// Real milliseconds of one planning pass.
    pub planning_ms: f64,
    /// Candidate points Alg. 1 evaluated.
    pub candidates: u32,
}

#[derive(Debug, Clone, Serialize)]
pub struct Overhead {
    pub rows: Vec<Row>,
}

/// Measures both overheads for the four workloads.
pub fn run(cfg: &ExpConfig) -> Overhead {
    let rows = Workload::table1()
        .iter()
        .map(|w| {
            let profile = profile_workload(w, cfg.m4(), cfg.seed);
            let loss = oracle_loss(w);
            let goal = Goal {
                deadline_secs: 7200.0,
                target_loss: (w.convergence.beta1 * 1.6).max(0.2),
            };
            let t0 = std::time::Instant::now();
            let p = plan(
                &profile,
                &loss,
                &cfg.catalog,
                &goal,
                &PlannerOptions::default(),
            );
            let planning_ms = t0.elapsed().as_secs_f64() * 1e3;
            Row {
                workload: w.id(),
                profiling_s: profile.profiling_wallclock,
                planning_ms,
                candidates: p.map(|p| p.candidates_evaluated).unwrap_or(0),
            }
        })
        .collect();
    Overhead { rows }
}

impl Overhead {
    /// Renders the table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    format!("{:.1}", r.profiling_s),
                    format!("{:.2}", r.planning_ms),
                    r.candidates.to_string(),
                ]
            })
            .collect();
        format!(
            "Sec. 5.3: Cynthia runtime overhead\n{}",
            render_table(
                &[
                    "workload",
                    "profiling(s,virtual)",
                    "planning(ms,real)",
                    "candidates"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_acceptable() {
        let cfg = ExpConfig::quick();
        let o = run(&cfg);
        assert_eq!(o.rows.len(), 4);
        for r in &o.rows {
            // Profiling: 30 iterations, so seconds-to-minutes depending on
            // t_base — never hours.
            assert!(
                r.profiling_s < 1800.0,
                "{}: profiling {}s",
                r.workload,
                r.profiling_s
            );
            // Planning: well under a second.
            assert!(
                r.planning_ms < 500.0,
                "{}: planning {}ms",
                r.workload,
                r.planning_ms
            );
        }
        // mnist profiles fastest (the paper's 0.9 s).
        let mnist = o
            .rows
            .iter()
            .find(|r| r.workload.contains("mnist"))
            .unwrap();
        for r in &o.rows {
            assert!(mnist.profiling_s <= r.profiling_s, "{}", r.workload);
        }
    }
}
