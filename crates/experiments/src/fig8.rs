//! Fig. 8 — cross-instance-type prediction: VGG-19 / ASP running on
//! r3.xlarge clusters, predicted from the profile taken *once* on
//! m4.xlarge.
//!
//! Shape reproduced: prediction error stays in the single digits without
//! re-profiling on the target type (the paper reports 4.0–5.2%), because
//! the profile transfers through the capability table.

use crate::common::{pct, rel_err, render_table, ExpConfig};
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::profile_workload;
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub n_workers: u32,
    pub observed_s: f64,
    pub cynthia_s: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    pub rows: Vec<Row>,
    pub profiled_on: String,
    pub ran_on: String,
}

/// Profiles on m4.xlarge, validates on r3.xlarge at 7/9/12 workers.
pub fn run(cfg: &ExpConfig) -> Fig8 {
    let iters = if cfg.quick { 300 } else { 1000 };
    let w = Workload::vgg19_asp().with_iterations(iters);
    let r3 = cfg.catalog.expect("r3.xlarge");
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let model = CynthiaModel::new(profile);
    let rows = [7u32, 9, 12]
        .iter()
        .map(|&n| {
            let observed = cfg.time_stats(&w, &ClusterSpec::homogeneous(r3, n, 1)).mean;
            Row {
                n_workers: n,
                observed_s: observed,
                cynthia_s: model.predict_time(&ClusterShape::homogeneous(r3, n, 1), w.iterations),
            }
        })
        .collect();
    Fig8 {
        rows,
        profiled_on: "m4.xlarge".into(),
        ran_on: "r3.xlarge".into(),
    }
}

impl Fig8 {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.n_workers.to_string(),
                    format!("{:.0}", r.observed_s),
                    format!(
                        "{:.0} ({})",
                        r.cynthia_s,
                        pct(rel_err(r.cynthia_s, r.observed_s))
                    ),
                ]
            })
            .collect();
        format!(
            "Fig. 8: VGG-19 / ASP on {} predicted from a {} profile\n{}",
            self.ran_on,
            self.profiled_on,
            render_table(&["workers", "observed(s)", "Cynthia"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_error_stays_small() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        for r in &f.rows {
            let e = rel_err(r.cynthia_s, r.observed_s).abs();
            assert!(
                e < 0.12,
                "n={}: error {:.1}% too large ({} vs {})",
                r.n_workers,
                e * 100.0,
                r.cynthia_s,
                r.observed_s
            );
        }
    }
}
