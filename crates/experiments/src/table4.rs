//! Table 4 — DNN training parameters from 30-iteration profiling on an
//! m4.xlarge worker.
//!
//! Shape reproduced: the same four quantities the paper profiles
//! (`w_iter`, `g_param`, `c_prof`, `b_prof`), with the paper's values
//! alongside. `w_iter` is in capability-table units (the per-model kernel
//! efficiency is folded in — see `cynthia-models::workload` docs), so it
//! differs from the paper's raw FLOP numbers by that documented factor;
//! `g_param` comes from the layer algebra and lands within ~15% of the
//! paper's for every model.

use crate::common::{render_table, ExpConfig};
use cynthia_core::profiler::{profile_workload, ProfileData};
use cynthia_models::Workload;
use serde::Serialize;

/// Paper values: (workload id, w_iter GFLOP, g_param MB, c_prof GFLOPS,
/// b_prof MB/s).
pub const PAPER: [(&str, f64, f64, f64, f64); 4] = [
    ("ResNet-32/ASP", 39.87, 2.22, 0.12, 0.19),
    ("mnist DNN/BSP", 0.04, 0.33, 1.13, 16.69),
    ("VGG-19/ASP", 58.81, 135.84, 0.33, 13.49),
    ("cifar10 DNN/BSP", 26.86, 4.94, 0.06, 1.56),
];

#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    pub profiles: Vec<ProfileData>,
}

/// Profiles all four workloads.
pub fn run(cfg: &ExpConfig) -> Table4 {
    let profiles = Workload::table1()
        .iter()
        .map(|w| profile_workload(w, cfg.m4(), cfg.seed))
        .collect();
    Table4 { profiles }
}

impl Table4 {
    /// Finds a profile by workload id.
    pub fn get(&self, id: &str) -> Option<&ProfileData> {
        self.profiles.iter().find(|p| p.workload_id == id)
    }

    /// Renders measured-vs-paper.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .profiles
            .iter()
            .map(|p| {
                let paper = PAPER.iter().find(|(id, ..)| *id == p.workload_id);
                let paper_str = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or("-".into());
                vec![
                    p.workload_id.clone(),
                    format!("{:.3}", p.w_iter_gflops),
                    paper_str(paper.map(|p| p.1)),
                    format!("{:.2}", p.g_param_mb),
                    paper_str(paper.map(|p| p.2)),
                    format!("{:.3}", p.c_prof_gflops),
                    paper_str(paper.map(|p| p.3)),
                    format!("{:.2}", p.b_prof_mbps),
                    paper_str(paper.map(|p| p.4)),
                ]
            })
            .collect();
        format!(
            "Table 4: 30-iteration profiling on m4.xlarge (ours vs paper)\n{}",
            render_table(
                &[
                    "workload", "w_iter", "(paper)", "g_param", "(paper)", "c_prof", "(paper)",
                    "b_prof", "(paper)",
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_param_matches_paper_within_a_quarter() {
        // The layer algebra lands each model's parameter payload within
        // ~20% of the paper's measurement (ResNet-32 is the worst: our
        // 1.8 MB vs their 2.22 MB, which includes optimizer slots).
        let cfg = ExpConfig::quick();
        let t = run(&cfg);
        for (id, _, g_paper, _, _) in PAPER {
            let p = t.get(id).unwrap_or_else(|| panic!("{id} missing"));
            let err = (p.g_param_mb - g_paper).abs() / g_paper;
            assert!(
                err < 0.25,
                "{id}: g_param {} vs paper {g_paper}",
                p.g_param_mb
            );
        }
    }

    #[test]
    fn per_model_orderings_match_the_paper() {
        let cfg = ExpConfig::quick();
        let t = run(&cfg);
        let get = |id: &str| t.get(id).unwrap();
        // VGG moves by far the most data; mnist the least work.
        assert!(get("VGG-19/ASP").g_param_mb > 100.0);
        assert!(get("mnist DNN/BSP").w_iter_gflops < 0.1);
        // mnist has the highest b_prof (tiny compute per byte), like the
        // paper's 16.69 MB/s.
        let b_mnist = get("mnist DNN/BSP").b_prof_mbps;
        for (id, ..) in PAPER.iter().filter(|(id, ..)| !id.contains("mnist")) {
            assert!(b_mnist > t.get(id).unwrap().b_prof_mbps, "{id}");
        }
    }
}
