//! Fig. 1 — training time of (a) ResNet-32/ASP and (b) mnist DNN/BSP in
//! homogeneous and heterogeneous clusters.
//!
//! Shapes reproduced:
//! * (a) ASP time keeps decreasing as workers are added.
//! * (b) BSP time first decreases then increases (the PS bottleneck
//!   U-shape).
//! * Heterogeneous clusters (⌊n/2⌋ m1.xlarge stragglers) are slower —
//!   the paper reports up to 84%.

use crate::common::{render_table, ExpConfig, Measure};
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Point {
    pub n_workers: u32,
    pub homogeneous: Measure,
    pub heterogeneous: Measure,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig1 {
    /// (a) ResNet-32 with ASP.
    pub resnet_asp: Vec<Point>,
    /// (b) mnist DNN with BSP.
    pub mnist_bsp: Vec<Point>,
}

fn sweep(cfg: &ExpConfig, workload: &Workload, counts: &[u32]) -> Vec<Point> {
    counts
        .iter()
        .map(|&n| {
            let homo = ClusterSpec::homogeneous(cfg.m4(), n, 1);
            let hetero = ClusterSpec::heterogeneous(cfg.m4(), cfg.m1(), n, 1);
            Point {
                n_workers: n,
                homogeneous: cfg.time_stats(workload, &homo).into(),
                heterogeneous: cfg.time_stats(workload, &hetero).into(),
            }
        })
        .collect()
}

/// Runs both panels.
pub fn run(cfg: &ExpConfig) -> Fig1 {
    let resnet = Workload::resnet32_asp();
    let mnist = Workload::mnist_bsp();
    Fig1 {
        resnet_asp: sweep(cfg, &resnet, &[4, 7, 9]),
        mnist_bsp: sweep(cfg, &mnist, &[1, 2, 4, 8]),
    }
}

impl Fig1 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let panel = |title: &str, pts: &[Point]| {
            let rows: Vec<Vec<String>> = pts
                .iter()
                .map(|p| {
                    vec![
                        p.n_workers.to_string(),
                        p.homogeneous.to_string(),
                        p.heterogeneous.to_string(),
                    ]
                })
                .collect();
            format!(
                "{title}\n{}",
                render_table(&["workers", "homogeneous(s)", "heterogeneous(s)"], &rows)
            )
        };
        format!(
            "{}\n{}",
            panel("Fig. 1(a) ResNet-32 / ASP training time", &self.resnet_asp),
            panel("Fig. 1(b) mnist DNN / BSP training time", &self.mnist_bsp)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes_hold() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        // (a) ASP keeps improving.
        let a: Vec<f64> = f.resnet_asp.iter().map(|p| p.homogeneous.mean).collect();
        assert!(a[2] < a[1] && a[1] < a[0], "ASP should scale: {a:?}");
        // (b) BSP has a U: 8 workers worse than the best.
        let b: Vec<f64> = f.mnist_bsp.iter().map(|p| p.homogeneous.mean).collect();
        let best = b.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(b[0] > best && *b.last().unwrap() > best, "U-shape: {b:?}");
        // Heterogeneity slows things down where stragglers exist (n ≥ 2).
        for p in f.resnet_asp.iter().chain(f.mnist_bsp.iter()) {
            if p.n_workers >= 2 {
                assert!(
                    p.heterogeneous.mean > p.homogeneous.mean,
                    "stragglers must hurt at n={}",
                    p.n_workers
                );
            }
        }
    }
}
