//! Extension — stale synchronous parallel (SSP, the paper's ref. \[14\]),
//! reported as a (negative) throughput result.
//!
//! The paper observes that "the DNN model still converges regularly as
//! long as the staleness of parameters is bounded". We add the
//! bounded-staleness mechanism to the BSP engine (a worker may compute
//! iteration `i` against parameters as old as `i − slack`) and measure
//! what it buys. The answer, in a chunk-pipelined PS system: *nothing
//! measurable* —
//!
//! * under compute jitter, the layer-chunk pipeline (the same overlap
//!   TensorFlow's `SyncReplicasOptimizer` performs, footnote 2) already
//!   gives every worker ≈ one iteration of effective slack, so the pull
//!   barrier is almost never binding;
//! * under resource bottlenecks, progress is paced by PS service, which
//!   staleness cannot increase;
//! * under systematic stragglers, bounded staleness still ties long-run
//!   progress to the slowest worker.
//!
//! Meanwhile the staleness penalty on convergence is real. This is
//! exactly Cynthia's positioning (Sec. 6): synchronization tuning is
//! orthogonal — *resource provisioning* is the effective lever.

use crate::common::{render_table, ExpConfig};
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub scenario: String,
    pub slack: u32,
    pub time_s: f64,
    pub mean_staleness: f64,
    pub max_staleness: f64,
    pub final_loss: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Ssp {
    pub rows: Vec<Row>,
}

/// Sweeps slack ∈ {0, 1, 3} under heavy jitter (compute-bound shape) and
/// under a systematic straggler.
pub fn run(cfg: &ExpConfig) -> Ssp {
    let w = Workload::cifar10_bsp().with_iterations(if cfg.quick { 250 } else { 1500 });
    let mut rows = Vec::new();
    for (scenario, jitter, hetero) in [("heavy-jitter", 0.30, false), ("straggler", 0.03, true)] {
        for slack in [0u32, 1, 3] {
            let cluster = if hetero {
                ClusterSpec::heterogeneous(cfg.m4(), cfg.m1(), 4, 1)
            } else {
                ClusterSpec::homogeneous(cfg.m4(), 4, 1)
            };
            let config = SimConfig {
                jitter_cv: jitter,
                ssp_slack: slack,
                ..cfg.sim(0)
            };
            let report = simulate(&TrainJob {
                workload: &w,
                cluster,
                config,
            });
            rows.push(Row {
                scenario: scenario.to_string(),
                slack,
                time_s: report.total_time,
                mean_staleness: report.staleness.mean,
                max_staleness: report.staleness.max,
                final_loss: report.final_loss,
            });
        }
    }
    Ssp { rows }
}

impl Ssp {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    r.slack.to_string(),
                    format!("{:.0}", r.time_s),
                    format!("{:.2}", r.mean_staleness),
                    format!("{:.0}", r.max_staleness),
                    format!("{:.3}", r.final_loss),
                ]
            })
            .collect();
        format!(
            "SSP extension (negative result): bounded staleness on cifar10/BSP, 4 workers\n{}\
             Slack buys no wall-clock in an overlap-pipelined PS system while the\n\
             convergence penalty is real — provisioning, not staleness, is the lever.\n",
            render_table(
                &[
                    "scenario",
                    "slack",
                    "time(s)",
                    "mean stale",
                    "max stale",
                    "final loss"
                ],
                &rows
            )
        )
    }

    #[cfg(test)]
    fn rows_of(&self, scenario: &str) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|r| r.scenario == scenario)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_buys_nothing_here_and_staleness_stays_bounded() {
        let cfg = ExpConfig::quick();
        let s = run(&cfg);
        assert_eq!(s.rows.len(), 6);
        for scenario in ["heavy-jitter", "straggler"] {
            let rows = s.rows_of(scenario);
            let strict = rows.iter().find(|r| r.slack == 0).unwrap();
            for r in &rows {
                // The negative result: wall-clock is flat in the slack
                // (within 5%), jittered or straggled alike.
                assert!(
                    (r.time_s - strict.time_s).abs() < 0.05 * strict.time_s,
                    "{scenario}: slack {} moved time {} vs {}",
                    r.slack,
                    r.time_s,
                    strict.time_s
                );
                // Staleness respects the bound; strict BSP records none.
                assert!(r.max_staleness <= r.slack as f64 + 1e-9, "{r:?}");
                if r.slack == 0 {
                    assert_eq!(r.mean_staleness, 0.0);
                }
                // Never diverges (the paper's SSP observation); at this
                // short horizon high slack may still sit near the initial
                // loss because the realized-staleness penalty is real.
                assert!(r.final_loss <= 4.6 + 1e-9, "{r:?}");
            }
            // Strict BSP makes clear progress at the same horizon...
            assert!(strict.final_loss < 4.0, "{strict:?}");
            // ...and the convergence penalty of slack is real.
            let relaxed = rows.iter().find(|r| r.slack == 3).unwrap();
            assert!(
                relaxed.final_loss >= strict.final_loss * 0.98,
                "{scenario}: slack should not improve loss: {relaxed:?} vs {strict:?}"
            );
        }
    }
}
