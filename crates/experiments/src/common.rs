//! Shared experiment plumbing: configuration, repeated runs with error
//! bars, and table rendering.

use cynthia_cloud::catalog::{default_catalog, Catalog};
use cynthia_cloud::instance::InstanceType;
use cynthia_models::Workload;
use cynthia_sim::metrics::Stats;
use cynthia_train::{simulate, ClusterSpec, FastForward, SimConfig, TrainJob, TrainingReport};
use serde::Serialize;

/// Experiment-wide configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    pub catalog: Catalog,
    /// Master seed; repeat `r` uses `seed + r`.
    pub seed: u64,
    /// Independent repetitions for error bars (the paper repeats each
    /// workload three times).
    pub repeats: u32,
    /// Steady-state window for fast-forwarded sweeps.
    pub fast_forward: FastForward,
    /// Quick mode shrinks windows further for smoke tests.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            catalog: default_catalog(),
            seed: 2019,
            repeats: 3,
            fast_forward: FastForward {
                warmup: 20,
                measure: 120,
            },
            quick: false,
        }
    }
}

impl ExpConfig {
    /// A configuration with small windows and one repeat, for smoke tests.
    pub fn quick() -> Self {
        ExpConfig {
            repeats: 1,
            fast_forward: FastForward {
                warmup: 5,
                measure: 40,
            },
            quick: true,
            ..Default::default()
        }
    }

    /// The m4.xlarge baseline instance.
    pub fn m4(&self) -> &InstanceType {
        self.catalog.expect("m4.xlarge")
    }

    /// The m1.xlarge straggler instance.
    pub fn m1(&self) -> &InstanceType {
        self.catalog.expect("m1.xlarge")
    }

    /// Simulation config for sweep runs (fast-forwarded).
    pub fn sim(&self, repeat: u32) -> SimConfig {
        SimConfig {
            fast_forward: Some(self.fast_forward),
            ..SimConfig::exact(self.seed + repeat as u64)
        }
    }

    /// Simulation config for full-detail runs (time-series figures).
    pub fn sim_exact(&self, repeat: u32) -> SimConfig {
        SimConfig::exact(self.seed + repeat as u64)
    }

    /// Runs `workload` on `cluster` once per repeat and returns all
    /// reports. Repeats run in parallel — each owns its seeded `SimConfig`
    /// end to end, so the reports are identical to a serial loop, in
    /// repeat order.
    pub fn run_repeated(&self, workload: &Workload, cluster: &ClusterSpec) -> Vec<TrainingReport> {
        use rayon::prelude::*;
        (0..self.repeats)
            .into_par_iter()
            .map(|r| {
                simulate(&TrainJob {
                    workload,
                    cluster: cluster.clone(),
                    config: self.sim(r),
                })
            })
            .collect()
    }

    /// Mean ± std of training time across repeats.
    pub fn time_stats(&self, workload: &Workload, cluster: &ClusterSpec) -> Stats {
        let times: Vec<f64> = self
            .run_repeated(workload, cluster)
            .iter()
            .map(|r| r.total_time)
            .collect();
        Stats::of(&times)
    }
}

/// A `mean ± std` measurement cell.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Measure {
    pub mean: f64,
    pub std: f64,
}

impl From<Stats> for Measure {
    fn from(s: Stats) -> Measure {
        Measure {
            mean: s.mean,
            std: s.std,
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.std)
    }
}

/// Relative prediction error `(predicted − observed)/observed`, signed.
pub fn rel_err(predicted: f64, observed: f64) -> f64 {
    (predicted - observed) / observed
}

/// Formats a signed relative error as a percentage.
pub fn pct(e: f64) -> String {
    format!("{:+.1}%", e * 100.0)
}

/// Renders rows of equal-width columns as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller() {
        let q = ExpConfig::quick();
        let d = ExpConfig::default();
        assert!(q.repeats < d.repeats);
        assert!(q.fast_forward.measure < d.fast_forward.measure);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["n", "time"],
            &[
                vec!["1".into(), "10.0".into()],
                vec!["100".into(), "3.5".into()],
            ],
        );
        assert!(t.contains("n"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn rel_err_is_signed() {
        assert!(rel_err(110.0, 100.0) > 0.0);
        assert!(rel_err(90.0, 100.0) < 0.0);
        assert_eq!(pct(0.105), "+10.5%");
    }
}
