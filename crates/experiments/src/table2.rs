//! Table 2 — average CPU utilization of the PS and a worker while
//! training the mnist DNN (BSP), homogeneous and heterogeneous clusters.
//!
//! Shape reproduced: the PS approaches 100% CPU as workers grow past ~4
//! while per-worker utilization collapses (100% → tens of percent); the
//! heterogeneous cluster shows the same saturation with its m4 workers
//! throttled.

use crate::common::{render_table, ExpConfig};
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub n_workers: u32,
    pub homo_ps_util: f64,
    pub homo_worker_util: f64,
    /// `None` for 1 worker (the paper marks the heterogeneous column N/A).
    pub hetero_ps_util: Option<f64>,
    pub hetero_m4_worker_util: Option<f64>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    pub rows: Vec<Row>,
}

/// Measures utilizations at 1, 2, 4, 8 workers.
pub fn run(cfg: &ExpConfig) -> Table2 {
    let w = Workload::mnist_bsp();
    let rows = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| {
            let homo = cfg
                .run_repeated(&w, &ClusterSpec::homogeneous(cfg.m4(), n, 1))
                .remove(0);
            let (hetero_ps, hetero_wk) = if n >= 2 {
                let spec = ClusterSpec::heterogeneous(cfg.m4(), cfg.m1(), n, 1);
                let m4_idx = spec.workers_of_type("m4.xlarge");
                let rep = cfg.run_repeated(&w, &spec).remove(0);
                (
                    Some(rep.mean_ps_util()),
                    Some(rep.mean_worker_util_of(&m4_idx)),
                )
            } else {
                (None, None)
            };
            Row {
                n_workers: n,
                homo_ps_util: homo.mean_ps_util(),
                homo_worker_util: homo.mean_worker_util(),
                hetero_ps_util: hetero_ps,
                hetero_m4_worker_util: hetero_wk,
            }
        })
        .collect();
    Table2 { rows }
}

fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

impl Table2 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{} worker(s)", r.n_workers),
                    fmt_pct(r.homo_ps_util),
                    fmt_pct(r.homo_worker_util),
                    r.hetero_ps_util.map(fmt_pct).unwrap_or("N/A".into()),
                    r.hetero_m4_worker_util.map(fmt_pct).unwrap_or("N/A".into()),
                ]
            })
            .collect();
        format!(
            "Table 2: mnist DNN / BSP average CPU utilization\n{}",
            render_table(
                &[
                    "",
                    "homo PS",
                    "homo worker",
                    "hetero PS",
                    "hetero worker(m4)"
                ],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let cfg = ExpConfig::quick();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        let r1 = &t.rows[0];
        let r8 = &t.rows[3];
        // 1 worker: PS lightly loaded, worker nearly fully busy.
        assert!(r1.homo_ps_util < 0.6, "{}", r1.homo_ps_util);
        assert!(r1.homo_worker_util > 0.8, "{}", r1.homo_worker_util);
        assert!(r1.hetero_ps_util.is_none());
        // 8 workers: PS saturated, workers collapsed.
        assert!(r8.homo_ps_util > 0.85, "{}", r8.homo_ps_util);
        assert!(r8.homo_worker_util < 0.5, "{}", r8.homo_worker_util);
        assert!(t.render().contains("N/A"));
    }
}
