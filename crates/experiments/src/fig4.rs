//! Fig. 4 — training loss curves and the fitted Eq. (1).
//!
//! Shapes reproduced:
//! * (a) cifar10 DNN / BSP: loss curves at 2/4/8 workers coincide (loss
//!   depends only on the iteration count) and `β0/s + β1` fits them.
//! * (b) ResNet-32 / ASP: more workers converge slower per iteration
//!   (staleness), captured by the `√n` factor; per-n fits recover it.

use crate::common::ExpConfig;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    pub n_workers: u32,
    /// Down-sampled `(iteration, loss)` points.
    pub points: Vec<(u64, f64)>,
    pub final_loss: f64,
    pub fitted_beta0: f64,
    pub fitted_beta1: f64,
    pub r_squared: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// (a) cifar10 DNN with BSP at 2/4/8 workers.
    pub cifar10_bsp: Vec<Curve>,
    /// (b) ResNet-32 with ASP at 4/9 workers.
    pub resnet_asp: Vec<Curve>,
}

fn curve(cfg: &ExpConfig, w: &Workload, n: u32) -> Curve {
    let report = cfg
        .run_repeated(w, &ClusterSpec::homogeneous(cfg.m4(), n, 1))
        .remove(0);
    let fit = FittedLossModel::fit(w.sync, &report.loss_curve, n);
    let step = (report.loss_curve.len() / 24).max(1);
    Curve {
        n_workers: n,
        points: report.loss_curve.iter().step_by(step).cloned().collect(),
        final_loss: report.final_loss,
        fitted_beta0: fit.beta0,
        fitted_beta1: fit.beta1,
        r_squared: fit.r_squared,
    }
}

/// Runs both panels.
pub fn run(cfg: &ExpConfig) -> Fig4 {
    let cifar = Workload::cifar10_bsp();
    let resnet = Workload::resnet32_asp();
    Fig4 {
        cifar10_bsp: [2u32, 4, 8]
            .iter()
            .map(|&n| curve(cfg, &cifar, n))
            .collect(),
        resnet_asp: [4u32, 9].iter().map(|&n| curve(cfg, &resnet, n)).collect(),
    }
}

impl Fig4 {
    /// Renders fit summaries plus a few curve samples.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (title, curves) in [
            ("Fig. 4(a) cifar10 DNN / BSP", &self.cifar10_bsp),
            ("Fig. 4(b) ResNet-32 / ASP", &self.resnet_asp),
        ] {
            let _ = writeln!(out, "{title}");
            for c in curves {
                let _ = writeln!(
                    out,
                    "  {} workers: final loss {:.3}, fit loss = {:.1}/s + {:.3} (R²={:.3})",
                    c.n_workers, c.final_loss, c.fitted_beta0, c.fitted_beta1, c.r_squared
                );
                let samples: Vec<String> = c
                    .points
                    .iter()
                    .step_by((c.points.len() / 6).max(1))
                    .map(|(s, l)| format!("s={s}:{l:.2}"))
                    .collect();
                let _ = writeln!(out, "    {}", samples.join("  "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_curves_coincide_and_asp_degrades() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        // (a) BSP final loss is worker-count independent (within noise).
        let finals: Vec<f64> = f.cifar10_bsp.iter().map(|c| c.final_loss).collect();
        let spread = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - finals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.1, "BSP finals should coincide: {finals:?}");
        // Fits are good and hyperbolic.
        for c in &f.cifar10_bsp {
            assert!(c.r_squared > 0.95, "poor fit: {c:?}");
            assert!(c.fitted_beta0 > 0.0);
        }
        // (b) ASP: 9 workers end higher than 4 at the same iteration count.
        let l4 = f.resnet_asp[0].final_loss;
        let l9 = f.resnet_asp[1].final_loss;
        assert!(l9 > l4, "staleness should slow ASP: {l4} vs {l9}");
    }
}
