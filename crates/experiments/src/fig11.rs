//! Fig. 11 — goal attainment and monetary cost under Cynthia vs the
//! modified Optimus provisioner, for the cifar10 DNN and ResNet-32 (both
//! BSP) across deadlines of 90/120/180 minutes.
//!
//! Shapes reproduced:
//! * Cynthia meets the deadline for every goal.
//! * Optimus's additive model over-estimates BSP time, over-provisions,
//!   and therefore costs more (the paper: 0.9–9.9% extra for these
//!   goals, up to 50.6% in Fig. 12).

use crate::common::{render_table, ExpConfig};
use cynthia_baselines::{plan_with_optimus, OptimusModel};
use cynthia_cloud::billing::static_cluster_cost;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::profiler::{profile_workload, ProfileData};
use cynthia_core::provisioner::{plan, Goal, Plan, PlannerOptions};
use cynthia_models::{SyncMode, Workload};
use cynthia_train::{simulate, ClusterSpec, TrainJob};
use serde::Serialize;

/// What one strategy did for one goal.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyOutcome {
    pub strategy: String,
    /// e.g. `"9*m4.xlarge + 1ps"`; `"infeasible"` when no plan exists.
    pub plan: String,
    pub n_workers: u32,
    pub n_ps: u32,
    /// Actual (simulated) training time under the plan.
    pub actual_time_s: f64,
    /// Eq. (8) cost at the actual runtime.
    pub cost_usd: f64,
    pub met_deadline: bool,
    pub achieved_loss: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct GoalRow {
    pub workload: String,
    pub deadline_s: f64,
    pub target_loss: f64,
    pub cynthia: StrategyOutcome,
    pub optimus: StrategyOutcome,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    pub rows: Vec<GoalRow>,
}

/// Executes a plan on the ground-truth simulator and scores it.
pub(crate) fn execute_plan(
    cfg: &ExpConfig,
    workload: &Workload,
    the_plan: &Plan,
    goal: &Goal,
    strategy: &str,
) -> StrategyOutcome {
    let ty = cfg.catalog.expect(&the_plan.type_name);
    let configured = workload.clone().with_iterations(the_plan.total_updates);
    let report = simulate(&TrainJob {
        workload: &configured,
        cluster: ClusterSpec::homogeneous(ty, the_plan.n_workers, the_plan.n_ps),
        config: cfg.sim(0),
    });
    let cost = static_cluster_cost(
        ty.price_per_hour,
        the_plan.n_workers,
        ty.price_per_hour,
        the_plan.n_ps,
        report.total_time,
    );
    StrategyOutcome {
        strategy: strategy.to_string(),
        plan: format!(
            "{}*{} + {}ps",
            the_plan.n_workers, the_plan.type_name, the_plan.n_ps
        ),
        n_workers: the_plan.n_workers,
        n_ps: the_plan.n_ps,
        actual_time_s: report.total_time,
        cost_usd: cost,
        met_deadline: report.total_time <= goal.deadline_secs,
        achieved_loss: report.final_loss,
    }
}

fn infeasible(strategy: &str) -> StrategyOutcome {
    StrategyOutcome {
        strategy: strategy.to_string(),
        plan: "infeasible".into(),
        n_workers: 0,
        n_ps: 0,
        actual_time_s: f64::NAN,
        cost_usd: f64::NAN,
        met_deadline: false,
        achieved_loss: f64::NAN,
    }
}

/// Ground-truth loss model (as if fitted from a prior production run of
/// the job, which is the paper's assumption).
pub(crate) fn oracle_loss(workload: &Workload) -> FittedLossModel {
    FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    }
}

/// Runs both strategies for each `(deadline, loss)` goal.
pub(crate) fn run_goals(
    cfg: &ExpConfig,
    workload: &Workload,
    goals: &[(f64, f64)],
) -> Vec<GoalRow> {
    let profile: ProfileData = profile_workload(workload, cfg.m4(), cfg.seed);
    let loss = oracle_loss(workload);
    let optimus_model =
        OptimusModel::fit_from_simulation(workload, cfg.m4(), &[1, 2, 3, 4], cfg.seed);
    let opts = PlannerOptions::default();
    goals
        .iter()
        .map(|&(deadline_s, target_loss)| {
            let goal = Goal {
                deadline_secs: deadline_s,
                target_loss,
            };
            let cynthia = plan(&profile, &loss, &cfg.catalog, &goal, &opts)
                .map(|p| execute_plan(cfg, workload, &p, &goal, "Cynthia"))
                .unwrap_or_else(|| infeasible("Cynthia"));
            let optimus =
                plan_with_optimus(&optimus_model, &profile, &loss, &cfg.catalog, &goal, &opts)
                    .map(|p| execute_plan(cfg, workload, &p, &goal, "Optimus"))
                    .unwrap_or_else(|| infeasible("Optimus"));
            GoalRow {
                workload: workload.id(),
                deadline_s,
                target_loss,
                cynthia,
                optimus,
            }
        })
        .collect()
}

/// Runs the Fig. 11 goals: 90/120/180 min; cifar10 at loss 0.8, ResNet-32
/// (BSP) at loss 0.6.
pub fn run(cfg: &ExpConfig) -> Fig11 {
    let cifar = Workload::cifar10_bsp();
    let resnet = Workload::resnet32_asp().with_sync(SyncMode::Bsp);
    let mut rows = run_goals(cfg, &cifar, &[(5400.0, 0.8), (7200.0, 0.8), (10800.0, 0.8)]);
    rows.extend(run_goals(
        cfg,
        &resnet,
        &[(5400.0, 0.6), (7200.0, 0.6), (10800.0, 0.6)],
    ));
    Fig11 { rows }
}

/// Renders goal rows (shared by Figs. 11–13).
pub(crate) fn render_rows(title: &str, rows: &[GoalRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            [&r.cynthia, &r.optimus].into_iter().map(move |s| {
                vec![
                    r.workload.clone(),
                    format!("{:.0}", r.deadline_s),
                    format!("{:.2}", r.target_loss),
                    s.strategy.clone(),
                    s.plan.clone(),
                    if s.actual_time_s.is_nan() {
                        "-".into()
                    } else {
                        format!("{:.0}", s.actual_time_s)
                    },
                    if s.met_deadline { "yes" } else { "NO" }.into(),
                    if s.cost_usd.is_nan() {
                        "-".into()
                    } else {
                        format!("{:.3}", s.cost_usd)
                    },
                ]
            })
        })
        .collect();
    format!(
        "{title}\n{}",
        render_table(
            &["workload", "goal(s)", "loss", "strategy", "plan", "time(s)", "met", "cost($)"],
            &table
        )
    )
}

impl Fig11 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        render_rows(
            "Fig. 11: BSP goal attainment and cost (Cynthia vs modified Optimus)",
            &self.rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cynthia_meets_every_bsp_goal_and_saves_money() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        assert_eq!(f.rows.len(), 6);
        let mut cheaper = 0;
        for r in &f.rows {
            assert!(
                r.cynthia.met_deadline,
                "Cynthia must meet {} @ {:.0}s (took {:.0}s)",
                r.workload, r.deadline_s, r.cynthia.actual_time_s
            );
            assert!(
                r.cynthia.achieved_loss <= r.target_loss * 1.1,
                "loss goal missed: {} vs {}",
                r.cynthia.achieved_loss,
                r.target_loss
            );
            if !r.optimus.cost_usd.is_nan() && r.cynthia.cost_usd <= r.optimus.cost_usd * 1.001 {
                cheaper += 1;
            }
        }
        assert!(
            cheaper >= 4,
            "Cynthia should be at least as cheap for most goals: {cheaper}/6"
        );
    }
}
