//! Fig. 2 — network throughput of the PS node over time while training
//! the mnist DNN with BSP, at 1/2/4/8 workers.
//!
//! Shape reproduced: throughput grows with worker count and plateaus once
//! the PS saturates (the paper observes ≈ 70–90 MB/s; in our calibration
//! the PS CPU-ingest bound caps effective service around 70 MB/s).

use crate::common::ExpConfig;
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, TrainJob};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub n_workers: u32,
    /// `(time s, MB/s)` buckets.
    pub throughput: Vec<(f64, f64)>,
    pub mean_mbps: f64,
    pub peak_mbps: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    pub series: Vec<Series>,
}

/// Full-detail runs (the time series needs every flow).
pub fn run(cfg: &ExpConfig) -> Fig2 {
    let mut w = Workload::mnist_bsp();
    if cfg.quick {
        w.iterations = 1500;
    }
    let series = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| {
            let report = simulate(&TrainJob {
                workload: &w,
                cluster: ClusterSpec::homogeneous(cfg.m4(), n, 1),
                config: cynthia_train::SimConfig {
                    throughput_window: 10.0,
                    ..cfg.sim_exact(0)
                },
            });
            let throughput = report.ps_nic_series[0].clone();
            let peak = throughput.iter().map(|(_, r)| *r).fold(0.0, f64::max);
            Series {
                n_workers: n,
                mean_mbps: report.ps_nic_mean_mbps[0],
                peak_mbps: peak,
                throughput,
            }
        })
        .collect();
    Fig2 { series }
}

impl Fig2 {
    /// Renders each series as a sparkline-style row plus summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Fig. 2: PS NIC throughput, mnist DNN / BSP\n");
        for s in &self.series {
            let _ = writeln!(
                out,
                "1ps+{}worker(s): mean {:.1} MB/s, peak {:.1} MB/s",
                s.n_workers, s.mean_mbps, s.peak_mbps
            );
            let step = (s.throughput.len() / 12).max(1);
            let samples: Vec<String> = s
                .throughput
                .iter()
                .step_by(step)
                .take(12)
                .map(|(t, r)| format!("{t:.0}s:{r:.0}"))
                .collect();
            let _ = writeln!(out, "  {}", samples.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_then_saturates() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        let means: Vec<f64> = f.series.iter().map(|s| s.mean_mbps).collect();
        assert!(means[1] > means[0] * 1.5, "2 workers > 1: {means:?}");
        assert!(means[2] > means[1] * 1.05, "4 workers > 2: {means:?}");
        // Saturation: 8 workers adds essentially nothing over 4.
        assert!(
            (means[3] - means[2]).abs() < 0.15 * means[2],
            "8 workers should sit on the plateau: {means:?}"
        );
        // The plateau sits in the paper's ~70-90 MB/s band (our PS
        // CPU-ingest cap lands at ≈ 72 MB/s).
        assert!(
            (50.0..95.0).contains(&means[3]),
            "plateau out of band: {}",
            means[3]
        );
    }
}
