//! Fig. 9 — prediction accuracy in heterogeneous clusters (⌈n/2⌉
//! m4.xlarge + ⌊n/2⌋ m1.xlarge stragglers).
//!
//! Shapes reproduced:
//! * (a) ResNet-32 / ASP keeps improving with more (mixed) workers.
//! * (b) mnist DNN / BSP improves slightly then degrades once the PS
//!   bottlenecks.
//! * Cynthia tracks both within a few percent because Eq. (4) paces BSP
//!   by the slowest worker and ASP throughput sums per-worker rates.

use crate::common::{pct, rel_err, render_table, ExpConfig};
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::profile_workload;
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub n_workers: u32,
    pub observed_s: f64,
    pub cynthia_s: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    pub workload: String,
    pub rows: Vec<Row>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    pub resnet_asp: Panel,
    pub mnist_bsp: Panel,
}

fn panel(cfg: &ExpConfig, workload: &Workload, counts: &[u32], iterations: u64) -> Panel {
    let w = workload.clone().with_iterations(iterations);
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let model = CynthiaModel::new(profile);
    let rows = counts
        .iter()
        .map(|&n| {
            let spec = ClusterSpec::heterogeneous(cfg.m4(), cfg.m1(), n, 1);
            let observed = cfg.time_stats(&w, &spec).mean;
            let shape = ClusterShape::from_spec(&spec);
            Row {
                n_workers: n,
                observed_s: observed,
                cynthia_s: model.predict_time(&shape, w.iterations),
            }
        })
        .collect();
    Panel {
        workload: w.id(),
        rows,
    }
}

/// Runs both panels.
pub fn run(cfg: &ExpConfig) -> Fig9 {
    let resnet_iters = if cfg.quick { 300 } else { 3000 };
    let mnist_iters = if cfg.quick { 2000 } else { 10_000 };
    Fig9 {
        resnet_asp: panel(cfg, &Workload::resnet32_asp(), &[4, 7, 9], resnet_iters),
        mnist_bsp: panel(cfg, &Workload::mnist_bsp(), &[2, 4, 8], mnist_iters),
    }
}

impl Fig9 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let render_panel = |p: &Panel| {
            let rows: Vec<Vec<String>> = p
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.n_workers.to_string(),
                        format!("{:.0}", r.observed_s),
                        format!(
                            "{:.0} ({})",
                            r.cynthia_s,
                            pct(rel_err(r.cynthia_s, r.observed_s))
                        ),
                    ]
                })
                .collect();
            format!(
                "{}\n{}",
                p.workload,
                render_table(&["workers", "observed(s)", "Cynthia"], &rows)
            )
        };
        format!(
            "Fig. 9: heterogeneous-cluster prediction (⌈n/2⌉ m4 + ⌊n/2⌋ m1)\n(a) {}\n(b) {}",
            render_panel(&self.resnet_asp),
            render_panel(&self.mnist_bsp)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_predictions_track_observations() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        for r in &f.resnet_asp.rows {
            let e = rel_err(r.cynthia_s, r.observed_s).abs();
            assert!(
                e < 0.15,
                "ASP n={}: {:.1}% error ({} vs {})",
                r.n_workers,
                e * 100.0,
                r.cynthia_s,
                r.observed_s
            );
        }
        // BSP heterogeneity adds a wave effect the model cannot see:
        // stragglers split each chunk's gradient arrivals into two waves
        // and the PS idles between them, so errors run a little higher
        // (documented in EXPERIMENTS.md).
        for r in &f.mnist_bsp.rows {
            let e = rel_err(r.cynthia_s, r.observed_s).abs();
            assert!(
                e < 0.25,
                "BSP n={}: {:.1}% error ({} vs {})",
                r.n_workers,
                e * 100.0,
                r.cynthia_s,
                r.observed_s
            );
        }
        // (a) ASP keeps improving.
        let a = &f.resnet_asp.rows;
        assert!(a.last().unwrap().observed_s < a[0].observed_s);
    }
}
