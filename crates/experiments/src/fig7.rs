//! Fig. 7 — network throughput of the PS node while training VGG-19 with
//! ASP in a homogeneous cluster, at 4/7/9 workers.
//!
//! Shape reproduced: throughput scales with workers until the PS NIC
//! saturates around 9 workers (the paper observes ≈ 110 MB/s; our NIC
//! calibration is 118 MB/s).

use crate::common::ExpConfig;
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, TrainJob};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub n_workers: u32,
    pub throughput: Vec<(f64, f64)>,
    pub mean_mbps: f64,
    pub peak_mbps: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    pub series: Vec<Series>,
    pub nic_capacity_mbps: f64,
}

/// Full-detail ASP runs at 4/7/9 workers.
pub fn run(cfg: &ExpConfig) -> Fig7 {
    let mut w = Workload::vgg19_asp();
    if cfg.quick {
        w.iterations = 200;
    }
    let series = [4u32, 7, 9]
        .iter()
        .map(|&n| {
            let report = simulate(&TrainJob {
                workload: &w,
                cluster: ClusterSpec::homogeneous(cfg.m4(), n, 1),
                config: cynthia_train::SimConfig {
                    throughput_window: 30.0,
                    ..cfg.sim_exact(0)
                },
            });
            let throughput = report.ps_nic_series[0].clone();
            let peak = throughput.iter().map(|(_, r)| *r).fold(0.0, f64::max);
            Series {
                n_workers: n,
                mean_mbps: report.ps_nic_mean_mbps[0],
                peak_mbps: peak,
                throughput,
            }
        })
        .collect();
    Fig7 {
        series,
        nic_capacity_mbps: cfg.m4().nic_mbps,
    }
}

impl Fig7 {
    /// Renders summaries plus samples.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "Fig. 7: PS NIC throughput, VGG-19 / ASP (NIC capacity {} MB/s)\n",
            self.nic_capacity_mbps
        );
        for s in &self.series {
            let _ = writeln!(
                out,
                "1ps+{}workers: mean {:.1} MB/s, peak {:.1} MB/s",
                s.n_workers, s.mean_mbps, s.peak_mbps
            );
            let step = (s.throughput.len() / 10).max(1);
            let samples: Vec<String> = s
                .throughput
                .iter()
                .step_by(step)
                .take(10)
                .map(|(t, r)| format!("{t:.0}s:{r:.0}"))
                .collect();
            let _ = writeln!(out, "  {}", samples.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_saturates_at_nine_workers() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        let m4 = f.series.iter().find(|s| s.n_workers == 4).unwrap();
        let m9 = f.series.iter().find(|s| s.n_workers == 9).unwrap();
        assert!(
            m4.mean_mbps < 0.65 * f.nic_capacity_mbps,
            "4 workers unsaturated: {}",
            m4.mean_mbps
        );
        assert!(
            m9.peak_mbps > 0.8 * f.nic_capacity_mbps,
            "9 workers should hit the cap: {}",
            m9.peak_mbps
        );
        assert!(m9.mean_mbps > m4.mean_mbps * 1.5);
    }
}
