//! Sensitivity study — how robust are the predictions to conditions the
//! model was never told about?
//!
//! Two stressors:
//!
//! * **compute jitter** — per-segment duration noise (shared-tenant CPU
//!   variance). The paper repeats runs three times to average this out;
//!   here we sweep the coefficient of variation from the calibrated 3%
//!   up to 15% and check the error stays bounded (BSP barriers integrate
//!   jitter into a systematic max-of-n slowdown, so error grows slowly
//!   but visibly).
//! * **NIC interference** — a fraction of each PS NIC consumed by
//!   co-located tenants. The model profiles on a quiet network, so its
//!   error grows with interference in communication-bound shapes; the
//!   sweep locates the robustness boundary (≈ where interference exceeds
//!   the shape's bandwidth slack).

use crate::common::{render_table, ExpConfig};
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::profile_workload;
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, SimConfig, TrainJob};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub stressor: String,
    pub level: f64,
    pub observed_s: f64,
    pub predicted_s: f64,
    pub error: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Sensitivity {
    pub rows: Vec<Row>,
}

/// Sweeps both stressors on a mid-bottleneck mnist/BSP shape.
pub fn run(cfg: &ExpConfig) -> Sensitivity {
    let w = Workload::mnist_bsp().with_iterations(if cfg.quick { 1500 } else { 4000 });
    let n = 6u32;
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let model = CynthiaModel::new(profile);
    let shape = ClusterShape::homogeneous(cfg.m4(), n, 1);
    let predicted = model.predict_time(&shape, w.iterations);

    // The stressor grid is embarrassingly parallel: every point owns its
    // SimConfig, so the sweep fans out across threads in grid order.
    use rayon::prelude::*;
    let mut grid: Vec<(&str, f64, SimConfig)> = Vec::new();
    for cv in [0.0, 0.03, 0.08, 0.15] {
        let mut c = cfg.sim(0);
        c.jitter_cv = cv;
        grid.push(("jitter-cv", cv, c));
    }
    for interference in [0.0, 0.1, 0.2, 0.35] {
        let mut c = cfg.sim(0);
        c.nic_interference = interference;
        grid.push(("nic-interference", interference, c));
    }
    let rows = grid
        .into_par_iter()
        .map(|(stressor, level, config)| {
            let observed = simulate(&TrainJob {
                workload: &w,
                cluster: ClusterSpec::homogeneous(cfg.m4(), n, 1),
                config,
            })
            .total_time;
            Row {
                stressor: stressor.to_string(),
                level,
                observed_s: observed,
                predicted_s: predicted,
                error: (predicted - observed) / observed,
            }
        })
        .collect();
    Sensitivity { rows }
}

impl Sensitivity {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.stressor.clone(),
                    format!("{:.2}", r.level),
                    format!("{:.0}", r.observed_s),
                    format!("{:.0}", r.predicted_s),
                    format!("{:+.1}%", r.error * 100.0),
                ]
            })
            .collect();
        format!(
            "Sensitivity: prediction error under unmodelled conditions\n{}",
            render_table(
                &["stressor", "level", "observed(s)", "predicted(s)", "error"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_conditions_are_accurate_and_errors_grow_smoothly() {
        let cfg = ExpConfig::quick();
        let s = run(&cfg);
        // At the calibrated operating point (3% jitter, no interference)
        // the prediction is tight.
        let base = s
            .rows
            .iter()
            .find(|r| r.stressor == "jitter-cv" && (r.level - 0.03).abs() < 1e-9)
            .unwrap();
        assert!(
            base.error.abs() < 0.10,
            "baseline error {:.1}%",
            base.error * 100.0
        );
        // Interference slows training, so the (uninformed) prediction
        // becomes optimistic monotonically.
        let interf: Vec<&Row> = s
            .rows
            .iter()
            .filter(|r| r.stressor == "nic-interference")
            .collect();
        for pair in interf.windows(2) {
            assert!(
                pair[1].observed_s >= pair[0].observed_s * 0.999,
                "more interference cannot speed things up: {pair:?}"
            );
        }
        // At 35% stolen bandwidth the error is clearly visible (the study
        // is useful) but not catastrophic (service degrades gracefully).
        let worst = interf.last().unwrap();
        assert!(
            worst.error < -0.03 && worst.error > -0.60,
            "worst-case error {:.1}%",
            worst.error * 100.0
        );
    }
}
