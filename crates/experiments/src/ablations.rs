//! Ablation study — what each ingredient of the Cynthia model buys.
//!
//! DESIGN.md calls out three design choices; this experiment quantifies
//! each one's contribution to prediction accuracy against the ground-truth
//! simulator:
//!
//! * **overlap** — Eq. (3)'s `max(comp, comm)` for BSP vs the additive
//!   composition the baselines use.
//! * **bottleneck** — the PS service-bandwidth term (CPU-ingest bound +
//!   ASP closed-network queueing) vs bandwidth-only Eq. (5).
//! * **bounds** — Theorem 4.1's search-band narrowing: candidates
//!   evaluated with and without it (Sec. 5.3's complexity claim).

use crate::common::{render_table, ExpConfig};
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::profile_workload;
use cynthia_core::provisioner::{plan, Goal, PlannerOptions};
use cynthia_models::Workload;
use cynthia_sim::metrics::mape;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct ModelAblationRow {
    pub workload: String,
    /// Mean absolute prediction error over the sweep, per variant.
    pub full_mape: f64,
    pub no_overlap_mape: f64,
    pub no_bottleneck_mape: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct BoundsAblation {
    pub with_bounds_candidates: u32,
    pub without_bounds_candidates: u32,
}

#[derive(Debug, Clone, Serialize)]
pub struct Ablations {
    pub model_rows: Vec<ModelAblationRow>,
    pub bounds: BoundsAblation,
}

fn model_row(
    cfg: &ExpConfig,
    workload: &Workload,
    counts: &[u32],
    iterations: u64,
) -> ModelAblationRow {
    let w = workload.clone().with_iterations(iterations);
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let full = CynthiaModel::new(profile.clone());
    let no_overlap = CynthiaModel {
        overlap: false,
        ..full.clone()
    };
    let no_bottleneck = CynthiaModel {
        bottleneck_aware: false,
        ..full.clone()
    };
    let mut observed = Vec::new();
    let mut preds: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for &n in counts {
        let obs = cfg
            .time_stats(&w, &ClusterSpec::homogeneous(cfg.m4(), n, 1))
            .mean;
        observed.push(obs);
        let shape = ClusterShape::homogeneous(cfg.m4(), n, 1);
        preds[0].push(full.predict_time(&shape, w.iterations));
        preds[1].push(no_overlap.predict_time(&shape, w.iterations));
        preds[2].push(no_bottleneck.predict_time(&shape, w.iterations));
    }
    ModelAblationRow {
        workload: w.id(),
        full_mape: mape(&preds[0], &observed),
        no_overlap_mape: mape(&preds[1], &observed),
        no_bottleneck_mape: mape(&preds[2], &observed),
    }
}

/// Runs the ablation sweeps.
pub fn run(cfg: &ExpConfig) -> Ablations {
    let iters = if cfg.quick { 1000 } else { 4000 };
    let model_rows = vec![
        model_row(cfg, &Workload::mnist_bsp(), &[2, 4, 8], iters),
        model_row(cfg, &Workload::cifar10_bsp(), &[4, 9, 13], iters.min(2000)),
        model_row(
            cfg,
            &Workload::vgg19_asp(),
            &[7, 9, 12],
            if cfg.quick { 300 } else { 1000 },
        ),
    ];

    let w = Workload::cifar10_bsp();
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let loss = cynthia_core::loss_model::FittedLossModel {
        sync: w.sync,
        beta0: w.convergence.beta0,
        beta1: w.convergence.beta1,
        r_squared: 1.0,
    };
    let goal = Goal {
        deadline_secs: 3600.0,
        target_loss: 0.7,
    };
    let with_bounds = plan(
        &profile,
        &loss,
        &cfg.catalog,
        &goal,
        &PlannerOptions::default(),
    )
    .map(|p| p.candidates_evaluated)
    .unwrap_or(0);
    let without_bounds = plan(
        &profile,
        &loss,
        &cfg.catalog,
        &goal,
        &PlannerOptions {
            use_bounds: false,
            max_workers: 64,
            ..PlannerOptions::default()
        },
    )
    .map(|p| p.candidates_evaluated)
    .unwrap_or(0);

    Ablations {
        model_rows,
        bounds: BoundsAblation {
            with_bounds_candidates: with_bounds,
            without_bounds_candidates: without_bounds,
        },
    }
}

impl Ablations {
    /// Renders both studies.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .model_rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    format!("{:.1}%", r.full_mape * 100.0),
                    format!("{:.1}%", r.no_overlap_mape * 100.0),
                    format!("{:.1}%", r.no_bottleneck_mape * 100.0),
                ]
            })
            .collect();
        format!(
            "Ablations: prediction MAPE by model variant\n{}\nTheorem 4.1 bounds: {} candidates evaluated vs {} without\n",
            render_table(
                &["workload", "full", "no-overlap", "no-bottleneck"],
                &rows
            ),
            self.bounds.with_bounds_candidates,
            self.bounds.without_bounds_candidates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ingredient_helps_where_it_should() {
        let cfg = ExpConfig::quick();
        let a = run(&cfg);
        // Overlap matters for the BSP workloads.
        for r in &a.model_rows {
            assert!(
                r.full_mape < 0.12,
                "{}: full model error {:.1}%",
                r.workload,
                r.full_mape * 100.0
            );
            if r.workload.contains("BSP") {
                assert!(
                    r.no_overlap_mape > r.full_mape,
                    "{}: overlap ablation should hurt ({:.3} vs {:.3})",
                    r.workload,
                    r.no_overlap_mape,
                    r.full_mape
                );
            }
        }
        // Bottleneck awareness matters for mnist (CPU-bound PS) and VGG
        // (NIC saturation + queueing).
        let mnist = &a.model_rows[0];
        assert!(
            mnist.no_bottleneck_mape > 2.0 * mnist.full_mape,
            "{mnist:?}"
        );
        let vgg = &a.model_rows[2];
        assert!(vgg.no_bottleneck_mape > vgg.full_mape, "{vgg:?}");
        // Bounds shrink the search space by a lot.
        assert!(
            a.bounds.with_bounds_candidates * 2 < a.bounds.without_bounds_candidates,
            "{:?}",
            a.bounds
        );
    }
}
