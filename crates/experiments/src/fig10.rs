//! Fig. 10 — prediction accuracy with multiple PS nodes (1/2/4).
//!
//! Shapes reproduced:
//! * (a) ResNet-32 / ASP: extra PS nodes barely help (the workload cannot
//!   saturate one PS).
//! * (b) mnist DNN / BSP: extra PS nodes relieve the CPU/NIC bottleneck
//!   and visibly speed training at high worker counts.
//! * Cynthia's predictions track both, which is what justifies Theorem
//!   4.1's minimum-PS rule.

use crate::common::{pct, rel_err, render_table, ExpConfig};
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::profile_workload;
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub n_ps: u32,
    pub n_workers: u32,
    pub observed_s: f64,
    pub cynthia_s: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    pub workload: String,
    pub rows: Vec<Row>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    pub resnet_asp: Panel,
    pub mnist_bsp: Panel,
}

fn panel(cfg: &ExpConfig, workload: &Workload, counts: &[u32], iterations: u64) -> Panel {
    let w = workload.clone().with_iterations(iterations);
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let model = CynthiaModel::new(profile);
    let mut rows = Vec::new();
    for &n_ps in &[1u32, 2, 4] {
        for &n in counts {
            let spec = ClusterSpec::homogeneous(cfg.m4(), n, n_ps);
            let observed = cfg.time_stats(&w, &spec).mean;
            let shape = ClusterShape::homogeneous(cfg.m4(), n, n_ps);
            rows.push(Row {
                n_ps,
                n_workers: n,
                observed_s: observed,
                cynthia_s: model.predict_time(&shape, w.iterations),
            });
        }
    }
    Panel {
        workload: w.id(),
        rows,
    }
}

/// Runs both panels.
pub fn run(cfg: &ExpConfig) -> Fig10 {
    let resnet_iters = if cfg.quick { 300 } else { 3000 };
    let mnist_iters = if cfg.quick { 2000 } else { 10_000 };
    Fig10 {
        resnet_asp: panel(cfg, &Workload::resnet32_asp(), &[4, 7, 9], resnet_iters),
        mnist_bsp: panel(cfg, &Workload::mnist_bsp(), &[4, 8, 16], mnist_iters),
    }
}

impl Fig10 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let render_panel = |p: &Panel| {
            let rows: Vec<Vec<String>> = p
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.n_ps.to_string(),
                        r.n_workers.to_string(),
                        format!("{:.0}", r.observed_s),
                        format!(
                            "{:.0} ({})",
                            r.cynthia_s,
                            pct(rel_err(r.cynthia_s, r.observed_s))
                        ),
                    ]
                })
                .collect();
            format!(
                "{}\n{}",
                p.workload,
                render_table(&["PS", "workers", "observed(s)", "Cynthia"], &rows)
            )
        };
        format!(
            "Fig. 10: multi-PS prediction\n(a) {}\n(b) {}",
            render_panel(&self.resnet_asp),
            render_panel(&self.mnist_bsp)
        )
    }

    #[cfg(test)]
    fn time(panel: &Panel, n_ps: u32, n: u32) -> f64 {
        panel
            .rows
            .iter()
            .find(|r| r.n_ps == n_ps && r.n_workers == n)
            .map(|r| r.observed_s)
            .expect("row exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_ps_helps_mnist_but_not_resnet() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        // (b) mnist at 16 workers: 4 PS much faster than 1 PS.
        let m1 = Fig10::time(&f.mnist_bsp, 1, 16);
        let m4 = Fig10::time(&f.mnist_bsp, 4, 16);
        assert!(m4 < 0.6 * m1, "4 PS should relieve mnist: {m1} vs {m4}");
        // (a) ResNet at 9 workers: 4 PS barely moves the needle.
        let r1 = Fig10::time(&f.resnet_asp, 1, 9);
        let r4 = Fig10::time(&f.resnet_asp, 4, 9);
        assert!(
            r4 > 0.85 * r1,
            "extra PS should barely help ResNet ASP: {r1} vs {r4}"
        );
    }

    #[test]
    fn predictions_track_multi_ps_configurations() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        for r in f.resnet_asp.rows.iter().chain(&f.mnist_bsp.rows) {
            let e = rel_err(r.cynthia_s, r.observed_s).abs();
            assert!(
                e < 0.15,
                "nps={} n={}: {:.1}% ({} vs {})",
                r.n_ps,
                r.n_workers,
                e * 100.0,
                r.cynthia_s,
                r.observed_s
            );
        }
    }
}
