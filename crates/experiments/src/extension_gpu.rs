//! Extension — the paper's future work (Sec. 7): ResNet-50 on ImageNet
//! and GPU clusters.
//!
//! The framework needs no new mechanisms: GPU instances are catalog
//! entries whose capabilities live in the same capability-table units as
//! the CPU types, so one profile (taken on a p2.xlarge baseline)
//! transfers across the whole catalog exactly like Fig. 8's cross-type
//! prediction. The experiment asks for ResNet-50/BSP to a target loss
//! within a deadline and compares:
//!
//! * the CPU-only catalog — infeasible at any sane scale (per-iteration
//!   work is ~300 capability-GFLOP), and
//! * the GPU catalog — where Algorithm 1 picks a small V100 or K80
//!   cluster, which the ground-truth simulator then validates.

use crate::common::{render_table, ExpConfig};
use cynthia_cloud::catalog::gpu_catalog;
use cynthia_core::loss_model::FittedLossModel;
use cynthia_core::profiler::profile_workload;
use cynthia_core::provisioner::{plan, Goal, Plan, PlannerOptions};
use cynthia_models::Workload;
use cynthia_train::{simulate, ClusterSpec, TrainJob};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct ExtensionGpu {
    /// Plan from the CPU-only catalog (expected `None` for tight goals).
    pub cpu_plan: Option<Plan>,
    /// Plan from the GPU-extended catalog.
    pub gpu_plan: Option<Plan>,
    /// Simulated wall-clock of the GPU plan.
    pub gpu_actual_time_s: f64,
    /// Simulated final loss under the GPU plan.
    pub gpu_actual_loss: f64,
    pub goal_deadline_s: f64,
    pub goal_loss: f64,
    pub met: bool,
}

/// Provision ResNet-50/BSP to loss ≤ 2.5 within 24 hours.
pub fn run(cfg: &ExpConfig) -> ExtensionGpu {
    let workload = Workload::resnet50_bsp();
    let goal = Goal {
        deadline_secs: 24.0 * 3600.0,
        target_loss: 2.5,
    };
    let catalog = gpu_catalog();
    // Profile once on the GPU baseline (p2.xlarge); the capability table
    // carries the prediction to every other type, CPU or GPU.
    let profile = profile_workload(&workload, catalog.expect("p2.xlarge"), cfg.seed);
    let loss = FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    };
    let opts = PlannerOptions::default();
    let cpu_plan = plan(
        &profile,
        &loss,
        &cynthia_cloud::default_catalog(),
        &goal,
        &opts,
    );
    let gpu_plan = plan(&profile, &loss, &catalog, &goal, &opts);

    let (actual_time, actual_loss, met) = match &gpu_plan {
        Some(p) => {
            let ty = catalog.expect(&p.type_name);
            let configured = workload.clone().with_iterations(p.total_updates);
            let report = simulate(&TrainJob {
                workload: &configured,
                cluster: ClusterSpec::homogeneous(ty, p.n_workers, p.n_ps),
                config: cfg.sim(0),
            });
            (
                report.total_time,
                report.final_loss,
                report.total_time <= goal.deadline_secs
                    && report.final_loss <= goal.target_loss * 1.05,
            )
        }
        None => (f64::NAN, f64::NAN, false),
    };
    ExtensionGpu {
        cpu_plan,
        gpu_plan,
        gpu_actual_time_s: actual_time,
        gpu_actual_loss: actual_loss,
        goal_deadline_s: goal.deadline_secs,
        goal_loss: goal.target_loss,
        met,
    }
}

impl ExtensionGpu {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let fmt_plan = |p: &Option<Plan>| match p {
            Some(p) => vec![
                format!("{}×{} + {}ps", p.n_workers, p.type_name, p.n_ps),
                format!("{:.0}", p.predicted_time),
                format!("{:.2}", p.predicted_cost),
            ],
            None => vec!["infeasible".into(), "-".into(), "-".into()],
        };
        let mut rows = Vec::new();
        let mut cpu = vec!["CPU catalog".to_string()];
        cpu.extend(fmt_plan(&self.cpu_plan));
        rows.push(cpu);
        let mut gpu = vec!["GPU catalog".to_string()];
        gpu.extend(fmt_plan(&self.gpu_plan));
        rows.push(gpu);
        format!(
            "Extension (Sec. 7): ResNet-50/ImageNet to loss ≤ {} within {:.0}h\n{}\
             GPU plan executed: {:.0}s, final loss {:.2} -> goal met: {}\n",
            self.goal_loss,
            self.goal_deadline_s / 3600.0,
            render_table(&["catalog", "plan", "pred time(s)", "pred cost($)"], &rows),
            self.gpu_actual_time_s,
            self.gpu_actual_loss,
            self.met
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpus_unlock_the_imagenet_goal() {
        let cfg = ExpConfig::quick();
        let e = run(&cfg);
        assert!(
            e.cpu_plan.is_none(),
            "a 24h ImageNet deadline should exceed the CPU catalog: {:?}",
            e.cpu_plan
        );
        let gpu = e.gpu_plan.as_ref().expect("GPU catalog must be feasible");
        assert!(
            gpu.type_name.starts_with('p'),
            "planner should pick a GPU type: {gpu:?}"
        );
        assert!(e.met, "simulated run must meet the goal: {e:?}");
        // Small cluster, not a fleet: GPUs change the economics.
        assert!(gpu.n_workers <= 16, "{gpu:?}");
    }
}
