//! Fig. 12 — varying the target loss (0.8/0.7/0.6) for the cifar10 DNN
//! with BSP under a 60-minute deadline.
//!
//! Shapes reproduced:
//! * Tighter loss targets need more iterations, hence more resources.
//! * At the tightest target Cynthia provisions a second PS node to keep
//!   communication off the critical path (the paper's headline moment),
//!   while Optimus either misses the deadline or pays substantially more
//!   — the paper reports 4.2–50.6% savings.

use crate::common::ExpConfig;
use crate::fig11::{render_rows, run_goals, GoalRow};
use cynthia_models::Workload;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    pub rows: Vec<GoalRow>,
}

/// Runs the target-loss sweep.
pub fn run(cfg: &ExpConfig) -> Fig12 {
    let cifar = Workload::cifar10_bsp();
    let rows = run_goals(cfg, &cifar, &[(3600.0, 0.8), (3600.0, 0.7), (3600.0, 0.6)]);
    Fig12 { rows }
}

impl Fig12 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        render_rows(
            "Fig. 12: cifar10 DNN / BSP under a 60-min deadline, loss targets 0.8/0.7/0.6",
            &self.rows,
        )
    }

    /// Cynthia's cost saving vs Optimus per goal (NaN when Optimus is
    /// infeasible).
    pub fn savings(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| 1.0 - r.cynthia.cost_usd / r.optimus.cost_usd)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_loss_targets_escalate_resources() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        assert_eq!(f.rows.len(), 3);
        for r in &f.rows {
            assert!(r.cynthia.met_deadline, "{:?}", r.cynthia);
        }
        // Resource escalation with tighter targets.
        let nodes: Vec<u32> = f
            .rows
            .iter()
            .map(|r| r.cynthia.n_workers + r.cynthia.n_ps)
            .collect();
        assert!(
            nodes[2] > nodes[0],
            "loss 0.6 should need more nodes than 0.8: {nodes:?}"
        );
        // The tightest goal pushes Cynthia to 2 PS (the paper's story).
        assert!(
            f.rows[2].cynthia.n_ps >= 2,
            "expected a second PS at loss 0.6: {:?}",
            f.rows[2].cynthia
        );
    }
}
