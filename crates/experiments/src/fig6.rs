//! Fig. 6 — observed vs predicted training time under the Cynthia,
//! Optimus, and Paleo models.
//!
//! Shapes reproduced:
//! * (a) VGG-19 / ASP at 7/9/12 workers: past ~9 workers the PS NIC
//!   saturates; Cynthia stays accurate, Optimus/Paleo under-predict and
//!   their error grows with the worker count.
//! * (b) cifar10 DNN / BSP at 4/9/12 workers: no hard bottleneck, so all
//!   models are in the ballpark, but the additive (non-overlapping)
//!   baselines over-predict.

use crate::common::{pct, rel_err, render_table, ExpConfig};
use cynthia_baselines::{OptimusModel, PaleoModel};
use cynthia_core::perf_model::{ClusterShape, CynthiaModel, PerfModel};
use cynthia_core::profiler::profile_workload;
use cynthia_models::Workload;
use cynthia_train::ClusterSpec;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub n_workers: u32,
    pub observed_s: f64,
    pub cynthia_s: f64,
    pub optimus_s: f64,
    pub paleo_s: f64,
}

impl Row {
    /// Signed relative errors `(cynthia, optimus, paleo)`.
    pub fn errors(&self) -> (f64, f64, f64) {
        (
            rel_err(self.cynthia_s, self.observed_s),
            rel_err(self.optimus_s, self.observed_s),
            rel_err(self.paleo_s, self.observed_s),
        )
    }
}

#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    pub workload: String,
    pub rows: Vec<Row>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// (a) VGG-19 with ASP.
    pub vgg_asp: Panel,
    /// (b) cifar10 DNN with BSP.
    pub cifar_bsp: Panel,
}

pub(crate) fn panel(
    cfg: &ExpConfig,
    workload: &Workload,
    counts: &[u32],
    iterations: u64,
) -> Panel {
    let w = workload.clone().with_iterations(iterations);
    let profile = profile_workload(&w, cfg.m4(), cfg.seed);
    let cynthia = CynthiaModel::new(profile.clone());
    let optimus = OptimusModel::fit_from_simulation(&w, cfg.m4(), &[1, 2, 3, 4], cfg.seed);
    let paleo = PaleoModel::new(profile);
    let rows = counts
        .iter()
        .map(|&n| {
            let observed = cfg
                .time_stats(&w, &ClusterSpec::homogeneous(cfg.m4(), n, 1))
                .mean;
            let shape = ClusterShape::homogeneous(cfg.m4(), n, 1);
            Row {
                n_workers: n,
                observed_s: observed,
                cynthia_s: cynthia.predict_time(&shape, w.iterations),
                optimus_s: optimus.predict_time(&shape, w.iterations),
                paleo_s: paleo.predict_time(&shape, w.iterations),
            }
        })
        .collect();
    Panel {
        workload: w.id(),
        rows,
    }
}

/// Runs both panels.
pub fn run(cfg: &ExpConfig) -> Fig6 {
    let iters = if cfg.quick { 400 } else { 1000 };
    Fig6 {
        vgg_asp: panel(cfg, &Workload::vgg19_asp(), &[7, 9, 12], iters),
        cifar_bsp: panel(cfg, &Workload::cifar10_bsp(), &[4, 9, 12], iters.max(2000)),
    }
}

impl Panel {
    /// Renders one panel with error percentages.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let (ec, eo, ep) = r.errors();
                vec![
                    r.n_workers.to_string(),
                    format!("{:.0}", r.observed_s),
                    format!("{:.0} ({})", r.cynthia_s, pct(ec)),
                    format!("{:.0} ({})", r.optimus_s, pct(eo)),
                    format!("{:.0} ({})", r.paleo_s, pct(ep)),
                ]
            })
            .collect();
        format!(
            "{}\n{}",
            self.workload,
            render_table(
                &["workers", "observed(s)", "Cynthia", "Optimus", "Paleo"],
                &rows
            )
        )
    }
}

impl Fig6 {
    /// Renders both panels.
    pub fn render(&self) -> String {
        format!(
            "Fig. 6: observed vs predicted training time\n(a) {}\n(b) {}",
            self.vgg_asp.render(),
            self.cifar_bsp.render()
        )
    }

    /// Mean absolute error of each model over both panels:
    /// `(cynthia, optimus, paleo)`.
    pub fn mean_abs_errors(&self) -> (f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0);
        let mut count = 0.0;
        for r in self.vgg_asp.rows.iter().chain(&self.cifar_bsp.rows) {
            let (c, o, p) = r.errors();
            acc = (acc.0 + c.abs(), acc.1 + o.abs(), acc.2 + p.abs());
            count += 1.0;
        }
        (acc.0 / count, acc.1 / count, acc.2 / count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cynthia_beats_both_baselines_overall() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        let (c, o, p) = f.mean_abs_errors();
        assert!(c < 0.12, "Cynthia mean error too large: {:.1}%", c * 100.0);
        assert!(c < o, "Cynthia {c} should beat Optimus {o}");
        assert!(c < p, "Cynthia {c} should beat Paleo {p}");
    }

    #[test]
    fn baselines_underpredict_the_saturated_vgg_regime() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        let r12 = f.vgg_asp.rows.iter().find(|r| r.n_workers == 12).unwrap();
        let (_, eo, ep) = r12.errors();
        assert!(eo < -0.05, "Optimus should underpredict at 12: {}", pct(eo));
        assert!(ep < -0.05, "Paleo should underpredict at 12: {}", pct(ep));
    }
}
