//! Table 1 — configurations of the four DDNN training workloads.
//!
//! An input echo rather than a result: it documents exactly what the
//! other experiments train, including the substitution-relevant constants
//! (capability-unit `w_iter`, parameter size, delivered kernel
//! efficiency).

use crate::common::render_table;
use cynthia_models::Workload;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub workload: String,
    pub iterations: u64,
    pub batch_size: u32,
    pub dataset: String,
    pub sync: String,
    pub w_iter_gflops: f64,
    pub param_mb: f64,
    pub delivered_efficiency: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    pub rows: Vec<Row>,
}

/// Collects the Table 1 configurations.
pub fn run() -> Table1 {
    let rows = Workload::table1()
        .into_iter()
        .map(|w| Row {
            workload: w.model.name.clone(),
            iterations: w.iterations,
            batch_size: w.batch_size,
            dataset: w.dataset.name.clone(),
            sync: w.sync.label().to_string(),
            w_iter_gflops: w.w_iter_gflops,
            param_mb: w.param_mb(),
            delivered_efficiency: w.delivered_efficiency(),
        })
        .collect();
    Table1 { rows }
}

impl Table1 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.iterations.to_string(),
                    r.batch_size.to_string(),
                    r.dataset.clone(),
                    r.sync.clone(),
                    format!("{:.3}", r.w_iter_gflops),
                    format!("{:.2}", r.param_mb),
                    format!("{:.3}", r.delivered_efficiency),
                ]
            })
            .collect();
        render_table(
            &[
                "workload",
                "#iterations",
                "batch",
                "dataset",
                "sync",
                "w_iter(GF)",
                "g_param(MB)",
                "kernel-eff",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_has_four_rows_matching_the_paper() {
        let t = super::run();
        assert_eq!(t.rows.len(), 4);
        let mnist = t
            .rows
            .iter()
            .find(|r| r.workload.contains("mnist"))
            .unwrap();
        assert_eq!(mnist.iterations, 10_000);
        assert_eq!(mnist.batch_size, 512);
        assert_eq!(mnist.sync, "BSP");
        assert!(super::run().render().contains("VGG-19"));
    }
}
