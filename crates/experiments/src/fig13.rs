//! Fig. 13 — ASP goal attainment and cost: VGG-19 with target loss 0.8
//! under 30/60/90-minute deadlines.
//!
//! Shapes reproduced:
//! * Cynthia meets every deadline; for tight deadlines it provisions
//!   enough capacity to clear the PS NIC saturation (adding PS nodes
//!   when needed).
//! * Optimus, blind to the saturation floor, under-provisions for tight
//!   goals and misses them (Fig. 13(a)'s failures), while costing at
//!   least as much elsewhere.

use crate::common::ExpConfig;
use crate::fig11::{render_rows, run_goals, GoalRow};
use cynthia_models::Workload;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Fig13 {
    pub rows: Vec<GoalRow>,
}

/// Runs the ASP deadline sweep.
pub fn run(cfg: &ExpConfig) -> Fig13 {
    let vgg = Workload::vgg19_asp();
    let rows = run_goals(cfg, &vgg, &[(1800.0, 0.8), (3600.0, 0.8), (5400.0, 0.8)]);
    Fig13 { rows }
}

impl Fig13 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        render_rows(
            "Fig. 13: VGG-19 / ASP goals (30/60/90 min, loss 0.8)",
            &self.rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cynthia_meets_asp_goals() {
        let cfg = ExpConfig::quick();
        let f = run(&cfg);
        assert_eq!(f.rows.len(), 3);
        for r in &f.rows {
            assert!(
                r.cynthia.met_deadline,
                "Cynthia must meet the {:.0}s goal (took {:.0}s with {})",
                r.deadline_s, r.cynthia.actual_time_s, r.cynthia.plan
            );
            assert!(r.cynthia.achieved_loss <= r.target_loss * 1.1);
        }
        // Tighter deadlines demand at least as many workers.
        let w: Vec<u32> = f.rows.iter().map(|r| r.cynthia.n_workers).collect();
        assert!(
            w[0] >= w[2],
            "30-min goal should need ≥ workers of 90-min: {w:?}"
        );
    }
}
