//! # cynthia — cost-efficient cloud resource provisioning for predictable
//! distributed DNN training
//!
//! A from-scratch Rust reproduction of *Cynthia: Cost-Efficient Cloud
//! Resource Provisioning for Predictable Distributed Deep Neural Network
//! Training* (Zheng, Xu, Chen, Zhou, Liu — ICPP 2019), including every
//! substrate the paper's evaluation depends on:
//!
//! * [`sim`] — a discrete-event simulation core (event queue, max-min
//!   fair fluid resource sharing, metrics).
//! * [`cloud`] — an EC2-like instance catalog, billing, and provisioning.
//! * [`models`] — DNN layer algebra and the paper's four-model zoo.
//! * [`dnn`] — a real miniature neural-network library with a threaded
//!   parameter server, validating the paper's convergence assumptions.
//! * [`train`] — the ground-truth PS-training simulator (BSP/ASP,
//!   bottlenecks, stragglers, multi-PS).
//! * [`faults`] — seeded fault plans (crashes, stragglers, degraded
//!   links, PS outages) and recovery policies (checkpoints, retry
//!   budgets, PS failover); see `docs/FAULTS.md`.
//! * [`core`] — Cynthia itself: profiler, loss model, performance model,
//!   Theorem 4.1 bounds, Algorithm 1 provisioner, end-to-end framework.
//! * [`elastic`] — elastic fleets on revocable spot capacity: a
//!   deterministic spot market, an online replanner re-running the
//!   Theorem 4.1 band search at every revocation, and repair policies.
//! * [`baselines`] — the Optimus and Paleo comparison models.
//! * [`experiments`] — regeneration of every table and figure in the
//!   paper's evaluation (see the `cynthia-exp` binary).
//!
//! ## Quickstart
//!
//! ```
//! use cynthia::prelude::*;
//!
//! // Submit the paper's cifar10 workload with a goal: loss ≤ 0.8 within
//! // two hours, at minimum cost.
//! let scheduler = Cynthia::new(default_catalog());
//! let workload = Workload::cifar10_bsp();
//! let goal = Goal { deadline_secs: 7200.0, target_loss: 0.8 };
//! let report = scheduler
//!     .run_end_to_end(&workload, &goal)
//!     .expect("goal is feasible");
//! assert!(report.met_deadline && report.met_loss);
//! println!(
//!     "{} x{} + {} PS: {:.0}s, ${:.2}",
//!     report.plan.type_name, report.plan.n_workers, report.plan.n_ps,
//!     report.training.total_time, report.actual_cost
//! );
//! ```

pub use cynthia_baselines as baselines;
pub use cynthia_cloud as cloud;
pub use cynthia_core as core;
pub use cynthia_dnn as dnn;
pub use cynthia_elastic as elastic;
pub use cynthia_experiments as experiments;
pub use cynthia_faults as faults;
pub use cynthia_models as models;
pub use cynthia_obs as obs;
pub use cynthia_sim as sim;
pub use cynthia_train as train;

/// The most common imports for downstream users.
pub mod prelude {
    pub use cynthia_baselines::{OptimusModel, PaleoModel};
    pub use cynthia_cloud::{default_catalog, Catalog, InstanceType};
    pub use cynthia_core::{
        profile_workload, ClusterShape, Cynthia, CynthiaModel, FittedLossModel, Goal, PerfModel,
        Plan, PlannerOptions, ProfileData,
    };
    pub use cynthia_elastic::{
        run_elastic, run_guarded, summarize, ElasticConfig, ElasticReport, ElasticSummary,
        GuardedReport, RepairAction, RepairPolicy, Replanner, SloGuardConfig,
    };
    pub use cynthia_faults::{
        FaultEvent, FaultInjector, FaultKind, FaultPlan, InjectorConfig, LinkTarget, RecoveryPolicy,
    };
    pub use cynthia_models::{ConvergenceProfile, SyncMode, Workload};
    pub use cynthia_train::{
        simulate, simulate_disrupted, simulate_faulted, ClusterSpec, Disruption, SimConfig,
        TrainJob, TrainingReport,
    };
}
