//! `cynthia` — the provisioning CLI.
//!
//! ```text
//! cynthia plan     --workload cifar10 --deadline 90m --loss 0.8 [--gpu]
//! cynthia advise   --workload cifar10 --budget 2.50 --loss 0.7 [--gpu]
//! cynthia predict  --workload vgg19 --workers 9 [--ps 1] [--type m4.xlarge]
//! cynthia simulate --workload mnist --workers 8 [--ps 2] [--iterations 2000]
//!                  [--trace out.json]
//! cynthia profile  --workload resnet32
//! cynthia catalog  [--gpu]
//! ```
//!
//! Workloads: `mnist`, `cifar10`, `resnet32`, `vgg19`, `resnet50`
//! (`--sync bsp|asp` overrides each one's Table 1 default).

use cynthia::prelude::*;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  cynthia plan     --workload <w> --deadline <dur> --loss <f> [--gpu] [--sync bsp|asp]\n  cynthia advise   --workload <w> --budget <usd> --loss <f> [--gpu] [--sync ..]\n  cynthia predict  --workload <w> --workers <n> [--ps <k>] [--type <instance>] [--sync ..]\n  cynthia simulate --workload <w> --workers <n> [--ps <k>] [--type <instance>]\n                   [--iterations <n>] [--trace <file.json>] [--sync ..]\n  cynthia profile  --workload <w> [--sync ..]\n  cynthia catalog  [--gpu]\n\nworkloads: mnist cifar10 resnet32 vgg19 resnet50"
}

/// Parses `--key value` pairs (flags without values map to "true").
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {a:?}"))?;
        let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
        if takes_value {
            flags.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        }
    }
    Ok(flags)
}

/// Parses durations like `5400s`, `90m`, `2h`, `1.5h`, or bare seconds.
fn parse_duration(s: &str) -> Result<f64, String> {
    let (num, unit) = match s.chars().last() {
        Some('s') => (&s[..s.len() - 1], 1.0),
        Some('m') => (&s[..s.len() - 1], 60.0),
        Some('h') => (&s[..s.len() - 1], 3600.0),
        _ => (s, 1.0),
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("cannot parse duration {s:?}"))?;
    if v <= 0.0 {
        return Err(format!("duration must be positive: {s:?}"));
    }
    Ok(v * unit)
}

fn parse_workload(flags: &HashMap<String, String>) -> Result<Workload, String> {
    let name = flags
        .get("workload")
        .ok_or("missing --workload")?
        .to_lowercase();
    let mut w = match name.as_str() {
        "mnist" => Workload::mnist_bsp(),
        "cifar10" => Workload::cifar10_bsp(),
        "resnet32" => Workload::resnet32_asp(),
        "vgg19" => Workload::vgg19_asp(),
        "resnet50" => Workload::resnet50_bsp(),
        other => return Err(format!("unknown workload {other:?}")),
    };
    if let Some(sync) = flags.get("sync") {
        w = w.with_sync(match sync.to_lowercase().as_str() {
            "bsp" => SyncMode::Bsp,
            "asp" => SyncMode::Asp,
            other => return Err(format!("unknown sync mode {other:?}")),
        });
    }
    if let Some(iters) = flags.get("iterations") {
        let n: u64 = iters
            .parse()
            .map_err(|_| format!("bad --iterations {iters:?}"))?;
        w = w.with_iterations(n);
    }
    Ok(w)
}

fn catalog_for(flags: &HashMap<String, String>) -> Catalog {
    if flags.contains_key("gpu") {
        cynthia::cloud::gpu_catalog()
    } else {
        default_catalog()
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "plan" => cmd_plan(&flags),
        "advise" => cmd_advise(&flags),
        "predict" => cmd_predict(&flags),
        "simulate" => cmd_simulate(&flags),
        "profile" => cmd_profile(&flags),
        "catalog" => Ok(cmd_catalog(&flags)),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn baseline<'c>(catalog: &'c Catalog, workload: &Workload) -> &'c InstanceType {
    // GPU-scale workloads profile on the GPU baseline.
    if workload.w_iter_gflops > 100.0 && catalog.get("p2.xlarge").is_some() {
        catalog.expect("p2.xlarge")
    } else {
        catalog.expect("m4.xlarge")
    }
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<String, String> {
    let workload = parse_workload(flags)?;
    let deadline = parse_duration(flags.get("deadline").ok_or("missing --deadline")?)?;
    let target_loss: f64 = flags
        .get("loss")
        .ok_or("missing --loss")?
        .parse()
        .map_err(|_| "bad --loss")?;
    let catalog = catalog_for(flags);
    let profile = profile_workload(&workload, baseline(&catalog, &workload), 42);
    let loss = FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    };
    let goal = Goal {
        deadline_secs: deadline,
        target_loss,
    };
    match cynthia::core::provisioner::plan(
        &profile,
        &loss,
        &catalog,
        &goal,
        &PlannerOptions::default(),
    ) {
        Some(p) => Ok(format!(
            "plan for {} (loss ≤ {target_loss} within {deadline:.0}s):\n  \
             {} × {} workers + {} PS\n  \
             {} iterations ({} total updates)\n  \
             predicted time {:.0}s, predicted cost ${:.3}\n  \
             ({} candidates evaluated)",
            workload.id(),
            p.n_workers,
            p.type_name,
            p.n_ps,
            p.iterations,
            p.total_updates,
            p.predicted_time,
            p.predicted_cost,
            p.candidates_evaluated
        )),
        None => Ok(format!(
            "no feasible plan: loss ≤ {target_loss} within {deadline:.0}s is \
             unreachable with this catalog (loss floor β1 = {:.3})",
            loss.beta1
        )),
    }
}

fn cmd_advise(flags: &HashMap<String, String>) -> Result<String, String> {
    let workload = parse_workload(flags)?;
    let budget: f64 = flags
        .get("budget")
        .ok_or("missing --budget")?
        .parse()
        .map_err(|_| "bad --budget")?;
    let target_loss: f64 = flags
        .get("loss")
        .ok_or("missing --loss")?
        .parse()
        .map_err(|_| "bad --loss")?;
    let catalog = catalog_for(flags);
    let profile = profile_workload(&workload, baseline(&catalog, &workload), 42);
    let loss = FittedLossModel {
        sync: workload.sync,
        beta0: workload.convergence.beta0,
        beta1: workload.convergence.beta1,
        r_squared: 1.0,
    };
    match cynthia::core::advisor::fastest_within_budget(
        &profile,
        &loss,
        &catalog,
        target_loss,
        budget,
        &PlannerOptions::default(),
    ) {
        Some(p) => Ok(format!(
            "fastest plan for {} within ${budget:.2} (loss ≤ {target_loss}):\n  \
             {} × {} workers + {} PS\n  \
             predicted time {:.0}s at ${:.3}",
            workload.id(),
            p.n_workers,
            p.type_name,
            p.n_ps,
            p.predicted_time,
            p.predicted_cost
        )),
        None => Ok(format!(
            "no plan fits ${budget:.2}: either the loss target is below the \
             floor or the budget is under the compute cost floor"
        )),
    }
}

fn shape_args(
    flags: &HashMap<String, String>,
    catalog: &Catalog,
) -> Result<(InstanceType, u32, u32), String> {
    let n: u32 = flags
        .get("workers")
        .ok_or("missing --workers")?
        .parse()
        .map_err(|_| "bad --workers")?;
    let n_ps: u32 = flags
        .get("ps")
        .map(|s| s.parse().map_err(|_| "bad --ps"))
        .transpose()?
        .unwrap_or(1);
    let ty = flags
        .get("type")
        .map(|t| {
            catalog
                .get(t)
                .cloned()
                .ok_or_else(|| format!("unknown instance type {t:?}"))
        })
        .transpose()?
        .unwrap_or_else(|| catalog.expect("m4.xlarge").clone());
    if n == 0 || n_ps == 0 {
        return Err("--workers and --ps must be positive".into());
    }
    Ok((ty, n, n_ps))
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<String, String> {
    let workload = parse_workload(flags)?;
    let catalog = cynthia::cloud::gpu_catalog(); // superset for lookups
    let (ty, n, n_ps) = shape_args(flags, &catalog)?;
    let profile = profile_workload(&workload, baseline(&catalog, &workload), 42);
    let model = CynthiaModel::new(profile);
    let shape = ClusterShape::homogeneous(&ty, n, n_ps);
    let t = model.predict_time(&shape, workload.iterations);
    Ok(format!(
        "{} on {n}×{} + {n_ps} PS:\n  \
         t_comp {:.3}s, t_comm {:.3}s per iteration\n  \
         predicted training time {:.0}s for {} updates\n  \
         predicted worker busy fraction {:.0}%  (PS bottleneck: {})",
        workload.id(),
        ty.name,
        model.t_comp(&shape),
        model.t_comm(&shape),
        t,
        workload.iterations,
        model.predicted_worker_busy_fraction(&shape) * 100.0,
        if model.bottleneck_occurs(&shape) {
            "yes"
        } else {
            "no"
        }
    ))
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<String, String> {
    let workload = parse_workload(flags)?;
    let catalog = cynthia::cloud::gpu_catalog();
    let (ty, n, n_ps) = shape_args(flags, &catalog)?;
    let job = TrainJob {
        workload: &workload,
        cluster: ClusterSpec::homogeneous(&ty, n, n_ps),
        config: SimConfig::fast(42),
    };
    let (report, trace_note) = if let Some(path) = flags.get("trace") {
        let (report, trace) = cynthia::train::simulate_traced(&job, 200_000);
        std::fs::write(path, trace.to_chrome_trace())
            .map_err(|e| format!("cannot write trace to {path:?}: {e}"))?;
        (
            report,
            format!(
                "\ntrace: {} spans written to {path} (open in chrome://tracing)",
                trace.spans().len()
            ),
        )
    } else {
        (simulate(&job), String::new())
    };
    Ok(format!(
        "{} on {n}×{} + {n_ps} PS ({} updates):\n  \
         training time {:.0}s{}\n  \
         mean iteration {:.4}s (comp {:.4}s, comm {:.4}s)\n  \
         final loss {:.3}\n  \
         worker CPU {:.0}%, PS CPU {:.0}%, PS NIC {:.1} MB/s{}",
        workload.id(),
        ty.name,
        report.iterations,
        report.total_time,
        if report.extrapolated {
            " (steady-state extrapolated)"
        } else {
            ""
        },
        report.iter_time.mean,
        report.comp_time.mean,
        report.comm_time.mean,
        report.final_loss,
        report.mean_worker_util() * 100.0,
        report.mean_ps_util() * 100.0,
        report.total_ps_nic_mbps(),
        trace_note
    ))
}

fn cmd_profile(flags: &HashMap<String, String>) -> Result<String, String> {
    let workload = parse_workload(flags)?;
    let catalog = cynthia::cloud::gpu_catalog();
    let base = baseline(&catalog, &workload);
    let p = profile_workload(&workload, base, 42);
    Ok(format!(
        "30-iteration profile of {} on {}:\n  \
         w_iter  = {:.3} GFLOP (capability units)\n  \
         g_param = {:.2} MB\n  \
         c_prof  = {:.3} GFLOPS\n  \
         b_prof  = {:.2} MB/s\n  \
         t_base  = {:.3} s/iteration; profiling wall-clock {:.1}s",
        workload.id(),
        p.baseline_type,
        p.w_iter_gflops,
        p.g_param_mb,
        p.c_prof_gflops,
        p.b_prof_mbps,
        p.t_base(),
        p.profiling_wallclock
    ))
}

fn cmd_catalog(flags: &HashMap<String, String>) -> String {
    let catalog = catalog_for(flags);
    let mut out =
        String::from("type          cores  GFLOPS/core  node GFLOPS   NIC MB/s    $/hour\n");
    for t in catalog.types() {
        out.push_str(&format!(
            "{:<13} {:>5} {:>12.2} {:>12.2} {:>10.0} {:>9.3}\n",
            t.name, t.physical_cores, t.core_gflops, t.node_gflops, t.nic_mbps, t.price_per_hour
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("5400s").unwrap(), 5400.0);
        assert_eq!(parse_duration("90m").unwrap(), 5400.0);
        assert_eq!(parse_duration("1.5h").unwrap(), 5400.0);
        assert_eq!(parse_duration("5400").unwrap(), 5400.0);
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("-3h").is_err());
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--workload", "mnist", "--gpu", "--workers", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["workload"], "mnist");
        assert_eq!(f["gpu"], "true");
        assert_eq!(f["workers"], "4");
        assert!(parse_flags(&["oops".to_string()]).is_err());
    }

    #[test]
    fn workload_parsing_with_overrides() {
        let w = parse_workload(&flags(&[
            ("workload", "resnet32"),
            ("sync", "bsp"),
            ("iterations", "500"),
        ]))
        .unwrap();
        assert_eq!(w.sync, SyncMode::Bsp);
        assert_eq!(w.iterations, 500);
        assert!(parse_workload(&flags(&[("workload", "alexnet")])).is_err());
        assert!(parse_workload(&flags(&[])).is_err());
    }

    #[test]
    fn plan_command_produces_a_plan() {
        let out = run(&[
            "plan".into(),
            "--workload".into(),
            "cifar10".into(),
            "--deadline".into(),
            "2h".into(),
            "--loss".into(),
            "0.8".into(),
        ])
        .unwrap();
        assert!(out.contains("workers"), "{out}");
        assert!(out.contains("predicted cost"), "{out}");
    }

    #[test]
    fn infeasible_plan_reports_why() {
        let out = run(&[
            "plan".into(),
            "--workload".into(),
            "cifar10".into(),
            "--deadline".into(),
            "2h".into(),
            "--loss".into(),
            "0.01".into(),
        ])
        .unwrap();
        assert!(out.contains("no feasible plan"), "{out}");
    }

    #[test]
    fn predict_and_catalog_commands_work() {
        let out = run(&[
            "predict".into(),
            "--workload".into(),
            "mnist".into(),
            "--workers".into(),
            "8".into(),
        ])
        .unwrap();
        assert!(out.contains("predicted training time"), "{out}");
        assert!(out.contains("PS bottleneck: yes"), "{out}");

        let cat = run(&["catalog".into(), "--gpu".into()]).unwrap();
        assert!(cat.contains("p3.2xlarge"));
    }

    #[test]
    fn advise_command_respects_the_budget() {
        let out = run(&[
            "advise".into(),
            "--workload".into(),
            "cifar10".into(),
            "--budget".into(),
            "2.5".into(),
            "--loss".into(),
            "0.7".into(),
        ])
        .unwrap();
        assert!(out.contains("fastest plan"), "{out}");
        let starve = run(&[
            "advise".into(),
            "--workload".into(),
            "cifar10".into(),
            "--budget".into(),
            "0.05".into(),
            "--loss".into(),
            "0.7".into(),
        ])
        .unwrap();
        assert!(starve.contains("no plan fits"), "{starve}");
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
    }
}
